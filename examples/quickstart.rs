//! Quickstart: compose a Shift-Table-corrected learned index at run time,
//! own the keys, and answer point, batched and range queries with it.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use shift_table_repro::prelude::*;

fn main() {
    // 1. A "real-world-like" dataset: one million OSM-style cell IDs.
    //    (Swap in `sosd_data::io::read_dataset_file` to index your own keys.)
    let dataset: Dataset<u64> = SosdName::Osmc64.generate(1_000_000, 42);
    println!(
        "dataset: {} keys, {} duplicates, {:.1} MiB of key data",
        dataset.len(),
        dataset.duplicate_count(),
        dataset.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. The index is described by a spec string — model + correction layer —
    //    so the configuration can come from a CLI flag or a config file.
    //    "im+r1" is the paper's headline setup: the dummy two-parameter
    //    interpolation model corrected by a full-resolution Shift-Table.
    let spec = IndexSpec::parse("im+r1").expect("valid spec");

    // 3. Build it over *owned* (shared) key storage. The result is
    //    'static + Send + Sync and exposes the corrected-index API.
    let keys = dataset.to_shared();
    let index = spec.build_corrected(keys).expect("keys are sorted");
    println!(
        "index '{spec}'      : {} — {}",
        index.name(),
        index.correction_error()
    );
    let narrow = matches!(index.layer(), CorrectionLayer::Range(t) if t.is_narrow());
    println!(
        "index footprint      : {:.1} MiB ({} entries, narrow encoding = {narrow})",
        index.index_size_bytes() as f64 / (1024.0 * 1024.0),
        dataset.len(),
    );

    // 4. Point lookups: lower_bound(q) = first position with key >= q.
    let q = dataset.key_at(dataset.len() / 3);
    let pos = index.lower_bound(q);
    assert_eq!(pos, dataset.lower_bound(q));
    println!("lower_bound({q}) = {pos}");

    // 5. Batched lookups amortize the model and layer stages across queries.
    let queries: Vec<u64> = (0..8)
        .map(|i| dataset.key_at(i * dataset.len() / 8))
        .collect();
    let positions = index.lower_bound_many(&queries);
    for (q, p) in queries.iter().zip(&positions) {
        assert_eq!(*p, dataset.lower_bound(*q));
    }
    println!("batched lookup of {} queries OK", queries.len());

    // 6. Range queries: both endpoints located with index probes.
    let lo = dataset.key_at(dataset.len() / 2);
    let hi = dataset.key_at(dataset.len() / 2 + 500);
    let range = index.range(lo, hi);
    println!(
        "range [{lo}, {hi}] -> {} matching records (positions {:?})",
        range.len(),
        range
    );
    assert_eq!(range, dataset.range_query(lo, hi));

    // 7. Because the index owns its keys, it can move to another thread.
    let handle = std::thread::spawn(move || index.lower_bound(q));
    assert_eq!(handle.join().unwrap(), pos);
    println!("lookup from a second thread OK — quickstart done");
}
