//! Quickstart: build a Shift-Table-corrected learned index over a hard
//! dataset and answer lower-bound and range queries with it.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use shift_table_repro::prelude::*;

fn main() {
    // 1. A "real-world-like" dataset: one million OSM-style cell IDs.
    //    (Swap in `sosd_data::io::read_dataset_file` to index your own keys.)
    let dataset: Dataset<u64> = SosdName::Osmc64.generate(1_000_000, 42);
    println!(
        "dataset: {} keys, {} duplicates, {:.1} MiB of key data",
        dataset.len(),
        dataset.duplicate_count(),
        dataset.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. The paper's "dummy" model: a straight line through min and max.
    let model = InterpolationModel::build(&dataset);
    let before = learned_index::ModelErrorStats::compute(&model, &dataset);
    println!("model alone          : {before}");

    // 3. Attach the Shift-Table correction layer (one extra lookup per query).
    let index = CorrectedIndex::builder(dataset.as_slice(), model)
        .with_range_table()
        .build();
    let after = index.correction_error();
    println!("model + Shift-Table  : {after}");
    let narrow = matches!(index.layer(), CorrectionLayer::Range(t) if t.is_narrow());
    println!(
        "index footprint      : {:.1} MiB ({} entries, narrow encoding = {narrow})",
        index.index_size_bytes() as f64 / (1024.0 * 1024.0),
        dataset.len(),
    );

    // 4. Point lookups: lower_bound(q) = first position with key >= q.
    let q = dataset.key_at(dataset.len() / 3);
    let pos = index.lower_bound(q);
    assert_eq!(pos, dataset.lower_bound(q));
    println!("lower_bound({q}) = {pos}");

    // 5. Range queries: locate the lower bound, then scan.
    let lo = dataset.key_at(dataset.len() / 2);
    let hi = dataset.key_at(dataset.len() / 2 + 500);
    let range = index.range(lo, hi, dataset.as_slice());
    println!(
        "range [{lo}, {hi}] -> {} matching records (positions {:?})",
        range.len(),
        range
    );
    assert_eq!(range, dataset.range_query(lo, hi));

    println!("quickstart OK");
}
