//! SOSD-style comparison: measure every baseline of Table 2 on one dataset
//! and print a mini version of the paper's headline result.
//!
//! Run with (dataset name and key count are optional):
//! ```text
//! cargo run --release --example sosd_comparison -- face64 2000000
//! ```

use shift_table_repro::prelude::*;
use std::time::Instant;

fn measure<I: RangeIndex<u64>>(label: &str, index: &I, queries: &[u64], expected: &[usize]) {
    // Verify before timing.
    for (q, e) in queries.iter().zip(expected.iter()).take(200) {
        assert_eq!(index.lower_bound(*q), *e, "{label} is incorrect");
    }
    let start = Instant::now();
    let mut checksum = 0usize;
    for &q in queries {
        checksum = checksum.wrapping_add(index.lower_bound(q));
    }
    let ns = start.elapsed().as_nanos() as f64 / queries.len() as f64;
    println!(
        "{label:<18} {ns:>8.1} ns/lookup   (index: {:>12} bytes, checksum {checksum})",
        index.index_size_bytes()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .and_then(|s| SosdName::parse(s))
        .unwrap_or(SosdName::Face64);
    let n: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);

    println!("dataset {name} with {n} keys\n");
    let dataset: Dataset<u64> = name.generate(n, 42);
    let keys = dataset.as_slice();
    let workload = Workload::uniform_keys(&dataset, 200_000.min(n), 7);
    let (queries, expected) = (workload.queries(), workload.expected());

    // On-the-fly search and algorithmic baselines.
    measure(
        "BinarySearch",
        &BinarySearchIndex::new(keys),
        queries,
        expected,
    );
    measure("B+tree", &BPlusTree::new(keys), queries, expected);
    measure("FAST-style", &FastTree::new(keys), queries, expected);
    measure("RBS", &RadixBinarySearch::new(keys), queries, expected);
    measure("TIP", &TipSearchIndex::new(keys), queries, expected);
    if !dataset.has_duplicates() {
        measure("ART", &ArtIndex::new(keys), queries, expected);
    } else {
        println!("{:<18} N/A (duplicate keys)", "ART");
    }

    // Learned indexes, with and without the Shift-Table layer — every
    // configuration composed at run time from a spec string over shared
    // (owned) key storage.
    let shared = dataset.to_shared();
    for spec_str in [
        "im+none",
        "rs:32+none",
        "rmi:16384+none",
        "im+r1",
        "rs:32+r1",
        "im+auto",
    ] {
        let spec = IndexSpec::parse(spec_str).expect("valid spec");
        let index = spec.build(shared.clone()).expect("sorted keys");
        measure(spec_str, &index, queries, expected);
    }
}
