//! Observability scenario: a store under a mixed workload exporting its
//! metrics registry as Prometheus text, streaming structured maintenance
//! trace events, and serving a scrape endpoint — all zero-dependency.
//!
//! Run with `cargo run --release --example observability`.

use shift_table_repro::prelude::*;
use std::io::{Read as _, Write as _};

fn main() {
    // Metrics are on by default; sample 1-in-256 read/write latencies and
    // keep the last 64 maintenance events. Port 0 picks a free port for
    // the optional `/metrics` endpoint.
    let dataset: Dataset<u64> = SosdName::Face64.generate(100_000, 42);
    let spec = IndexSpec::parse("im+r1").unwrap();
    let config = StoreConfig::new(spec)
        .shards(8)
        .delta_threshold(1_024)
        .latency_sample(256)
        .trace_capacity(64)
        .metrics_addr("127.0.0.1:0".parse().unwrap());
    let store = ShardedStore::build(config, dataset.as_slice()).unwrap();

    // A mixed trace: enough writes to force rebuilds, reads through the
    // kernel-backed batch path so the kernel counters move too.
    let trace = MixedWorkload::insert_heavy(&dataset, 30_000, 7);
    let mut checksum = 0u64;
    for &op in trace.ops() {
        match op {
            MixedOp::Lookup(q) => checksum = checksum.wrapping_add(store.lower_bound(q) as u64),
            MixedOp::Insert(k) => store.insert(k).unwrap(),
            MixedOp::Delete(k) => {
                store.delete(k).unwrap();
            }
            MixedOp::Range(lo, hi) => {
                checksum = checksum.wrapping_add(store.range(lo, hi).len() as u64)
            }
        }
    }
    let queries: Vec<u64> = (0..4_096u64).map(|i| i * 31).collect();
    let mut out = vec![0usize; queries.len()];
    store.lower_bound_batch(&queries, &mut out);
    println!(
        "replayed {} ops (checksum {checksum:x})\n",
        trace.ops().len()
    );

    // The Prometheus export: every catalogued family, histograms as
    // _bucket/_count/_sum series. A scraper parses this text verbatim.
    let report = store.metrics();
    let text = report.to_prometheus();
    println!("--- store.metrics().to_prometheus(), first lines ---");
    for line in text.lines().take(18) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", text.lines().count());

    // Structured maintenance events, drained oldest-first. Each carries
    // the commit version it was recorded at and a kind-specific payload.
    println!("--- store.trace_events() ---");
    for event in store.trace_events() {
        println!("{event}");
    }
    println!();

    // The endpoint serves the live registry to any HTTP/1.0 client.
    let addr = store.metrics_addr().expect("endpoint configured");
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    println!(
        "--- GET http://{addr}/metrics: {} ({} body lines) ---",
        response.lines().next().unwrap_or(""),
        body.lines().count()
    );
}
