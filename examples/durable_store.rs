//! Durability scenario: a sharded store that survives a crash — writes go
//! through a checksummed write-ahead log, checkpoints snapshot every shard
//! at one epoch-consistent cut, and reopening the directory replays the
//! WAL tail into retrained indexes.
//!
//! Run with `cargo run --release --example durable_store`.

use shift_table_repro::prelude::*;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("shift-store-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed a durable store: the spec string, fence table and key column are
    // checkpointed immediately (the trained models are *not* persisted —
    // reopening retrains them), then every write is WAL-logged before it is
    // applied, fsynced every 32 records.
    let dataset: Dataset<u64> = SosdName::Face64.generate(100_000, 42);
    let spec = IndexSpec::parse("im+r1").unwrap();
    let config = StoreConfig::new(spec)
        .shards(8)
        .delta_threshold(4_096)
        .durability(
            DurabilityConfig::new()
                .sync(SyncPolicy::EveryN(32))
                .checkpoint_ops(20_000),
        );
    let store = ShardedStore::open_seeded(&dir, config, dataset.as_slice()).unwrap();
    println!(
        "seeded {} keys across {} shards at {}",
        store.len(),
        store.shard_count(),
        dir.display()
    );

    // An insert-heavy trace: every write lands in the WAL first.
    let trace = MixedWorkload::insert_heavy(&dataset, 30_000, 7);
    let mut net = 0i64;
    let mut checksum = 0u64;
    for &op in trace.ops() {
        match op {
            MixedOp::Lookup(q) => checksum = checksum.wrapping_add(store.lower_bound(q) as u64),
            MixedOp::Insert(k) => {
                store.insert(k).unwrap();
                net += 1;
            }
            MixedOp::Delete(k) => net -= store.delete(k).unwrap() as i64,
            MixedOp::Range(lo, hi) => {
                checksum = checksum.wrapping_add(store.range(lo, hi).len() as u64)
            }
        }
    }
    let expected = (dataset.len() as i64 + net) as usize;
    println!("after trace: {} keys (checksum {checksum:x})", store.len());

    // Checkpoint: snapshots + manifest rotation + WAL truncation. The stats
    // expose the raw material of a write-amplification measurement.
    let cv = store.checkpoint().unwrap();
    let s = store.durability_stats().unwrap();
    println!(
        "checkpoint @ v{cv}: {} WAL records ({} bytes), {} checkpoints, {} snapshot bytes",
        s.wal_records, s.wal_bytes, s.checkpoints, s.snapshot_bytes
    );

    // More writes after the checkpoint — batched: each WriteBatch is ONE
    // multi-op WAL record under one checksum, stamped with one commit
    // version and synced once, so it recovers all-or-nothing.
    let records_before = store.durability_stats().unwrap().wal_records;
    let mut batched = 0usize;
    for chunk in 0..50u64 {
        let mut batch = WriteBatch::with_capacity(100);
        for i in 0..100u64 {
            batch.insert((chunk * 100 + i) * 17);
        }
        batched += store.apply(&batch).unwrap().inserted;
    }
    let s = store.durability_stats().unwrap();
    println!(
        "applied {batched} batched inserts as {} WAL records ({} fdatasyncs so far)",
        s.wal_records - records_before,
        s.wal_syncs,
    );
    // …then a "crash": drop without flush.
    drop(store);

    // Recovery: newest manifest → retrained shards → WAL-tail replay.
    let t = Instant::now();
    let recovered: ShardedStore<u64> = ShardedStore::open(&dir, StoreConfig::new(spec)).unwrap();
    println!(
        "reopened in {:.1} ms: {} keys, {} WAL records replayed",
        t.elapsed().as_secs_f64() * 1e3,
        recovered.len(),
        recovered.durability_stats().unwrap().replayed_records,
    );
    assert_eq!(recovered.len(), expected + 5_000, "every write survived");

    // Reads serve immediately from the recovered epoch.
    let q = dataset.key_at(50_000);
    println!("lower_bound({q}) = {}", recovered.lower_bound(q));
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
