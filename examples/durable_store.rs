//! Durability scenario: a sharded store that survives a crash — writes go
//! through a checksummed write-ahead log, checkpoints snapshot the shards
//! whose state advanced at one epoch-consistent cut (re-referencing the
//! rest), and reopening the directory replays the WAL tail. With
//! `cold_start` the reopen mounts shards off the block index first and
//! retrains models in the background, so first reads beat retraining.
//!
//! Run with `cargo run --release --example durable_store`.

use shift_table_repro::prelude::*;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("shift-store-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed a durable store: the spec string, fence table and key column are
    // checkpointed immediately (the trained models are *not* persisted —
    // reopening retrains them), then every write is WAL-logged before it is
    // applied, fsynced every 32 records.
    let dataset: Dataset<u64> = SosdName::Face64.generate(100_000, 42);
    let spec = IndexSpec::parse("im+r1").unwrap();
    let config = StoreConfig::new(spec)
        .shards(8)
        .delta_threshold(4_096)
        .durability(
            DurabilityConfig::new()
                .sync(SyncPolicy::EveryN(32))
                .checkpoint_ops(20_000),
        );
    let store = ShardedStore::open_seeded(&dir, config, dataset.as_slice()).unwrap();
    println!(
        "seeded {} keys across {} shards at {}",
        store.len(),
        store.shard_count(),
        dir.display()
    );

    // An insert-heavy trace: every write lands in the WAL first.
    let trace = MixedWorkload::insert_heavy(&dataset, 30_000, 7);
    let mut net = 0i64;
    let mut checksum = 0u64;
    for &op in trace.ops() {
        match op {
            MixedOp::Lookup(q) => checksum = checksum.wrapping_add(store.lower_bound(q) as u64),
            MixedOp::Insert(k) => {
                store.insert(k).unwrap();
                net += 1;
            }
            MixedOp::Delete(k) => net -= store.delete(k).unwrap() as i64,
            MixedOp::Range(lo, hi) => {
                checksum = checksum.wrapping_add(store.range(lo, hi).len() as u64)
            }
        }
    }
    let expected = (dataset.len() as i64 + net) as usize;
    println!("after trace: {} keys (checksum {checksum:x})", store.len());

    // Checkpoint: snapshots + manifest rotation + WAL truncation. The stats
    // expose the raw material of a write-amplification measurement.
    let cv = store.checkpoint().unwrap();
    let s = store.durability_stats().unwrap();
    println!(
        "checkpoint @ v{cv}: {} WAL records ({} bytes), {} checkpoints, {} snapshot bytes",
        s.wal_records, s.wal_bytes, s.checkpoints, s.snapshot_bytes
    );

    // More writes after the checkpoint — batched: each WriteBatch is ONE
    // multi-op WAL record under one checksum, stamped with one commit
    // version and synced once, so it recovers all-or-nothing.
    let records_before = store.durability_stats().unwrap().wal_records;
    let mut batched = 0usize;
    for chunk in 0..50u64 {
        let mut batch = WriteBatch::with_capacity(100);
        for i in 0..100u64 {
            batch.insert((chunk * 100 + i) * 17);
        }
        batched += store.apply(&batch).unwrap().inserted;
    }
    let s = store.durability_stats().unwrap();
    println!(
        "applied {batched} batched inserts as {} WAL records ({} fdatasyncs so far)",
        s.wal_records - records_before,
        s.wal_syncs,
    );

    // A second checkpoint is incremental: the batched keys (multiples of 17)
    // spread widely, but any shard whose applied version did not advance is
    // re-referenced instead of rewritten.
    store.checkpoint().unwrap();
    let s = store.durability_stats().unwrap();
    println!(
        "incremental checkpoints: {} shard snapshots written, {} re-referenced ({} bytes reused)",
        s.checkpoint_shards_written, s.checkpoint_shards_skipped, s.snapshot_bytes_reused,
    );
    // …then a "crash": drop without flush.
    drop(store);

    // Recovery: newest manifest → retrained shards → WAL-tail replay.
    let t = Instant::now();
    let recovered: ShardedStore<u64> = ShardedStore::open(&dir, StoreConfig::new(spec)).unwrap();
    println!(
        "reopened in {:.1} ms: {} keys, {} WAL records replayed",
        t.elapsed().as_secs_f64() * 1e3,
        recovered.len(),
        recovered.durability_stats().unwrap().replayed_records,
    );
    assert_eq!(recovered.len(), expected + 5_000, "every write survived");

    // Reads serve immediately from the recovered epoch.
    let q = dataset.key_at(50_000);
    let hot_answer = recovered.lower_bound(q);
    println!("lower_bound({q}) = {hot_answer}");
    drop(recovered);

    // Cold start: the same image again, but shards mount straight off the
    // per-block key index and models retrain in background threads — the
    // first read runs while shards are still cold.
    let t = Instant::now();
    let cold: ShardedStore<u64> =
        ShardedStore::open(&dir, StoreConfig::new(spec).cold_start(true)).unwrap();
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let answer = cold.lower_bound(q);
    let first_read_us = t.elapsed().as_secs_f64() * 1e6;
    let b = cold.open_breakdown().unwrap();
    println!(
        "cold reopen in {open_ms:.1} ms (manifest {:.2} ms, mount {:.2} ms, replay {:.2} ms, \
         foreground retrain {:.2} ms), {} of {} shards cold",
        b.manifest.as_secs_f64() * 1e3,
        b.mount.as_secs_f64() * 1e3,
        b.replay.as_secs_f64() * 1e3,
        b.retrain.as_secs_f64() * 1e3,
        b.cold_shards,
        cold.shard_count(),
    );
    println!("first read answered in {first_read_us:.1} µs: lower_bound({q}) = {answer}");
    assert_eq!(answer, hot_answer, "cold reads equal hot reads");
    let t = Instant::now();
    cold.hydrate().unwrap();
    println!(
        "hydrated {} shards hot in {:.1} ms; lower_bound({q}) = {} still",
        cold.shard_count(),
        t.elapsed().as_secs_f64() * 1e3,
        cold.lower_bound(q),
    );
    drop(cold);
    let _ = std::fs::remove_dir_all(&dir);
}
