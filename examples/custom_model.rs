//! Bring your own model: the Shift-Table layer corrects *any* CDF model that
//! implements `learned_index::CdfModel` — here a deliberately tiny
//! "histogram" model written from scratch in ~40 lines.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_model
//! ```

use shift_table_repro::prelude::*;

/// A 256-bucket equi-width histogram over the key domain: each bucket stores
/// the position of its first key. Three cache lines of state, monotone by
/// construction — a model in the spirit of the paper's "small, semi-accurate
/// model + algorithmic correction" recipe.
struct HistogramModel {
    min: u64,
    bucket_width: u64,
    starts: Vec<usize>,
    n: usize,
}

impl HistogramModel {
    fn build(dataset: &Dataset<u64>) -> Self {
        let keys = dataset.as_slice();
        let n = keys.len();
        let (min, max) = (keys[0], keys[n - 1]);
        let buckets = 256usize;
        let bucket_width = ((max - min) / buckets as u64).max(1);
        let mut starts = vec![0usize; buckets + 1];
        let mut pos = 0usize;
        for (b, s) in starts.iter_mut().enumerate() {
            let bucket_lo = min + b as u64 * bucket_width;
            while pos < n && keys[pos] < bucket_lo {
                pos += 1;
            }
            *s = pos;
        }
        Self {
            min,
            bucket_width,
            starts,
            n,
        }
    }
}

impl learned_index::CdfModel<u64> for HistogramModel {
    fn predict(&self, key: u64) -> usize {
        let bucket = ((key.saturating_sub(self.min)) / self.bucket_width) as usize;
        self.starts[bucket.min(self.starts.len() - 1)]
    }
    fn key_count(&self) -> usize {
        self.n
    }
    fn size_bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<usize>() + 16
    }
    fn is_monotonic(&self) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "Histogram256"
    }
}

fn main() {
    let dataset: Dataset<u64> = SosdName::Wiki64.generate(1_000_000, 7);
    let model = HistogramModel::build(&dataset);
    let before = learned_index::ModelErrorStats::compute(&model, &dataset);
    println!("histogram model alone        : {before}");

    // Correct it with a Shift-Table; the layer does not care what the model is.
    let index = CorrectedIndex::builder(dataset.as_slice(), model)
        .with_range_table()
        .build()
        .unwrap();
    println!(
        "histogram + Shift-Table      : {}",
        index.correction_error()
    );

    // Verify on a workload that includes non-indexed keys.
    let workload = Workload::non_indexed(&dataset, 50_000, 3);
    for (q, expected) in workload.iter() {
        assert_eq!(index.lower_bound(q), expected);
    }
    println!(
        "verified {} lookups (including misses) — custom model OK",
        workload.len()
    );

    // The same works for the PGM-style model shipped with the workspace.
    let pgm = PgmModel::with_epsilon(&dataset, 128);
    let pgm_index = CorrectedIndex::builder(dataset.as_slice(), pgm)
        .with_range_table()
        .build()
        .unwrap();
    println!(
        "PGM(ε=128) + Shift-Table     : {}",
        pgm_index.correction_error()
    );
}
