//! Optimistic transactions and MVCC time travel on the sharded store:
//! snapshot-isolated read-modify-write with first-committer-wins
//! validation, automatic retry under contention, and a change-data-capture
//! tail built from retained versions and `scan_between`.
//!
//! Run with `cargo run --release --example transactions`.

use shift_obs::MetricValue;
use shift_table_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    // Four "accounts", each holding `balance` occurrences of its key — the
    // store is a multiset, so an occurrence count *is* a balance. Retain
    // the last 16 commit versions for time travel and change capture.
    const ACCOUNTS: [u64; 4] = [1_000, 2_000, 3_000, 4_000];
    const OPENING: usize = 25;
    let mut seed: Vec<u64> = Vec::new();
    for a in ACCOUNTS {
        seed.extend(std::iter::repeat_n(a, OPENING));
    }
    seed.sort_unstable();
    let spec = IndexSpec::parse("im+r1").unwrap();
    let config = StoreConfig::new(spec)
        .shards(4)
        .retain_versions(RetainPolicy::last(16));
    let store = ShardedStore::build(config, &seed).unwrap();
    println!(
        "opened: {} accounts × {OPENING} units, commit version {}",
        ACCOUNTS.len(),
        store.commit_version()
    );

    // One transaction, step by step: reads see the pinned snapshot plus
    // the transaction's own buffered writes; nothing is visible outside
    // until commit, and the receipt stamps one commit version.
    let mut txn = store.begin();
    let (src, dst) = (ACCOUNTS[0], ACCOUNTS[1]);
    let before = txn.get(src);
    txn.delete(src).insert(dst);
    println!(
        "txn@{}: {src} had {before}, sees {} inside / {} outside the txn",
        txn.version(),
        txn.get(src),
        store.count_of(src)
    );
    let receipt = txn.commit().unwrap();
    println!(
        "committed cv {}: {} inserted, {} deleted",
        receipt.commit_version, receipt.inserted, receipt.deleted
    );

    // First-committer-wins: two racing transfers from the same account.
    // The slower committer observes a stale count and gets a typed
    // conflict — nothing it buffered is applied.
    let mut fast = store.begin();
    let mut slow = store.begin();
    fast.get(src);
    slow.get(src);
    fast.delete(src).insert(dst);
    slow.delete(src).insert(ACCOUNTS[2]);
    fast.commit().unwrap();
    match slow.commit() {
        Err(StoreError::TxnConflict { point, .. }) => {
            println!("slow committer lost: conflict on key {point:?}");
        }
        other => panic!("expected a conflict, got {other:?}"),
    }

    // Contended threads just wrap the body in `commit_with_retries`: each
    // conflict re-runs it against a fresh snapshot. The invariant — total
    // units conserved, no balance below zero — holds under any interleave.
    let transfers = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let store = &store;
            let transfers = &transfers;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xACC7 + t);
                for _ in 0..300 {
                    let src = ACCOUNTS[rng.next_below(4) as usize];
                    let dst = ACCOUNTS[rng.next_below(4) as usize];
                    let (moved, _) = store
                        .commit_with_retries(1_000, |txn| {
                            if src == dst || txn.get(src) == 0 {
                                return Ok(false);
                            }
                            txn.delete(src).insert(dst);
                            Ok(true)
                        })
                        .unwrap();
                    transfers.fetch_add(moved as u64, Ordering::Relaxed);
                }
            });
        }
    });
    let report = store.metrics();
    let stat = |name: &str| {
        report
            .metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| match m.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            })
            .unwrap_or(0)
    };
    println!(
        "{} transfers landed: {} commits, {} conflicts retried, total {} units (conserved: {})",
        transfers.load(Ordering::Relaxed),
        stat("store_txn_commits_total"),
        stat("store_txn_conflicts_total"),
        store.len(),
        store.len() == seed.len()
    );

    // Time travel: any retained commit version serves exact historical
    // reads, and `scan_between` is an ordered net diff between two cuts —
    // a change-data-capture feed with no write-path hooks.
    let retained = store.retained_versions();
    let stats = store.version_stats();
    println!(
        "retained {} versions (cv {:?}..{:?}, ~{} bytes pinned)",
        stats.retained, stats.oldest_cv, stats.newest_cv, stats.approx_bytes
    );
    let (a, b) = (retained[0], *retained.last().unwrap());
    let old = store.snapshot_at(a).unwrap();
    println!(
        "cv {a} frozen: account {} held {} units then, {} now",
        ACCOUNTS[0],
        old.count_of(ACCOUNTS[0]),
        store.count_of(ACCOUNTS[0])
    );
    let changes = store.scan_between(a, b).unwrap();
    println!("cdc tail cv {a} → cv {b}: {changes:?}");
    let net: i64 = changes.iter().map(|&(_, d)| d).sum();
    assert_eq!(net, 0, "transfers net to zero across any two cuts");
}
