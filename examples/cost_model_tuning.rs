//! Cost-model driven tuning (§3.7 / §3.9): decide per dataset whether the
//! Shift-Table layer pays off, using the error heuristics and the latency
//! cost model (Eqs. 9 and 10).
//!
//! Run with:
//! ```text
//! cargo run --release --example cost_model_tuning
//! ```

use shift_table_repro::prelude::*;

fn main() {
    let n = 500_000;
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>22}",
        "dataset", "err before", "err after", "factor", "decision"
    );
    println!("{}", "-".repeat(76));

    for name in SosdName::all() {
        let dataset: Dataset<u64> = name.generate(n, 42);
        let model = InterpolationModel::build(&dataset);

        // Error before correction (the raw model) and after (Eq. 8).
        let before = learned_index::ModelErrorStats::compute(&model, &dataset).mean_abs;
        let table = ShiftTable::build(&model, dataset.as_slice());
        let after = table.expected_error();

        // §3.9 heuristics + the Eq. 9/10 latency estimate.
        let advisor = TuningAdvisor::new();
        let decision = advisor.decide(before, after);
        let model_latency_ns = 10.0; // two multiply-adds: essentially free
        let with_ns = advisor
            .latency_model()
            .latency_with_layer(model_latency_ns, &table);
        let without_ns = advisor
            .latency_model()
            .latency_without_layer(model_latency_ns, &table);

        println!(
            "{:<8} {:>14.1} {:>14.1} {:>11.1}x {:>22}",
            name.to_string(),
            before,
            after,
            before / after.max(0.01),
            match decision {
                TuningDecision::ModelWithShiftTable => "model + Shift-Table",
                TuningDecision::ModelAlone => "model alone",
            }
        );
        println!(
            "         est. latency: {without_ns:>7.1} ns without layer, {with_ns:>7.1} ns with layer"
        );

        // The auto-tuning builder applies exactly this rule.
        let auto = CorrectedIndex::builder(dataset.as_slice(), model)
            .with_auto_tuning()
            .build()
            .unwrap();
        assert_eq!(
            auto.layer_enabled(),
            decision == TuningDecision::ModelWithShiftTable
        );
    }
}
