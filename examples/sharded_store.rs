//! Serving scenario: a sharded, updatable store absorbing a mixed
//! read/write workload while a background maintenance thread compacts
//! delta chains, rebuilds dirty shards and rebalances skewed ones.
//!
//! Run with `cargo run --release --example sharded_store`.

use shift_table_repro::prelude::*;
use std::time::Duration;

fn main() {
    // A "Facebook-like" key column and a store of 8 range shards, each an
    // IM + Shift-Table corrected index built from the same spec string a
    // config file would carry. The background worker owns maintenance:
    // writes never rebuild inline.
    let dataset: Dataset<u64> = SosdName::Face64.generate(200_000, 42);
    let spec = IndexSpec::parse("im+r1").unwrap();
    let config = StoreConfig::new(spec)
        .shards(8)
        .delta_threshold(2_048)
        .auto_rebuild(false)
        .background_maintenance(true)
        .maintenance_interval(Duration::from_millis(1))
        .split_skew(2);
    let store = ShardedStore::build(config, dataset.as_slice()).unwrap();
    println!(
        "store: {} keys across {} shards ({} aux bytes), fences at {:?}…",
        store.len(),
        store.shard_count(),
        store.index_size_bytes(),
        &store.fences()[..3.min(store.shard_count())],
    );

    // Replay an insert-heavy trace. Every read pins one immutable shard
    // state (base snapshot + delta chain) — no lock is held while probing —
    // and the worker folds chains into fresh bases behind the scenes.
    let trace = MixedWorkload::insert_heavy(&dataset, 50_000, 7);
    let (lookups, inserts, deletes, ranges) = trace.op_counts();
    println!("trace: {lookups} lookups, {inserts} inserts, {deletes} deletes, {ranges} ranges");
    let mut checksum = 0u64;
    for &op in trace.ops() {
        match op {
            MixedOp::Lookup(q) => checksum = checksum.wrapping_add(store.lower_bound(q) as u64),
            MixedOp::Insert(k) => store.insert(k).unwrap(),
            MixedOp::Delete(k) => {
                store.delete(k).unwrap();
            }
            MixedOp::Range(lo, hi) => {
                checksum = checksum.wrapping_add(store.range(lo, hi).len() as u64)
            }
        }
    }
    println!(
        "after trace: {} keys, per-shard epochs {:?} (checksum {checksum:x})",
        store.len(),
        store.epochs(),
    );

    // Skew one narrow key range hard enough that the rebalancer splits the
    // hot shard at a duplicate-run-aligned median fence.
    let (lo, hi) = (dataset.min_key().unwrap(), dataset.max_key().unwrap());
    let hot = lo + (hi - lo) / 8 * 7;
    for i in 0..120_000u64 {
        store.insert(hot + (i % 4_096)).unwrap();
    }
    store.rebalance().unwrap();
    println!(
        "after skew: {} shards ({} splits, {} merges, {} rebuilds so far)",
        store.shard_count(),
        store.total_splits(),
        store.total_merges(),
        store.total_rebuilds(),
    );

    // Batched reads group queries per shard before dispatch against one
    // pinned snapshot, so each shard's stage-blocked batch path serves its
    // bucket in one go and the whole batch is exact at one commit version
    // even while writers and the rebalancer race it.
    let queries = Workload::uniform_domain(&dataset, 10_000, 3);
    let positions = store.lower_bound_many(queries.queries());
    println!(
        "batched {} lookups; first three: {:?}",
        positions.len(),
        &positions[..3]
    );

    // A pinned snapshot is a store-wide consistent cut: reads on it are
    // repeatable forever, however the store moves on. Correlated reads —
    // here a range count cross-checked against a key scan — should always
    // share one snapshot.
    let snap = store.snapshot();
    let (lo_q, hi_q) = (hot, hot + 2_048);
    let width = snap.range(lo_q, hi_q).len();
    assert_eq!(width, snap.scan(lo_q, hi_q).len(), "one cut, one answer");
    store.insert(hot).unwrap(); // races nothing: the snapshot is immutable
    assert_eq!(snap.range(lo_q, hi_q).len(), width);
    println!(
        "snapshot v{}: {} keys in [{lo_q}, {hi_q}], repeatable mid-write",
        snap.version(),
        width
    );

    // Writes that must land together go through a WriteBatch: one commit
    // version, atomic under every snapshot (and, on a durable store, one
    // WAL record + one fdatasync).
    let mut batch = WriteBatch::new();
    batch.insert(lo).insert(hi).delete(hot);
    let receipt = store.apply(&batch).unwrap();
    println!(
        "batch @v{}: {} inserted, {} deleted atomically",
        receipt.commit_version, receipt.inserted, receipt.deleted
    );

    // Drain every remaining chain and verify the store against the
    // dataset-independent invariant: positions are non-decreasing in the
    // query key.
    while store.flush().unwrap() > 0 {}
    let mut sorted = queries.queries().to_vec();
    sorted.sort_unstable();
    let after_flush = store.lower_bound_many(&sorted);
    assert!(after_flush.is_sorted());
    println!(
        "flushed: {} total rebuilds, {} keys served",
        store.total_rebuilds(),
        store.len()
    );
}
