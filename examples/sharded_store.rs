//! Serving scenario: a sharded, updatable store absorbing a mixed
//! read/write workload while its shards rebuild themselves in the
//! background of the write path.
//!
//! Run with `cargo run --release --example sharded_store`.

use shift_table_repro::prelude::*;

fn main() {
    // A "Facebook-like" key column and a store of 8 range shards, each an
    // IM + Shift-Table corrected index built from the same spec string a
    // config file would carry.
    let dataset: Dataset<u64> = SosdName::Face64.generate(200_000, 42);
    let spec = IndexSpec::parse("im+r1").unwrap();
    let config = StoreConfig::new(spec).shards(8).delta_threshold(2_048);
    let store = ShardedStore::build(config, dataset.as_slice()).unwrap();
    println!(
        "store: {} keys across {} shards ({} aux bytes), fences at {:?}…",
        store.len(),
        store.shard_count(),
        store.index_size_bytes(),
        &store
            .shards()
            .iter()
            .take(3)
            .map(|s| s.snapshot().keys().first().copied().unwrap_or(0))
            .collect::<Vec<_>>(),
    );

    // Replay an insert-heavy trace: reads merge the delta buffers on the
    // fly; every shard that crosses the threshold folds its buffer into a
    // fresh base and swaps the epoch snapshot.
    let trace = MixedWorkload::insert_heavy(&dataset, 50_000, 7);
    let (lookups, inserts, deletes, ranges) = trace.op_counts();
    println!("trace: {lookups} lookups, {inserts} inserts, {deletes} deletes, {ranges} ranges");
    let mut checksum = 0u64;
    for &op in trace.ops() {
        match op {
            MixedOp::Lookup(q) => checksum = checksum.wrapping_add(store.lower_bound(q) as u64),
            MixedOp::Insert(k) => store.insert(k).unwrap(),
            MixedOp::Delete(k) => {
                store.delete(k).unwrap();
            }
            MixedOp::Range(lo, hi) => {
                checksum = checksum.wrapping_add(store.range(lo, hi).len() as u64)
            }
        }
    }
    println!(
        "after trace: {} keys, per-shard epochs {:?} (checksum {checksum:x})",
        store.len(),
        store.epochs(),
    );

    // Batched reads group queries per shard before dispatch, so each
    // shard's stage-blocked batch path serves its bucket in one go.
    let queries = Workload::uniform_domain(&dataset, 10_000, 3);
    let positions = store.lower_bound_many(queries.queries());
    println!(
        "batched {} lookups; first three: {:?}",
        positions.len(),
        &positions[..3]
    );

    // Drain every remaining buffer and verify the store against the
    // dataset-independent invariant: positions are non-decreasing in the
    // query key.
    store.flush().unwrap();
    let mut sorted = queries.queries().to_vec();
    sorted.sort_unstable();
    let after_flush = store.lower_bound_many(&sorted);
    assert!(after_flush.is_sorted());
    println!(
        "flushed: {} total rebuilds, {} keys served",
        store.total_rebuilds(),
        store.len()
    );
}
