//! Range scans over a clustered table: the scenario the paper's introduction
//! motivates. Records are stored sorted by key; a range query finds the lower
//! bound with the corrected learned index and then scans the payload
//! column(s) sequentially.
//!
//! Run with:
//! ```text
//! cargo run --release --example range_scan
//! ```

use shift_table_repro::prelude::*;
use std::time::Instant;

/// A clustered read-only table: sorted keys plus a payload column aligned by
/// position (the 64-byte payloads of the SOSD setup, reduced to 8 bytes here).
struct ClusteredTable {
    keys: Vec<u64>,
    payloads: Vec<u64>,
}

impl ClusteredTable {
    fn new(dataset: &Dataset<u64>) -> Self {
        let keys = dataset.as_slice().to_vec();
        let payloads = keys
            .iter()
            .map(|k| k.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        Self { keys, payloads }
    }
}

fn main() {
    // Wikipedia-style edit timestamps: a typical time-range workload.
    let dataset: Dataset<u64> = SosdName::Wiki64.generate(2_000_000, 42);
    let table = ClusteredTable::new(&dataset);

    let index = CorrectedIndex::builder(&table.keys, InterpolationModel::build(&dataset))
        .with_range_table()
        .build()
        .unwrap();
    println!(
        "indexed {} records, correction layer: {:.1} MiB",
        table.keys.len(),
        index.layer().size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Run a batch of time-range aggregations: sum the payloads of all edits
    // in [t, t + window].
    let workload = Workload::uniform_keys(&dataset, 10_000, 9);
    let window = (dataset.max_key().unwrap() - dataset.min_key().unwrap()) / 10_000;

    let start = Instant::now();
    let mut total_rows = 0usize;
    let mut checksum = 0u64;
    for &lo in workload.queries() {
        let hi = lo.saturating_add(window);
        // 1. Locate the first qualifying record with the corrected index.
        let begin = index.lower_bound(lo);
        // 2. Scan forward while the predicate holds (clustered layout).
        let mut i = begin;
        while i < table.keys.len() && table.keys[i] <= hi {
            checksum = checksum.wrapping_add(table.payloads[i]);
            i += 1;
        }
        total_rows += i - begin;
    }
    let elapsed = start.elapsed();
    println!(
        "{} range queries, {} rows scanned, {:.1} µs/query (checksum {checksum:x})",
        workload.len(),
        total_rows,
        elapsed.as_micros() as f64 / workload.len() as f64
    );

    // Cross-check a few ranges against the reference implementation.
    for &lo in workload.queries().iter().take(100) {
        let hi = lo.saturating_add(window);
        let reference = dataset.range_query(lo, hi);
        let via_index = index.range(lo, hi);
        assert_eq!(reference, via_index);
    }
    println!("range results verified against the reference lower/upper bounds");
}
