//! Umbrella crate for the Shift-Table reproduction workspace.
//!
//! This crate re-exports the public APIs of the workspace members so the
//! examples and cross-crate integration tests can use a single import, and so
//! downstream users who want "everything" can depend on one crate:
//!
//! * [`shift_table`] — the Shift-Table correction layer (the paper's
//!   contribution), the owned [`shift_table::CorrectedIndex`] and the
//!   runtime [`shift_table::spec::IndexSpec`] composition layer,
//! * [`learned_index`] — CDF models (IM, linear, cubic, RMI, RadixSpline,
//!   PGM) plus [`learned_index::ModelSpec`] for choosing one at run time,
//! * [`algo_index`] — the [`algo_index::RangeIndex`] trait (point, batched
//!   and range lookups) and the algorithmic baselines (binary/interpolation/
//!   TIP search, B+tree, FAST-style tree, ART, RBS),
//! * [`shift_store`] — the serving layer: [`shift_store::ShardedIndex`]
//!   (fence-key router over per-shard indexes) and
//!   [`shift_store::ShardedStore`] (lock-free reads over epoch-pinned shard
//!   states — immutable base snapshots plus immutable delta chains — with
//!   store-wide consistent reads behind [`shift_store::StoreSnapshot`],
//!   atomic group-committed writes behind [`shift_store::WriteBatch`], a
//!   background maintenance worker, skew-driven shard rebalancing, and an
//!   optional durable form: a checksummed write-ahead log with
//!   epoch-consistent checkpoints and crash recovery behind
//!   [`shift_store::ShardedStore::open`]),
//! * [`shift_obs`] — the zero-dependency observability layer the store is
//!   instrumented with: lock-free counters/gauges/histograms, the bounded
//!   trace ring, Prometheus-text + JSON export ([`shift_obs::MetricsReport`]
//!   from `store.metrics()`, [`shift_obs::parse_prometheus`] to read it
//!   back) and the optional [`shift_obs::MetricsServer`] scrape endpoint,
//! * [`sosd_data`] — SOSD-style datasets, workloads and CDF utilities.
//!
//! ## The two construction paths
//!
//! **Owned / runtime-composed** — the serving path. The index owns its keys
//! behind `Arc<[K]>`, is `'static + Send + Sync`, and both the model and the
//! correction layer are chosen from a spec string:
//!
//! ```
//! use shift_table_repro::prelude::*;
//!
//! let dataset: Dataset<u64> = SosdName::Face64.generate(50_000, 42);
//! let keys = dataset.to_shared();
//!
//! // Any model×layer combination, selected at run time:
//! let index: DynRangeIndex<u64> =
//!     IndexSpec::parse("rmi:256+r1").unwrap().build(keys).unwrap();
//!
//! let q = dataset.key_at(1_000);
//! assert_eq!(index.lower_bound(q), dataset.lower_bound(q));
//!
//! // Batched lookups amortize the model/layer stages across queries:
//! let queries = [q, dataset.key_at(7), u64::MAX];
//! let mut out = [0usize; 3];
//! index.lower_bound_batch(&queries, &mut out);
//! assert_eq!(out[0], dataset.lower_bound(q));
//! ```
//!
//! **Borrowed / monomorphized** — the benchmarking path. Zero-copy over an
//! existing key column, with the model as a compile-time generic:
//!
//! ```
//! use shift_table_repro::prelude::*;
//!
//! let dataset: Dataset<u64> = SosdName::Osmc64.generate(50_000, 42);
//! let index = CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
//!     .with_range_table()
//!     .build()
//!     .expect("sorted keys");
//! assert_eq!(index.lower_bound(0), 0);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness that regenerates every table and figure of
//! the paper.

#![forbid(unsafe_code)]

pub use algo_index;
pub use learned_index;
pub use shift_obs;
pub use shift_store;
pub use shift_table;
pub use sosd_data;

/// One-stop prelude: everything the examples need.
pub mod prelude {
    pub use algo_index::prelude::*;
    pub use learned_index::prelude::*;
    pub use shift_store::prelude::*;
    pub use shift_table::prelude::*;
    pub use sosd_data::prelude::*;
}
