//! Umbrella crate for the Shift-Table reproduction workspace.
//!
//! This crate re-exports the public APIs of the workspace members so the
//! examples and cross-crate integration tests can use a single import, and so
//! downstream users who want "everything" can depend on one crate:
//!
//! * [`shift_table`] — the Shift-Table correction layer (the paper's
//!   contribution),
//! * [`learned_index`] — CDF models (IM, linear, RMI, RadixSpline, PGM),
//! * [`algo_index`] — algorithmic baselines (binary/interpolation/TIP search,
//!   B+tree, FAST-style tree, ART, RBS),
//! * [`sosd_data`] — SOSD-style datasets, workloads and CDF utilities.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the harness that regenerates every table and figure of
//! the paper.

#![forbid(unsafe_code)]

pub use algo_index;
pub use learned_index;
pub use shift_table;
pub use sosd_data;

/// One-stop prelude: everything the examples need.
pub mod prelude {
    pub use algo_index::prelude::*;
    pub use learned_index::prelude::*;
    pub use shift_table::prelude::*;
    pub use sosd_data::prelude::*;
}
