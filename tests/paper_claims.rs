//! Integration tests asserting the paper's qualitative claims at test scale.
//!
//! Absolute nanosecond numbers are machine-dependent, but the *relationships*
//! the paper reports must hold: they are what EXPERIMENTS.md records and what
//! these tests pin down.

use learned_index::ModelErrorStats;
use shift_table_repro::prelude::*;

const N: usize = 100_000;

/// §1 / Table 2: the Shift-Table layer corrects even a dummy linear model so
/// well that its remaining error is orders of magnitude below the raw model
/// on every real-world dataset.
#[test]
fn correction_reduces_dummy_model_error_by_an_order_of_magnitude_on_real_world_data() {
    for name in SosdName::real_world() {
        let dataset: Dataset<u64> = name.generate(N, 42);
        let model = InterpolationModel::build(&dataset);
        let before = ModelErrorStats::compute(&model, &dataset).mean_abs;
        let index = CorrectedIndex::builder(dataset.as_slice(), model)
            .with_range_table()
            .build()
            .unwrap();
        let after = index.correction_error().mean_abs;
        assert!(
            before >= 10.0 * after.max(0.1),
            "{name}: expected ≥10× error reduction, got {before:.1} -> {after:.1}"
        );
    }
}

/// §2.4: real-world distributions are harder to model than the synthetic
/// ones even when their macro shape matches (face vs uden/uspr).
#[test]
fn real_world_data_is_harder_for_compact_models_than_synthetic_uniform_data() {
    let spline_count = |name: SosdName| {
        let d: Dataset<u64> = name.generate(N, 1);
        RadixSpline::builder().max_error(32).build(&d).num_points()
    };
    let uden = spline_count(SosdName::Uden64);
    let uspr = spline_count(SosdName::Uspr64);
    let face = spline_count(SosdName::Face64);
    let osmc = spline_count(SosdName::Osmc64);
    assert!(face > 3 * uden.max(1), "face {face} vs uden {uden}");
    assert!(face > uspr, "face {face} vs uspr {uspr}");
    assert!(osmc > 3 * uden.max(1), "osmc {osmc} vs uden {uden}");
}

/// §3.6 / Figure 6: on OSM data the average error of the linear model drops
/// from a large fraction of N to a handful of records.
#[test]
fn figure6_error_reduction_on_osmc() {
    let dataset: Dataset<u64> = SosdName::Osmc64.generate(N, 42);
    let model = InterpolationModel::build(&dataset);
    let before = ModelErrorStats::compute(&model, &dataset).mean_abs;
    let table = ShiftTable::build(&model, dataset.as_slice());
    let after = shift_table::CorrectionErrorStats::compute(&model, &table, dataset.as_slice());
    assert!(
        before > 0.01 * N as f64,
        "the dummy model must be far off on osmc (got {before:.1})"
    );
    assert!(
        after.mean_abs < 100.0,
        "corrected error should be tiny (got {:.1})",
        after.mean_abs
    );
}

/// §3.9 / §4.1 tuning: synthetic uniform-dense data does not need the layer;
/// real-world data does.
#[test]
fn auto_tuning_matches_the_papers_configuration_choices() {
    let uden: Dataset<u64> = SosdName::Uden64.generate(N, 3);
    let auto = CorrectedIndex::builder(uden.as_slice(), InterpolationModel::build(&uden))
        .with_auto_tuning()
        .build()
        .unwrap();
    assert!(!auto.layer_enabled(), "uden64 must not enable the layer");

    for name in [SosdName::Face64, SosdName::Osmc64, SosdName::Wiki64] {
        let d: Dataset<u64> = name.generate(N, 3);
        let auto = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_auto_tuning()
            .build()
            .unwrap();
        assert!(auto.layer_enabled(), "{name} must enable the layer");
    }
}

/// Figure 9: compressing the layer monotonically increases the corrected
/// error; the R-1/S-1 configurations are the most accurate.
#[test]
fn layer_compression_trades_accuracy_for_memory() {
    let dataset: Dataset<u64> = SosdName::Amzn64.generate(N, 9);
    let model = InterpolationModel::build(&dataset);
    let mut previous_error = -1.0f64;
    let mut previous_size = usize::MAX;
    for x in [1usize, 10, 100, 1000] {
        let index = CorrectedIndex::builder(dataset.as_slice(), model.clone())
            .with_compact_table(x)
            .build()
            .unwrap();
        let err = index.correction_error().mean_abs;
        let size = index.layer().size_bytes();
        assert!(
            err + 1e-9 >= previous_error,
            "S-{x}: error {err} should not decrease when compressing"
        );
        assert!(size < previous_size, "S-{x}: layer must shrink");
        previous_error = err;
        previous_size = size;
    }
}

/// §2.2: the cache-optimised FAST-style tree and the B+tree outperform plain
/// binary search in memory probes per lookup (the mechanism behind their
/// speedup), and the corrected learned index needs fewer still on hard data.
#[test]
fn probe_counts_follow_the_papers_cost_analysis() {
    let dataset: Dataset<u64> = SosdName::Face64.generate(N, 21);
    let keys = dataset.as_slice();
    let fast = FastTree::new(keys);
    let im_st = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
        .with_range_table()
        .build()
        .unwrap();
    let w = Workload::uniform_keys(&dataset, 500, 5);

    // Binary search probes ~log2(n) uncached locations; FAST's hierarchy
    // touches one node per level; the corrected index touches the layer plus
    // a tiny window.
    let bs_probes = (N as f64).log2() - 5.0;
    let fast_probes = fast.probes_per_lookup() as f64;
    let st_probes: f64 = w
        .queries()
        .iter()
        .map(|&q| im_st.probe_estimate(q) as f64)
        .sum::<f64>()
        / w.len() as f64;
    assert!(fast_probes < bs_probes);
    assert!(
        st_probes < fast_probes,
        "corrected index probes {st_probes:.1} should undercut FAST {fast_probes:.1}"
    );
}

/// The layer is model-agnostic (§3): correcting RadixSpline or PGM gives the
/// same exactness guarantees as correcting the dummy model.
#[test]
fn correction_is_model_agnostic() {
    let dataset: Dataset<u64> = SosdName::Wiki64.generate(N, 31);
    let keys = dataset.as_slice();
    let w = Workload::uniform_domain(&dataset, 500, 7);
    let rs_st =
        CorrectedIndex::builder(keys, RadixSpline::builder().max_error(256).build(&dataset))
            .with_range_table()
            .build()
            .unwrap();
    let pgm_st = CorrectedIndex::builder(keys, PgmModel::with_epsilon(&dataset, 256))
        .with_range_table()
        .build()
        .unwrap();
    for (q, expected) in w.iter() {
        assert_eq!(rs_st.lower_bound(q), expected);
        assert_eq!(pgm_st.lower_bound(q), expected);
    }
    // And the corrected error is bounded by the window structure, not by the
    // models' ε.
    assert!(rs_st.correction_error().mean_abs < 256.0);
    assert!(pgm_st.correction_error().mean_abs < 256.0);
}
