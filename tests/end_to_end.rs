//! Cross-crate integration tests: every index in the workspace must agree
//! with the reference lower bound on every dataset family, end to end.

use shift_table_repro::prelude::*;

const N: usize = 20_000;
const QUERIES: usize = 400;

/// Every baseline and every corrected learned index, checked against the
/// reference `partition_point` lower bound on hit, miss and domain-uniform
/// workloads.
#[test]
fn all_indexes_agree_with_the_reference_on_all_datasets() {
    for name in SosdName::all() {
        let dataset: Dataset<u64> = name.generate(N, 2024);
        let keys = dataset.as_slice();

        let bs = BinarySearchIndex::new(keys);
        let branchless = BranchlessBinarySearch::new(keys);
        let is = InterpolationSearchIndex::new(keys);
        let tip = TipSearchIndex::new(keys);
        let rbs = RadixBinarySearch::new(keys);
        let btree = BPlusTree::new(keys);
        let fast = FastTree::new(keys);
        let art = ArtIndex::new(keys);
        let im_st = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_range_table()
            .build();
        let im_s10 = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_compact_table(10)
            .build();
        let rs_st = CorrectedIndex::builder(
            keys,
            RadixSpline::builder().max_error(32).build(&dataset),
        )
        .with_range_table()
        .build();
        let rmi = CorrectedIndex::builder(keys, RmiIndex::builder().leaf_count(256).build(&dataset))
            .without_correction()
            .build();
        let pgm_st = CorrectedIndex::builder(keys, PgmModel::with_epsilon(&dataset, 64))
            .with_range_table()
            .build();

        let indexes: Vec<(&str, &dyn RangeIndex<u64>)> = vec![
            ("BS", &bs),
            ("BS-branchless", &branchless),
            ("IS", &is),
            ("TIP", &tip),
            ("RBS", &rbs),
            ("B+tree", &btree),
            ("FAST", &fast),
            ("ART", &art),
            ("IM+ShiftTable", &im_st),
            ("IM+S-10", &im_s10),
            ("RS+ShiftTable", &rs_st),
            ("RMI", &rmi),
            ("PGM+ShiftTable", &pgm_st),
        ];

        for workload in [
            Workload::uniform_keys(&dataset, QUERIES, 1),
            Workload::uniform_domain(&dataset, QUERIES, 2),
            Workload::non_indexed(&dataset, QUERIES, 3),
            Workload::hot_range(&dataset, QUERIES, 4),
        ] {
            for (q, expected) in workload.iter() {
                for (label, index) in &indexes {
                    assert_eq!(
                        index.lower_bound(q),
                        expected,
                        "{label} disagrees on {name} for query {q}"
                    );
                }
            }
        }
    }
}

/// The full query path survives boundary queries on every dataset.
#[test]
fn boundary_queries_are_handled_everywhere() {
    for name in [SosdName::Face64, SosdName::Wiki64, SosdName::Logn64] {
        let dataset: Dataset<u64> = name.generate(5_000, 7);
        let keys = dataset.as_slice();
        let index = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_range_table()
            .build();
        for q in [
            0u64,
            dataset.min_key().unwrap(),
            dataset.min_key().unwrap().saturating_sub(1),
            dataset.max_key().unwrap(),
            dataset.max_key().unwrap().saturating_add(1),
            u64::MAX,
        ] {
            assert_eq!(index.lower_bound(q), dataset.lower_bound(q), "{name} q={q}");
        }
    }
}

/// SOSD file round trip feeds the whole pipeline: write a generated dataset,
/// read it back, index it, query it.
#[test]
fn sosd_file_roundtrip_feeds_the_index() {
    let dir = std::env::temp_dir().join("shift_table_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("amzn64_20k");

    let original: Dataset<u64> = SosdName::Amzn64.generate(N, 11);
    sosd_data::io::write_dataset_file(&path, &original).unwrap();
    let reloaded: Dataset<u64> = sosd_data::io::read_dataset_file(&path).unwrap();
    assert_eq!(original.as_slice(), reloaded.as_slice());

    let index = CorrectedIndex::builder(reloaded.as_slice(), InterpolationModel::build(&reloaded))
        .with_range_table()
        .build();
    let w = Workload::uniform_keys(&reloaded, QUERIES, 13);
    for (q, expected) in w.iter() {
        assert_eq!(index.lower_bound(q), expected);
    }
    std::fs::remove_file(&path).ok();
}

/// 32-bit datasets exercise the same pipeline with the narrower key type.
#[test]
fn u32_pipeline_end_to_end() {
    for name in [SosdName::Face32, SosdName::Amzn32, SosdName::Uspr32] {
        let dataset: Dataset<u32> = name.generate(N, 5);
        let keys = dataset.as_slice();
        let fast = FastTree::new(keys);
        let corrected = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_range_table()
            .build();
        let w = Workload::uniform_domain(&dataset, QUERIES, 17);
        for (q, expected) in w.iter() {
            assert_eq!(fast.lower_bound(q), expected, "{name}");
            assert_eq!(corrected.lower_bound(q), expected, "{name}");
        }
    }
}
