//! Cross-crate integration tests: every index in the workspace must agree
//! with the reference lower bound on every dataset family, end to end —
//! whether it is monomorphized over a borrowed key slice or composed at run
//! time from an `IndexSpec` over owned storage.

use shift_table_repro::prelude::*;

const N: usize = 20_000;
const QUERIES: usize = 400;

/// Every baseline and every corrected learned index, checked against the
/// reference `partition_point` lower bound on hit, miss and domain-uniform
/// workloads. The learned competitors are built twice: monomorphized over the
/// borrowed slice, and runtime-composed from spec strings over `Arc` storage.
#[test]
fn all_indexes_agree_with_the_reference_on_all_datasets() {
    for name in SosdName::all() {
        let dataset: Dataset<u64> = name.generate(N, 2024);
        let keys = dataset.as_slice();
        let shared = dataset.to_shared();

        let bs = BinarySearchIndex::new(keys);
        let branchless = BranchlessBinarySearch::new(keys);
        let is = InterpolationSearchIndex::new(keys);
        let tip = TipSearchIndex::new(keys);
        let rbs = RadixBinarySearch::new(keys);
        let btree = BPlusTree::new(keys);
        let fast = FastTree::new(keys);
        let art = ArtIndex::new(keys);
        let im_st = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_range_table()
            .build()
            .unwrap();
        let im_s10 = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_compact_table(10)
            .build()
            .unwrap();
        let rs_st =
            CorrectedIndex::builder(keys, RadixSpline::builder().max_error(32).build(&dataset))
                .with_range_table()
                .build()
                .unwrap();
        let rmi =
            CorrectedIndex::builder(keys, RmiIndex::builder().leaf_count(256).build(&dataset))
                .without_correction()
                .build()
                .unwrap();
        let pgm_st = CorrectedIndex::builder(keys, PgmModel::with_epsilon(&dataset, 64))
            .with_range_table()
            .build()
            .unwrap();

        // The same learned configurations, composed at run time.
        let spec_built: Vec<(String, DynRangeIndex<u64>)> =
            ["im+r1", "im+s10", "rs:32+r1", "rmi:256+none", "pgm:64+r1"]
                .iter()
                .map(|s| {
                    let index = IndexSpec::parse(s).unwrap().build(shared.clone()).unwrap();
                    (format!("spec:{s}"), index)
                })
                .collect();

        let mut indexes: Vec<(String, &dyn RangeIndex<u64>)> = vec![
            ("BS".into(), &bs),
            ("BS-branchless".into(), &branchless),
            ("IS".into(), &is),
            ("TIP".into(), &tip),
            ("RBS".into(), &rbs),
            ("B+tree".into(), &btree),
            ("FAST".into(), &fast),
            ("ART".into(), &art),
            ("IM+ShiftTable".into(), &im_st),
            ("IM+S-10".into(), &im_s10),
            ("RS+ShiftTable".into(), &rs_st),
            ("RMI".into(), &rmi),
            ("PGM+ShiftTable".into(), &pgm_st),
        ];
        for (label, index) in &spec_built {
            indexes.push((label.clone(), index));
        }

        for workload in [
            Workload::uniform_keys(&dataset, QUERIES, 1),
            Workload::uniform_domain(&dataset, QUERIES, 2),
            Workload::non_indexed(&dataset, QUERIES, 3),
            Workload::hot_range(&dataset, QUERIES, 4),
        ] {
            for (q, expected) in workload.iter() {
                for (label, index) in &indexes {
                    assert_eq!(
                        index.lower_bound(q),
                        expected,
                        "{label} disagrees on {name} for query {q}"
                    );
                }
            }
            // Batched lookups must agree with the scalar path for every index.
            for (label, index) in &indexes {
                assert_eq!(
                    index.lower_bound_many(workload.queries()),
                    workload.expected().to_vec(),
                    "{label} batch disagrees on {name}"
                );
            }
        }
    }
}

/// The full query path survives boundary queries on every dataset.
#[test]
fn boundary_queries_are_handled_everywhere() {
    for name in [SosdName::Face64, SosdName::Wiki64, SosdName::Logn64] {
        let dataset: Dataset<u64> = name.generate(5_000, 7);
        let keys = dataset.as_slice();
        let index = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_range_table()
            .build()
            .unwrap();
        for q in [
            0u64,
            dataset.min_key().unwrap(),
            dataset.min_key().unwrap().saturating_sub(1),
            dataset.max_key().unwrap(),
            dataset.max_key().unwrap().saturating_add(1),
            u64::MAX,
        ] {
            assert_eq!(index.lower_bound(q), dataset.lower_bound(q), "{name} q={q}");
        }
    }
}

/// Range queries resolve both endpoints with index probes (no keys argument,
/// no trailing scan) and agree with the reference on every index kind.
#[test]
fn range_queries_agree_with_the_reference() {
    let dataset: Dataset<u64> = SosdName::Wiki64.generate(N, 33);
    let keys = dataset.as_slice();
    let bs = BinarySearchIndex::new(keys);
    let corrected = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
        .with_range_table()
        .build()
        .unwrap();
    let dynamic = IndexSpec::parse("rs:32+r1")
        .unwrap()
        .build(dataset.to_shared())
        .unwrap();
    let w = Workload::uniform_domain(&dataset, 2 * QUERIES, 5);
    for pair in w.queries().chunks(2) {
        if pair.len() < 2 {
            continue;
        }
        let (lo, hi) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
        let expected = dataset.range_query(lo, hi);
        assert_eq!(bs.range(lo, hi), expected, "BS [{lo}, {hi}]");
        assert_eq!(corrected.range(lo, hi), expected, "corrected [{lo}, {hi}]");
        assert_eq!(dynamic.range(lo, hi), expected, "dyn [{lo}, {hi}]");
    }
    assert_eq!(bs.range(0, u64::MAX), 0..dataset.len());
}

/// SOSD file round trip feeds the whole pipeline: write a generated dataset,
/// read it back, move its keys into shared storage, index it, query it.
#[test]
fn sosd_file_roundtrip_feeds_the_index() {
    let dir = std::env::temp_dir().join("shift_table_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("amzn64_20k");

    let original: Dataset<u64> = SosdName::Amzn64.generate(N, 11);
    sosd_data::io::write_dataset_file(&path, &original).unwrap();
    let reloaded: Dataset<u64> = sosd_data::io::read_dataset_file(&path).unwrap();
    assert_eq!(original.as_slice(), reloaded.as_slice());

    let w = Workload::uniform_keys(&reloaded, QUERIES, 13);
    // Owned handoff: the dataset's key column moves into the index.
    let index =
        CorrectedIndex::owned_builder(reloaded.to_shared(), InterpolationModel::build(&reloaded))
            .with_range_table()
            .build()
            .unwrap();
    for (q, expected) in w.iter() {
        assert_eq!(index.lower_bound(q), expected);
    }
    std::fs::remove_file(&path).ok();
}

/// 32-bit datasets exercise the same pipeline with the narrower key type.
#[test]
fn u32_pipeline_end_to_end() {
    for name in [SosdName::Face32, SosdName::Amzn32, SosdName::Uspr32] {
        let dataset: Dataset<u32> = name.generate(N, 5);
        let keys = dataset.as_slice();
        let fast = FastTree::new(keys);
        let corrected = CorrectedIndex::builder(keys, InterpolationModel::build(&dataset))
            .with_range_table()
            .build()
            .unwrap();
        let dynamic = IndexSpec::parse("im+r1")
            .unwrap()
            .build(dataset.to_shared())
            .unwrap();
        let w = Workload::uniform_domain(&dataset, QUERIES, 17);
        for (q, expected) in w.iter() {
            assert_eq!(fast.lower_bound(q), expected, "{name}");
            assert_eq!(corrected.lower_bound(q), expected, "{name}");
            assert_eq!(dynamic.lower_bound(q), expected, "{name}");
        }
    }
}
