//! Property-based tests (proptest) over the core invariants of the
//! workspace: for *arbitrary* key multisets and models, every index must
//! return exactly the reference lower bound, Shift-Table windows must cover
//! their keys, and error bounds must hold.

use proptest::prelude::*;
use shift_table_repro::prelude::*;

/// Strategy: a sorted key vector with duplicates, clusters and extremes.
fn arb_keys() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            // small dense values (forces duplicates)
            0u64..500,
            // clustered mid-range values
            1_000_000u64..1_001_000,
            // sparse huge values
            any::<u64>(),
        ],
        1..400,
    )
    .prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// Strategy: query values that mix indexed keys, near misses and extremes.
fn arb_queries(keys: Vec<u64>) -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let key_pool = keys.clone();
    let q = prop_oneof![
        prop::sample::select(key_pool.clone()),
        prop::sample::select(key_pool).prop_map(|k| k.saturating_add(1)),
        any::<u64>(),
        Just(0u64),
        Just(u64::MAX),
    ];
    (Just(keys), prop::collection::vec(q, 1..50))
}

fn reference(keys: &[u64], q: u64) -> usize {
    keys.partition_point(|&k| k < q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The corrected index (IM + range-mode Shift-Table) is exact for any
    /// key multiset and any query.
    #[test]
    fn corrected_index_matches_reference((keys, queries) in arb_keys().prop_flat_map(arb_queries)) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let index = CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
            .with_range_table()
            .build();
        for q in queries {
            prop_assert_eq!(index.lower_bound(q), reference(dataset.as_slice(), q));
        }
    }

    /// The compact (midpoint) layer is exact too, at any compression factor.
    #[test]
    fn compact_corrected_index_matches_reference(
        (keys, queries) in arb_keys().prop_flat_map(arb_queries),
        x in 1usize..200,
    ) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let index = CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
            .with_compact_table(x)
            .build();
        for q in queries {
            prop_assert_eq!(index.lower_bound(q), reference(dataset.as_slice(), q));
        }
    }

    /// Every algorithmic baseline agrees with the reference lower bound.
    #[test]
    fn baselines_match_reference((keys, queries) in arb_keys().prop_flat_map(arb_queries)) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let k = dataset.as_slice();
        let bs = BinarySearchIndex::new(k);
        let is = InterpolationSearchIndex::new(k);
        let tip = TipSearchIndex::new(k);
        let rbs = RadixBinarySearch::new(k);
        let bt = BPlusTree::new(k);
        let fast = FastTree::new(k);
        let art = ArtIndex::new(k);
        for q in queries {
            let expected = reference(k, q);
            prop_assert_eq!(bs.lower_bound(q), expected);
            prop_assert_eq!(is.lower_bound(q), expected);
            prop_assert_eq!(tip.lower_bound(q), expected);
            prop_assert_eq!(rbs.lower_bound(q), expected);
            prop_assert_eq!(bt.lower_bound(q), expected);
            prop_assert_eq!(fast.lower_bound(q), expected);
            prop_assert_eq!(art.lower_bound(q), expected);
        }
    }

    /// Shift-Table windows contain the true position of every indexed key
    /// (the §3 invariant behind Algorithm 1), for any monotone model.
    #[test]
    fn shift_table_windows_cover_all_keys(keys in arb_keys()) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let model = InterpolationModel::build(&dataset);
        let table = ShiftTable::build(&model, dataset.as_slice());
        for (i, &k) in dataset.as_slice().iter().enumerate() {
            let target = dataset.lower_bound(k);
            let _ = i;
            let hint = table.correct(learned_index::CdfModel::<u64>::predict_clamped(&model, k));
            let window = hint.window.unwrap().max(1);
            prop_assert!(hint.start <= target && target < hint.start + window,
                "key {} target {} outside [{}, {})", k, target, hint.start, hint.start + window);
        }
    }

    /// RadixSpline and PGM honour their declared error bounds on arbitrary
    /// data.
    #[test]
    fn error_bounded_models_hold_their_bounds(keys in arb_keys(), eps in 1usize..128) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let rs = RadixSpline::builder().max_error(eps).build(&dataset);
        let pgm = PgmModel::with_epsilon(&dataset, eps);
        let mut last = None;
        for (i, &k) in dataset.as_slice().iter().enumerate() {
            if last == Some(k) { continue; }
            last = Some(k);
            let rs_err = (learned_index::CdfModel::<u64>::predict(&rs, k) as i64 - i as i64).unsigned_abs();
            let pgm_err = (learned_index::CdfModel::<u64>::predict(&pgm, k) as i64 - i as i64).unsigned_abs();
            prop_assert!(rs_err as usize <= eps + 1, "RS err {} > eps {}", rs_err, eps);
            prop_assert!(pgm_err as usize <= eps + 1, "PGM err {} > eps {}", pgm_err, eps);
        }
    }

    /// The dataset's own range query is consistent with lower/upper bounds,
    /// and the corrected index reproduces it.
    #[test]
    fn range_queries_are_consistent((keys, queries) in arb_keys().prop_flat_map(arb_queries)) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let index = CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
            .with_range_table()
            .build();
        for pair in queries.chunks(2) {
            if pair.len() < 2 { continue; }
            let (lo, hi) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let expected = dataset.range_query(lo, hi);
            let got = index.range(lo, hi, dataset.as_slice());
            prop_assert_eq!(&got, &expected);
            for i in got {
                prop_assert!(dataset.key_at(i) >= lo && dataset.key_at(i) <= hi);
            }
        }
    }

    /// The SOSD binary format round-trips arbitrary key vectors.
    #[test]
    fn sosd_io_roundtrips(keys in arb_keys()) {
        let mut buf = Vec::new();
        sosd_data::io::write_keys(&mut buf, &keys).unwrap();
        let back: Vec<u64> = sosd_data::io::read_keys(&buf[..]).unwrap();
        prop_assert_eq!(back, keys);
    }

    /// Workload ground truth is always the reference lower bound.
    #[test]
    fn workloads_report_correct_expected_positions(keys in arb_keys(), seed in any::<u64>()) {
        let dataset = Dataset::from_sorted_keys("prop", keys);
        for w in [
            Workload::uniform_keys(&dataset, 32, seed),
            Workload::uniform_domain(&dataset, 32, seed),
            Workload::non_indexed(&dataset, 32, seed),
        ] {
            for (q, expected) in w.iter() {
                prop_assert_eq!(expected, reference(dataset.as_slice(), q));
            }
        }
    }
}
