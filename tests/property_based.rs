//! Randomized property tests over the core invariants of the workspace,
//! driven by a deterministic in-workspace RNG (`SplitMix64`) so they run
//! without external dependencies and reproduce exactly: for *arbitrary* key
//! multisets and models, every index must return exactly the reference lower
//! bound, batched lookups must equal scalar lookups, Shift-Table windows must
//! cover their keys, and error bounds must hold.

use shift_table_repro::prelude::*;

/// Number of random cases per property.
const CASES: usize = 64;

/// A sorted key vector with duplicates, clusters and extremes (the shape the
/// old proptest strategy produced).
fn arb_keys(rng: &mut SplitMix64) -> Vec<u64> {
    let len = 1 + rng.next_below(400) as usize;
    let mut keys = Vec::with_capacity(len);
    for _ in 0..len {
        let k = match rng.next_below(3) {
            // small dense values (forces duplicates)
            0 => rng.next_below(500),
            // clustered mid-range values
            1 => 1_000_000 + rng.next_below(1_000),
            // sparse huge values
            _ => rng.next_u64(),
        };
        keys.push(k);
    }
    keys.sort_unstable();
    keys
}

/// Query values that mix indexed keys, near misses and extremes.
fn arb_queries(rng: &mut SplitMix64, keys: &[u64]) -> Vec<u64> {
    let len = 1 + rng.next_below(50) as usize;
    (0..len)
        .map(|_| {
            let pick = keys[rng.next_below(keys.len() as u64) as usize];
            match rng.next_below(5) {
                0 => pick,
                1 => pick.saturating_add(1),
                2 => rng.next_u64(),
                3 => 0,
                _ => u64::MAX,
            }
        })
        .collect()
}

fn reference(keys: &[u64], q: u64) -> usize {
    keys.partition_point(|&k| k < q)
}

/// The corrected index (IM + range-mode Shift-Table) is exact for any key
/// multiset and any query, on both the scalar and the batched path.
#[test]
fn corrected_index_matches_reference() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for case in 0..CASES {
        let keys = arb_keys(&mut rng);
        let queries = arb_queries(&mut rng, &keys);
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let index =
            CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
                .with_range_table()
                .build()
                .unwrap();
        for &q in &queries {
            assert_eq!(
                index.lower_bound(q),
                reference(dataset.as_slice(), q),
                "case {case} q={q}"
            );
        }
        let batch = index.lower_bound_many(&queries);
        for (&q, got) in queries.iter().zip(batch) {
            assert_eq!(
                got,
                reference(dataset.as_slice(), q),
                "case {case} batch q={q}"
            );
        }
    }
}

/// The compact (midpoint) layer is exact too, at any compression factor.
#[test]
fn compact_corrected_index_matches_reference() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for case in 0..CASES {
        let keys = arb_keys(&mut rng);
        let queries = arb_queries(&mut rng, &keys);
        let x = 1 + rng.next_below(199) as usize;
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let index =
            CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
                .with_compact_table(x)
                .build()
                .unwrap();
        for &q in &queries {
            assert_eq!(
                index.lower_bound(q),
                reference(dataset.as_slice(), q),
                "case {case} S-{x} q={q}"
            );
        }
    }
}

/// Every algorithmic baseline agrees with the reference lower bound.
#[test]
fn baselines_match_reference() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for case in 0..CASES {
        let keys = arb_keys(&mut rng);
        let queries = arb_queries(&mut rng, &keys);
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let k = dataset.as_slice();
        let bs = BinarySearchIndex::new(k);
        let is = InterpolationSearchIndex::new(k);
        let tip = TipSearchIndex::new(k);
        let rbs = RadixBinarySearch::new(k);
        let bt = BPlusTree::new(k);
        let fast = FastTree::new(k);
        let art = ArtIndex::new(k);
        for &q in &queries {
            let expected = reference(k, q);
            assert_eq!(bs.lower_bound(q), expected, "case {case} BS q={q}");
            assert_eq!(is.lower_bound(q), expected, "case {case} IS q={q}");
            assert_eq!(tip.lower_bound(q), expected, "case {case} TIP q={q}");
            assert_eq!(rbs.lower_bound(q), expected, "case {case} RBS q={q}");
            assert_eq!(bt.lower_bound(q), expected, "case {case} B+tree q={q}");
            assert_eq!(fast.lower_bound(q), expected, "case {case} FAST q={q}");
            assert_eq!(art.lower_bound(q), expected, "case {case} ART q={q}");
        }
    }
}

/// For **every** `IndexSpec` model×layer combination, on **all** SOSD
/// generators: `lower_bound_batch` ≡ scalar `lower_bound` ≡
/// `slice::partition_point`, for hit, miss and extreme queries. This is the
/// acceptance matrix of the runtime-composition layer.
#[test]
fn every_spec_combination_is_exact_on_all_sosd_generators() {
    let n = 2_000;
    let combos = IndexSpec::all_combinations();
    assert_eq!(combos.len(), 24, "6 model families x 4 layer families");
    for name in SosdName::all() {
        let dataset: Dataset<u64> = name.generate(n, 77);
        let shared = dataset.to_shared();
        let mut workload = Workload::uniform_domain(&dataset, 100, 7)
            .queries()
            .to_vec();
        workload.extend(Workload::uniform_keys(&dataset, 100, 8).queries());
        workload.extend([0, 1, u64::MAX, dataset.max_key().unwrap()]);
        let expected: Vec<usize> = workload
            .iter()
            .map(|&q| dataset.as_slice().partition_point(|&k| k < q))
            .collect();
        for spec in &combos {
            let index = spec.build(shared.clone()).unwrap();
            assert_eq!(index.len(), n, "{name} {spec}");
            for (&q, &e) in workload.iter().zip(expected.iter()) {
                assert_eq!(index.lower_bound(q), e, "{name} {spec} scalar q={q}");
            }
            assert_eq!(
                index.lower_bound_many(&workload),
                expected,
                "{name} {spec} batch"
            );
        }
    }
}

/// For **every** `IndexSpec` combination, the pipelined batch kernel, the
/// stage-blocked baseline and the scalar path all equal
/// `slice::partition_point` — on SOSD-shaped data and on adversarial
/// shapes (empty and single-key columns, duplicate-heavy runs), with query
/// slices whose lengths are deliberately not multiples of the kernel's
/// batch block (so the tail-truncation invariant is exercised every case).
#[test]
fn batched_kernel_equals_blocked_and_reference_for_every_spec() {
    let mut dup_heavy: Vec<u64> = (0..1_500u64).map(|v| (v % 13) * 100).collect();
    dup_heavy.sort_unstable();
    let shapes: Vec<(&str, Vec<u64>)> = vec![
        ("empty", Vec::new()),
        ("single", vec![42]),
        ("dup-heavy", dup_heavy),
        (
            "osmc",
            SosdName::Osmc64.generate(1_500, 99).as_slice().to_vec(),
        ),
        (
            "face",
            SosdName::Face64.generate(1_500, 99).as_slice().to_vec(),
        ),
    ];
    // 0 and 1 are degenerate batches; 63/65/130/203 straddle the 64-query
    // default block without ever being a multiple of it.
    let lens = [0usize, 1, 63, 64, 65, 130, 203];
    for (label, keys) in &shapes {
        let mut rng = SplitMix64::new(0x5EED_0010);
        let pool: Vec<u64> = (0..lens.iter().copied().max().unwrap())
            .map(|_| match rng.next_below(5) {
                0 if !keys.is_empty() => keys[rng.next_below(keys.len() as u64) as usize],
                1 if !keys.is_empty() => {
                    keys[rng.next_below(keys.len() as u64) as usize].saturating_add(1)
                }
                2 => rng.next_u64(),
                3 => 0,
                _ => u64::MAX,
            })
            .collect();
        let expected: Vec<usize> = pool
            .iter()
            .map(|&q| keys.partition_point(|&k| k < q))
            .collect();
        let shared: std::sync::Arc<[u64]> = keys.clone().into();
        for spec in IndexSpec::all_combinations() {
            let index = spec.build_corrected(shared.clone()).unwrap();
            for &len in &lens {
                let queries = &pool[..len];
                let mut kernel = vec![0usize; len];
                let mut blocked = vec![0usize; len];
                index.lower_bound_batch(queries, &mut kernel);
                index.lower_bound_batch_blocked(queries, &mut blocked);
                assert_eq!(kernel, expected[..len], "{label} {spec} kernel len={len}");
                assert_eq!(blocked, expected[..len], "{label} {spec} blocked len={len}");
                for (&q, &e) in queries.iter().zip(expected.iter()) {
                    assert_eq!(index.lower_bound(q), e, "{label} {spec} scalar q={q}");
                }
            }
        }
    }
}

/// The kernel stays exact across the whole block/wave tuning grid (clamping
/// included), not just the defaults: every configured index must equal the
/// reference on the same adversarial query pool.
#[test]
fn batched_kernel_is_exact_across_the_tuning_grid() {
    let dataset: Dataset<u64> = SosdName::Amzn64.generate(2_000, 5);
    let shared = dataset.to_shared();
    let mut workload = Workload::uniform_keys(&dataset, 150, 11).queries().to_vec();
    workload.extend([0, 1, u64::MAX]);
    let expected: Vec<usize> = workload
        .iter()
        .map(|&q| dataset.as_slice().partition_point(|&k| k < q))
        .collect();
    let spec = IndexSpec::parse("im+r1").unwrap();
    for block in [1usize, 2, 7, 64, 128, 100_000] {
        for wave in [1usize, 3, 8, 64, 100_000] {
            let config = ShiftTableConfig::default()
                .with_batch_block(block)
                .with_wave_depth(wave);
            let index = spec
                .build_corrected_with(shared.clone(), config, 1)
                .unwrap();
            let mut out = vec![0usize; workload.len()];
            index.lower_bound_batch(&workload, &mut out);
            assert_eq!(out, expected, "block={block} wave={wave}");
        }
    }
}

/// Spec strings round-trip through `Display`/`parse`, and malformed specs are
/// rejected with the right error class.
#[test]
fn spec_parse_roundtrip_and_errors() {
    for spec in IndexSpec::all_combinations() {
        let text = spec.to_string();
        assert_eq!(IndexSpec::parse(&text).unwrap(), spec, "{text}");
    }
    // Layer defaults to r1 when omitted.
    assert_eq!(
        IndexSpec::parse("pgm:64").unwrap(),
        IndexSpec::parse("pgm:64+r1").unwrap()
    );
    for bad in [
        "",
        "+r1",
        "im+",
        "skiplist+r1",
        "rmi+r1",
        "rmi:zero+r1",
        "rs:0+r1",
        "im+r2",
        "im+s",
        "im+s0",
        "im+auto+r1",
        "im:s1",
    ] {
        assert!(IndexSpec::parse(bad).is_err(), "`{bad}` should not parse");
    }
}

/// Shift-Table windows contain the true position of every indexed key (the §3
/// invariant behind Algorithm 1), for any monotone model.
#[test]
fn shift_table_windows_cover_all_keys() {
    let mut rng = SplitMix64::new(0x5EED_0004);
    for case in 0..CASES {
        let keys = arb_keys(&mut rng);
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let model = InterpolationModel::build(&dataset);
        let table = ShiftTable::build(&model, dataset.as_slice());
        for &k in dataset.as_slice() {
            let target = dataset.lower_bound(k);
            let hint = table.correct(learned_index::CdfModel::<u64>::predict_clamped(&model, k));
            let window = hint.window.unwrap().max(1);
            assert!(
                hint.start <= target && target < hint.start + window,
                "case {case}: key {k} target {target} outside [{}, {})",
                hint.start,
                hint.start + window
            );
        }
    }
}

/// RadixSpline and PGM honour their declared error bounds on arbitrary data.
#[test]
fn error_bounded_models_hold_their_bounds() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    for _ in 0..CASES {
        let keys = arb_keys(&mut rng);
        let eps = 1 + rng.next_below(127) as usize;
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let rs = RadixSpline::builder().max_error(eps).build(&dataset);
        let pgm = PgmModel::with_epsilon(&dataset, eps);
        let mut last = None;
        for (i, &k) in dataset.as_slice().iter().enumerate() {
            if last == Some(k) {
                continue;
            }
            last = Some(k);
            let rs_err =
                (learned_index::CdfModel::<u64>::predict(&rs, k) as i64 - i as i64).unsigned_abs();
            let pgm_err =
                (learned_index::CdfModel::<u64>::predict(&pgm, k) as i64 - i as i64).unsigned_abs();
            assert!(rs_err as usize <= eps + 1, "RS err {rs_err} > eps {eps}");
            assert!(pgm_err as usize <= eps + 1, "PGM err {pgm_err} > eps {eps}");
        }
    }
}

/// The dataset's own range query is consistent with lower/upper bounds, and
/// the corrected index reproduces it through the probe-based `range`.
#[test]
fn range_queries_are_consistent() {
    let mut rng = SplitMix64::new(0x5EED_0006);
    for case in 0..CASES {
        let keys = arb_keys(&mut rng);
        let queries = arb_queries(&mut rng, &keys);
        let dataset = Dataset::from_sorted_keys("prop", keys);
        let index =
            CorrectedIndex::builder(dataset.as_slice(), InterpolationModel::build(&dataset))
                .with_range_table()
                .build()
                .unwrap();
        for pair in queries.chunks(2) {
            if pair.len() < 2 {
                continue;
            }
            let (lo, hi) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let expected = dataset.range_query(lo, hi);
            let got = index.range(lo, hi);
            assert_eq!(got, expected, "case {case} [{lo}, {hi}]");
            for i in got {
                assert!(dataset.key_at(i) >= lo && dataset.key_at(i) <= hi);
            }
        }
    }
}

/// `RangeIndex::range` boundary cases hold for **every** `IndexSpec` in the
/// matrix: `hi == K::MAX` (the `checked_next() → None` path), inverted
/// ranges (`lo > hi`), the empty index, and ranges fully inside a run of
/// duplicate keys.
#[test]
fn range_boundary_cases_hold_for_every_spec() {
    // A long duplicate run, sparse neighbours and a key at the domain
    // maximum (so `hi == u64::MAX` must still include it).
    let mut keys: Vec<u64> = vec![0, 1, 5];
    keys.extend(std::iter::repeat_n(1_000u64, 500));
    keys.extend([2_000, 3_000, u64::MAX]);
    let dataset = Dataset::from_sorted_keys("edge", keys);
    let shared = dataset.to_shared();
    let oracle = |lo: u64, hi: u64| -> std::ops::Range<usize> {
        let ks = dataset.as_slice();
        if lo > hi {
            return 0..0;
        }
        let start = ks.partition_point(|&k| k < lo);
        let end = match hi.checked_add(1) {
            Some(h) => ks.partition_point(|&k| k < h),
            None => ks.len(),
        };
        start..end.max(start)
    };
    let cases: &[(u64, u64)] = &[
        (0, u64::MAX),        // whole domain, checked_next() → None
        (u64::MAX, u64::MAX), // single key at the maximum
        (3_001, u64::MAX),    // tail range ending at the maximum
        (1_000, 1_000),       // exactly the duplicate run
        (999, 1_001),         // straddling the run by one on each side
        (6, 900),             // miss range left of the run
        (2_001, 2_999),       // miss range right of the run
        (0, 0),               // single smallest key
    ];
    for spec in IndexSpec::all_combinations() {
        let index = spec.build(shared.clone()).unwrap();
        for &(lo, hi) in cases {
            assert_eq!(index.range(lo, hi), oracle(lo, hi), "{spec} [{lo}, {hi}]");
        }
        // Inverted ranges are empty regardless of the endpoints.
        assert_eq!(index.range(9, 3), 0..0, "{spec} inverted");
        assert_eq!(index.range(u64::MAX, 0), 0..0, "{spec} inverted max");

        // The empty index: every range is empty, on every spec.
        let empty = spec.build(Vec::<u64>::new()).unwrap();
        assert_eq!(empty.len(), 0, "{spec} empty len");
        assert_eq!(empty.range(0, u64::MAX), 0..0, "{spec} empty full");
        assert_eq!(empty.range(5, 5), 0..0, "{spec} empty point");
    }
}

/// The SOSD binary format round-trips arbitrary key vectors.
#[test]
fn sosd_io_roundtrips() {
    let mut rng = SplitMix64::new(0x5EED_0007);
    for _ in 0..CASES {
        let keys = arb_keys(&mut rng);
        let mut buf = Vec::new();
        sosd_data::io::write_keys(&mut buf, &keys).unwrap();
        let back: Vec<u64> = sosd_data::io::read_keys(&buf[..]).unwrap();
        assert_eq!(back, keys);
    }
}

/// Workload ground truth is always the reference lower bound.
#[test]
fn workloads_report_correct_expected_positions() {
    let mut rng = SplitMix64::new(0x5EED_0008);
    for _ in 0..CASES {
        let keys = arb_keys(&mut rng);
        let seed = rng.next_u64();
        let dataset = Dataset::from_sorted_keys("prop", keys);
        for w in [
            Workload::uniform_keys(&dataset, 32, seed),
            Workload::uniform_domain(&dataset, 32, seed),
            Workload::non_indexed(&dataset, 32, seed),
        ] {
            for (q, expected) in w.iter() {
                assert_eq!(expected, reference(dataset.as_slice(), q));
            }
        }
    }
}
