//! 1-in-N sampling and sampled scoped timers.
//!
//! The serving path must stay clocking-free: `Instant::now()` is a `rdtsc`
//! plus a vDSO call and costs more than the store's entire in-cache lookup.
//! A [`Sampler`] decides *whether* to time with one relaxed `fetch_add`
//! (~1ns), and [`SampledTimer`] reads the clock only on the sampled calls,
//! so an unsampled operation pays one atomic increment and one predictable
//! branch — nothing else.
//!
//! Sampled latencies feed a [`Histogram`] unscaled: percentiles of a
//! uniform 1-in-N subsample estimate the population percentiles directly
//! (no count rescaling), which is exactly what the latency readouts want.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Deterministic 1-in-N sampler (N rounded up to a power of two).
///
/// Stride sampling, not random: every N-th call is sampled, which is free
/// of rejection loops and unbiased for percentile estimation as long as the
/// instrumented operation count is not phase-locked to N (latency streams
/// never are in practice).
#[derive(Debug)]
pub struct Sampler {
    mask: u64,
    tick: AtomicU64,
}

impl Sampler {
    /// A sampler that fires once every `n` calls, with `n` rounded up to
    /// the next power of two (`n = 0` and `n = 1` both mean "always").
    pub const fn one_in(n: u64) -> Self {
        let mask = if n <= 1 { 0 } else { n.next_power_of_two() - 1 };
        Self {
            mask,
            tick: AtomicU64::new(0),
        }
    }

    /// The effective sampling period (a power of two).
    pub fn period(&self) -> u64 {
        self.mask + 1
    }

    /// Should this call be sampled?
    #[inline]
    pub fn hit(&self) -> bool {
        // lint: ordering(Relaxed) sampling tick — only drives the 1-in-N decision, no sync role
        self.tick.fetch_add(1, Ordering::Relaxed) & self.mask == 0
    }

    /// Start a scoped timer on the sampled calls: reads the clock only when
    /// [`Sampler::hit`] fires.
    #[inline]
    pub fn start(&self) -> SampledTimer {
        SampledTimer {
            start: if self.hit() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }
}

/// A possibly-armed scoped timer returned by [`Sampler::start`].
///
/// Dropping an armed timer without calling [`SampledTimer::finish`] simply
/// discards the sample — there is no implicit record-on-drop, so early
/// returns and error paths never pollute a latency histogram.
#[derive(Debug)]
#[must_use = "an unfinished timer records nothing"]
pub struct SampledTimer {
    start: Option<Instant>,
}

impl SampledTimer {
    /// A timer that is never armed (for the disabled-metrics path).
    #[inline]
    pub const fn disarmed() -> Self {
        Self { start: None }
    }

    /// A timer armed by an external sampling decision: reads the clock now.
    ///
    /// For callers that derive their 1-in-N decision from a counter they
    /// already maintain (see [`Counter::add_get`](crate::Counter::add_get))
    /// instead of paying a dedicated [`Sampler`] tick.
    #[inline]
    pub fn armed_now() -> Self {
        Self {
            start: Some(Instant::now()),
        }
    }

    /// True when this call was sampled and the clock is running.
    #[inline]
    pub fn armed(&self) -> bool {
        self.start.is_some()
    }

    /// Record the elapsed nanoseconds into `hist` if this call was sampled.
    #[inline]
    pub fn finish(self, hist: &Histogram) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos();
            hist.record(if ns > u64::MAX as u128 {
                u64::MAX
            } else {
                ns as u64
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_in_one_always_fires() {
        let s = Sampler::one_in(1);
        assert_eq!(s.period(), 1);
        for _ in 0..10 {
            assert!(s.hit());
        }
    }

    #[test]
    fn period_rounds_up_and_fires_exactly_once_per_period() {
        let s = Sampler::one_in(6);
        assert_eq!(s.period(), 8);
        let hits = (0..64).filter(|_| s.hit()).count();
        assert_eq!(hits, 8);
    }

    #[test]
    fn sampled_timer_records_only_when_armed() {
        let h = Histogram::new();
        let s = Sampler::one_in(4);
        for _ in 0..16 {
            s.start().finish(&h);
        }
        assert_eq!(h.snapshot().count(), 4);
        SampledTimer::disarmed().finish(&h);
        assert_eq!(h.snapshot().count(), 4);
    }

    #[test]
    fn armed_now_records_without_a_sampler() {
        let h = Histogram::new();
        let t = SampledTimer::armed_now();
        assert!(t.armed());
        t.finish(&h);
        assert_eq!(h.snapshot().count(), 1);
    }
}
