//! Lock-free metric primitives: counters, gauges and log2-bucketed
//! histograms.
//!
//! Every primitive is a thin shell over relaxed atomics — increments on the
//! serving path cost one uncontended `lock xadd` and carry no
//! happens-before edges. Readouts are therefore *statistical*, not
//! transactional: a snapshot taken while writers are active can observe a
//! count that is a few increments ahead of the matching sum. That is the
//! correct trade for telemetry; anything that needs exactness (tests, the
//! churn oracle) quiesces writers first, at which point relaxed counters
//! are exact (same-variable modification order is total).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets in a [`Histogram`]: one per possible bit width of
/// a `u64` value, so any nanosecond latency (or byte size) has a bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` and return the value the counter held *before* the add.
    ///
    /// One `fetch_add`, same cost as [`Counter::add`] — callers that already
    /// pay for the count can derive a deterministic sampling decision from
    /// the returned ordinal (e.g. "did this add cross a power-of-two
    /// stride?") without a second atomic RMW.
    #[inline]
    pub fn add_get(&self, n: u64) -> u64 {
        // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
        self.value.fetch_add(n, Ordering::Relaxed)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depths, decayed frequencies).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        // lint: ordering(Relaxed) statistics gauge — no reader synchronises through it
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free latency/size histogram with power-of-two buckets.
///
/// Bucket `i` counts observations `v` with `bit_width(v) == i`, i.e. bucket
/// 0 holds `v == 0`, bucket `i > 0` holds `2^(i-1) <= v < 2^i`. Recording is
/// two relaxed `fetch_add`s (bucket + sum); there is no lock, no allocation
/// and no floating point on the write path.
///
/// Percentile readouts interpolate linearly *inside* the winning bucket, so
/// a reported quantile `q` is always within the bucket that contains the
/// true `q`-th observation: `true/2 < reported <= 2*true` in the worst case,
/// and exact when all observations in the bucket share one value's scale.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; an inline-const element builds the
        // array without a named interior-mutable constant.
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index of a value: its bit width.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        // `bucket_of` is in 0..=64 but 64 only for v with the top bit set;
        // clamp keeps the index in range for every input.
        let b = Self::bucket_of(v).min(HISTOGRAM_BUCKETS - 1);
        // lint: ordering(Relaxed) statistics histogram — no reader synchronises through it
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        // lint: ordering(Relaxed) statistics histogram — no reader synchronises through it
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// An owned point-in-time copy of the histogram contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
            *out = b.load(Ordering::Relaxed);
        }
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot { buckets, sum }
    }
}

/// An owned histogram readout with percentile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`bucket_of` layout, see [`Histogram`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The inclusive upper bound of bucket `i`. Bucket 63 also absorbs
    /// values with the top bit set, so its edge is `u64::MAX`.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=62 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// The smallest value bucket `i` can hold.
    fn bucket_lower(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 1u64 << (i - 1),
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), linearly interpolated within the
    /// winning bucket. Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based, ceil) — p50 of 2 samples
        // is the first one, matching the nearest-rank definition.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Self::bucket_lower(i) as f64;
                let hi = Self::bucket_upper(i) as f64;
                // Position of the rank within this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                return (lo + (hi - lo) * frac).round() as u64;
            }
            seen += c;
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// The standard latency quartet: p50, p90, p99, p99.9.
    pub fn percentiles(&self) -> [u64; 4] {
        [
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 2); // 4, 7
        assert_eq!(s.buckets[4], 1); // 8
        assert_eq!(s.buckets[10], 1); // 1023
        assert_eq!(s.buckets[11], 1); // 1024
        assert_eq!(s.buckets[63], 1); // u64::MAX
        assert_eq!(
            s.sum,
            (1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024u64).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn quantiles_stay_within_bucket_bounds() {
        let h = Histogram::new();
        // 1000 observations of 100ns, 10 of 10_000ns.
        for _ in 0..1000 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        // 100 lives in bucket 7 (64..128); every quantile up to p99 must
        // land inside that bucket's bounds.
        for q in [0.5, 0.9, 0.99] {
            let v = s.quantile(q);
            assert!((64..=128).contains(&v), "q{q}: {v}");
        }
        // p99.9 catches the tail: bucket 14 (8192..16384).
        let v = s.quantile(0.999);
        assert!((8192..=16384).contains(&v), "p999: {v}");
        assert_eq!(s.quantile(0.0), s.quantile(0.000001));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
