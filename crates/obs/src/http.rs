//! A minimal, dependency-free `/metrics` HTTP endpoint.
//!
//! One `std::net::TcpListener` accept loop on one background thread,
//! serving HTTP/1.0 responses: `/metrics` renders the provider's
//! [`MetricsReport`] as Prometheus text, `/metrics.json` as JSON, anything
//! else is 404. Connections are served sequentially — a scrape endpoint is
//! polled by one collector every few seconds, not load-balanced traffic —
//! and a short read timeout keeps a stuck client from wedging the loop.
//!
//! Shutdown is condvar-free and sleep-free: [`MetricsServer::shutdown`]
//! (also invoked on drop) sets a stop flag and then connects to the
//! listener itself, which unblocks the accept call so the thread observes
//! the flag and exits. The provider closure runs on the server thread, so
//! it must be `Send + Sync` and should stay cheap (the store's scrape is a
//! pass over relaxed counters).

use crate::export::MetricsReport;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The metrics provider callback: produces a fresh report per scrape.
pub type MetricsProvider = Arc<dyn Fn() -> MetricsReport + Send + Sync>;

/// A running `/metrics` endpoint; shuts down when dropped.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    pub fn start(addr: SocketAddr, provider: MetricsProvider) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("shift-obs-metrics".into())
            .spawn(move || serve(listener, provider, stop2))?;
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolved port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread (idempotent).
    pub fn shutdown(&mut self) {
        // lint: ordering(Release) stop flag — pairs with the Acquire load in the accept loop
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call by connecting to ourselves; if the
        // connect fails the listener is already gone and the loop exits on
        // its own error path.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, provider: MetricsProvider, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        // lint: ordering(Acquire) stop flag — pairs with the Release store in shutdown
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = conn else {
            // Transient accept errors (EMFILE, aborted handshake): keep
            // serving; a broken listener yields errors forever, but the
            // stop flag still ends the loop on shutdown.
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle(&mut stream, &provider);
    }
}

fn handle(stream: &mut TcpStream, provider: &MetricsProvider) -> std::io::Result<()> {
    // Read the request head (we only need the request line; 1KiB is plenty
    // for `GET /metrics HTTP/1.1` plus scraper headers to locate the path).
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            provider().to_prometheus(),
        ),
        "/metrics.json" => ("200 OK", "application/json", provider().to_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "404: try /metrics or /metrics.json\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{parse_prometheus, Metric};

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        // One write_all: a fragmented request could race the server's
        // response-and-close and see a broken pipe on the tail fragment.
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json_then_shuts_down() {
        let provider: MetricsProvider = Arc::new(|| MetricsReport {
            metrics: vec![Metric::counter("test_total", "a test counter", 7)],
        });
        let mut server = MetricsServer::start("127.0.0.1:0".parse().unwrap(), provider).unwrap();
        let addr = server.addr();

        let text = scrape(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.0 200"));
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        let parsed = parse_prometheus(body).unwrap();
        assert_eq!(parsed[0].name, "test_total");
        assert_eq!(parsed[0].value, 7.0);

        let json = scrape(addr, "/metrics.json");
        assert!(json.contains("\"value\":7"));

        let missing = scrape(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));

        // The real assertion is that shutdown joins instead of hanging on
        // the blocked accept; calling it twice checks idempotence.
        server.shutdown();
        server.shutdown();
    }
}
