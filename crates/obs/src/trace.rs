//! A bounded, lock-free, drop-oldest trace ring.
//!
//! Producers (maintenance workers, writers, readers on their cold-path
//! branches) publish fixed-size `[u64; 4]` records without locking:
//! a ticket is claimed with one relaxed `fetch_add`, and the claimed slot is
//! filled under a per-slot sequence word that works like a seqlock — odd
//! while the payload is being written, even (and encoding the ticket) once
//! complete. When the ring wraps, the oldest records are overwritten; the
//! consumer accounts for every lost record exactly from the ticket
//! arithmetic (`head − capacity − cursor`), plus any record it caught
//! mid-overwrite, so `drained + dropped` always equals the number pushed.
//!
//! Draining takes a mutex over the read cursor only — the consumer is the
//! cold path (`store.trace_events()`, a scrape endpoint), and serialising
//! concurrent drains keeps the "each record is delivered at most once"
//! contract trivial. Producers never touch that lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One ring slot: a seqlock-style sequence word plus the record payload.
#[derive(Debug)]
struct Slot {
    /// `2*ticket + 1` while the producer writes, `2*ticket + 2` when the
    /// payload is complete, 0 when never written.
    seq: AtomicU64,
    payload: [AtomicU64; 4],
}

impl Slot {
    const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            payload: [const { AtomicU64::new(0) }; 4],
        }
    }
}

/// The completed-sequence value for ticket `t`.
#[inline]
fn done_seq(t: u64) -> u64 {
    2 * t + 2
}

/// A bounded lock-free ring of `[u64; 4]` records with drop-oldest
/// overflow and exact drop accounting.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Total tickets ever claimed (the next ticket to hand out).
    head: AtomicU64,
    /// Records lost to overflow or mid-overwrite races, counted at drain.
    dropped: AtomicU64,
    /// Next ticket the consumer will read. Producers never touch this.
    cursor: Mutex<u64>,
}

impl TraceRing {
    /// A ring holding up to `capacity` records (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        let slots = (0..cap).map(|_| Slot::new()).collect::<Vec<_>>();
        Self {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cursor: Mutex::new(0),
        }
    }

    /// The ring capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed.
    pub fn pushed(&self) -> u64 {
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        self.head.load(Ordering::Relaxed)
    }

    /// Total records lost (overflow drop-oldest plus mid-overwrite races),
    /// as accounted by past drains.
    pub fn dropped(&self) -> u64 {
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish one record (lock-free; drop-oldest on overflow).
    ///
    /// The slot sequence only ever moves forward (`fetch_max`), so a
    /// producer that was preempted long enough for the ring to lap it can
    /// neither regress the slot nor strand the consumer: it observes that a
    /// newer ticket already claimed the slot and abandons its write (the
    /// consumer accounts the record as dropped). The one residual race — a
    /// producer that passes the claim check and *then* sleeps across a full
    /// ring wrap can interleave its payload words with the new owner's — is
    /// caught by the consumer's seq re-validation in all but the case where
    /// the lap completes entirely inside the victim's store sequence; trace
    /// records are diagnostics, and that window needs `capacity` pushes
    /// inside a few instructions of a stalled thread.
    pub fn push(&self, record: [u64; 4]) {
        // lint: ordering(Relaxed) ticket claim — the slot's seq word, not the ticket, publishes the payload
        let t = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t as usize) & (self.slots.len() - 1)];
        // Claim the slot by advancing its seq to "ticket t in progress".
        // lint: ordering(Relaxed) monotonic claim marker — the fences below order it against the payload words
        let prev = slot.seq.fetch_max(2 * t + 1, Ordering::Relaxed);
        if prev > 2 * t + 1 {
            // A newer ticket already owns this slot: the ring lapped us
            // while we were scheduled out. Drop our record instead of
            // tearing theirs; the consumer counts it from the ticket gap.
            return;
        }
        // Order the claim marker before the payload words for racing
        // readers (release fence + the reader's acquire fence pair up
        // through the payload loads).
        std::sync::atomic::fence(Ordering::Release); // lint: ordering(Release) seqlock write: claim marker must be visible before any payload word
        for (w, &v) in slot.payload.iter().zip(record.iter()) {
            // lint: ordering(Relaxed) payload words — ordered by the surrounding fences and the final Release fetch_max
            w.store(v, Ordering::Relaxed);
        }
        // lint: ordering(Release) seqlock write-end — publishes the payload to consumers that Acquire-load seq
        slot.seq.fetch_max(done_seq(t), Ordering::Release);
    }

    /// Drain every complete record since the last drain, oldest first.
    ///
    /// Returns the drained records. Records overwritten before the consumer
    /// got to them are counted into [`TraceRing::dropped`] — exactly: after
    /// any quiescent drain, `drained_total + dropped() == pushed()`.
    pub fn drain(&self) -> Vec<[u64; 4]> {
        let mut out = Vec::new();
        let Ok(mut cursor) = self.cursor.lock() else {
            // A poisoned cursor means a panicking consumer, not corrupt
            // data; telemetry prefers an empty drain over propagating.
            return out;
        };
        // lint: ordering(Acquire) pairs with the producers' Release seq stores — tickets below `head` have their claim visible
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        // Everything more than one ring-length behind head is already
        // overwritten (or claimed for overwrite): account it as dropped in
        // one step of ticket arithmetic.
        if head > cap && *cursor < head - cap {
            let lost = head - cap - *cursor;
            // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
            self.dropped.fetch_add(lost, Ordering::Relaxed);
            *cursor = head - cap;
        }
        while *cursor < head {
            let t = *cursor;
            let slot = &self.slots[(t as usize) & (self.slots.len() - 1)];
            // lint: ordering(Acquire) seqlock read-begin — pairs with the producer's write-end Release
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 == done_seq(t) {
                let mut rec = [0u64; 4];
                for (v, w) in rec.iter_mut().zip(slot.payload.iter()) {
                    // lint: ordering(Relaxed) payload words — validated by the fenced seq re-check below
                    *v = w.load(Ordering::Relaxed);
                }
                // Re-check: if a wrapping producer started overwriting this
                // slot mid-read, the payload may be torn — discard it. The
                // acquire fence pairs with the producers' release fence, so
                // observing any overwriter's payload word forces its claim
                // marker into this re-load.
                std::sync::atomic::fence(Ordering::Acquire); // lint: ordering(Acquire) seqlock read validation: payload loads must precede the seq re-check
                                                             // lint: ordering(Relaxed) seq re-check — the fence above supplies the ordering
                if slot.seq.load(Ordering::Relaxed) == done_seq(t) {
                    out.push(rec);
                } else {
                    // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                *cursor += 1;
            } else if seq0 > done_seq(t) {
                // Already overwritten by a ticket `t + k*cap`: lost.
                // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
                self.dropped.fetch_add(1, Ordering::Relaxed);
                *cursor += 1;
            } else {
                // The producer that claimed `t` has not finished writing;
                // later tickets would be out of order — stop here and pick
                // up next drain.
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(i: u64) -> [u64; 4] {
        [i, i.wrapping_mul(3), i ^ 0xABCD, 4]
    }

    #[test]
    fn fifo_within_capacity() {
        let r = TraceRing::with_capacity(8);
        for i in 0..5 {
            r.push(rec(i));
        }
        let got = r.drain();
        assert_eq!(got, (0..5).map(rec).collect::<Vec<_>>());
        assert_eq!(r.dropped(), 0);
        assert!(r.drain().is_empty(), "second drain sees nothing new");
    }

    #[test]
    fn overflow_drops_oldest_with_exact_count() {
        let r = TraceRing::with_capacity(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..20 {
            r.push(rec(i));
        }
        let got = r.drain();
        // The newest 8 survive; the oldest 12 are gone, counted exactly.
        assert_eq!(got, (12..20).map(rec).collect::<Vec<_>>());
        assert_eq!(r.dropped(), 12);
        assert_eq!(got.len() as u64 + r.dropped(), r.pushed());
    }

    #[test]
    fn incremental_drains_never_lose_or_duplicate() {
        let r = TraceRing::with_capacity(16);
        let mut seen = Vec::new();
        let mut pushed = 0u64;
        for round in 0..10u64 {
            for _ in 0..(round * 3) % 17 {
                r.push(rec(pushed));
                pushed += 1;
            }
            seen.extend(r.drain());
        }
        seen.extend(r.drain());
        assert_eq!(seen.len() as u64 + r.dropped(), pushed);
        // Drained records are strictly increasing by construction key.
        assert!(seen.windows(2).all(|w| w[0][0] < w[1][0]));
    }

    #[test]
    fn concurrent_producers_account_every_record() {
        let r = Arc::new(TraceRing::with_capacity(64));
        let producers = 4;
        let per = 5_000u64;
        let mut drained = 0u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..per {
                        r.push(rec((p as u64) << 32 | i));
                    }
                });
            }
            // Drain concurrently with the producers.
            for _ in 0..50 {
                drained += r.drain().len() as u64;
                std::thread::yield_now();
            }
        });
        drained += r.drain().len() as u64;
        assert_eq!(r.pushed(), producers as u64 * per);
        assert_eq!(
            drained + r.dropped(),
            r.pushed(),
            "every record is either delivered once or counted dropped"
        );
    }
}
