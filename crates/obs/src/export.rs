//! Metric export: a small document model rendered to Prometheus text
//! exposition format and JSON, plus a Prometheus text parser used by the
//! round-trip tests (and handy for scraping a peer in integration tests).
//!
//! The renderer emits format version 0.0.4 text: `# HELP` / `# TYPE`
//! comment lines, then one sample per line. Histograms render the standard
//! cumulative `_bucket{le="…"}` series plus `_sum` and `_count`, and the
//! precomputed quantile quartet renders as a separate `<name>_quantile`
//! gauge family labelled `{quantile="0.5"}` … — quantiles computed on the
//! server are gauges by convention, since they cannot be aggregated.

use crate::metrics::{HistogramSnapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// The value of one exported metric family member.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A full histogram readout (boxed: a snapshot is ~70× the size of the
    /// scalar variants, and reports are built only at scrape time).
    Histogram(Box<HistogramSnapshot>),
}

/// One exported metric: name, help text, optional labels, value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Prometheus-safe metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// One-line description, rendered as `# HELP`.
    pub help: String,
    /// Label pairs, rendered inside `{…}`.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: MetricValue,
}

impl Metric {
    /// A counter sample without labels.
    pub fn counter(name: impl Into<String>, help: impl Into<String>, v: u64) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: MetricValue::Counter(v),
        }
    }

    /// A gauge sample without labels.
    pub fn gauge(name: impl Into<String>, help: impl Into<String>, v: f64) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: MetricValue::Gauge(v),
        }
    }

    /// A histogram sample without labels.
    pub fn histogram(
        name: impl Into<String>,
        help: impl Into<String>,
        snap: HistogramSnapshot,
    ) -> Self {
        Self {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: MetricValue::Histogram(Box::new(snap)),
        }
    }

    /// Attach a label pair.
    pub fn with_label(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.labels.push((k.into(), v.into()));
        self
    }
}

/// An ordered collection of metrics ready for export.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// The metrics, in catalogue order. Members of one family (same name,
    /// different labels) should be adjacent.
    pub metrics: Vec<Metric>,
}

/// Render a label set as `{k="v",…}` (empty string when no labels).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format an `f64` the way Prometheus expects (no exponent for integers).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl MetricsReport {
    /// Render as Prometheus text exposition format (version 0.0.4).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: &str = "";
        for m in &self.metrics {
            let ty = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            // One HELP/TYPE header per family: adjacent members that share
            // a name (same family, different labels) reuse the header.
            if last_family != m.name {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {ty}", m.name);
                last_family = &m.name;
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, render_labels(&m.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        render_labels(&m.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for i in 0..HISTOGRAM_BUCKETS {
                        if h.buckets[i] == 0 {
                            continue;
                        }
                        cum += h.buckets[i];
                        let le = HistogramSnapshot::bucket_upper(i).to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            m.name,
                            render_labels(&m.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cum}",
                        m.name,
                        render_labels(&m.labels, Some(("le", "+Inf")))
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        render_labels(&m.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {cum}",
                        m.name,
                        render_labels(&m.labels, None)
                    );
                }
            }
        }
        out
    }

    /// Render as a JSON object: `{"metrics": [{name, labels, value…}…]}`.
    ///
    /// Histograms serialise their count/sum/mean and the p50/p90/p99/p99.9
    /// quartet (units follow the metric name's `_ns` / `_bytes` suffix).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{{",
                escape_label(&m.name)
            );
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_label(k), escape_label(v));
            }
            out.push_str("},");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let [p50, p90, p99, p999] = h.percentiles();
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{:.1},\
                         \"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"p999\":{p999}",
                        h.count(),
                        h.sum,
                        h.mean()
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name as written (includes `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parse Prometheus text exposition format into its sample lines.
///
/// Supports the subset [`MetricsReport::to_prometheus`] emits (which is the
/// subset real scrapers require): `# HELP`/`# TYPE` comments are skipped,
/// every other non-empty line must be `name[{labels}] value`.
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut out = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", ln + 1);
        // Split the trailing value off first: labels may contain spaces.
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `name value`"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| err("unparsable value"))?,
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.trim().to_string(), Vec::new()),
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unclosed label set"))?;
                (n.trim().to_string(), parse_labels(body).map_err(err)?)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(err("invalid metric name"));
        }
        out.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Parse `k="v",k2="v2"` (the body of a label set).
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, &'static str> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let inner = rest.strip_prefix('"').ok_or("label value must be quoted")?;
        // Find the closing quote, honouring backslash escapes.
        let mut val = String::new();
        let mut chars = inner.char_indices();
        let mut close = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    match chars.next() {
                        Some((_, 'n')) => val.push('\n'),
                        Some((_, e)) => val.push(e),
                        None => return Err("dangling escape"),
                    };
                }
                '"' => {
                    close = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        let close = close.ok_or("unterminated label value")?;
        labels.push((key, val));
        rest = inner[close + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let report = MetricsReport {
            metrics: vec![
                Metric::counter("store_reads_total", "total reads", 42),
                Metric::gauge("store_shards", "current shard count", 8.0).with_label("kind", "hot"),
            ],
        };
        let text = report.to_prometheus();
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "store_reads_total");
        assert_eq!(parsed[0].value, 42.0);
        assert_eq!(parsed[1].labels, vec![("kind".into(), "hot".into())]);
        assert!(text.contains("# TYPE store_reads_total counter"));
        assert!(text.contains("# TYPE store_shards gauge"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let h = Histogram::new();
        for v in [3u64, 3, 3, 100, 100, 5000] {
            h.record(v);
        }
        let report = MetricsReport {
            metrics: vec![Metric::histogram("lat_ns", "latency", h.snapshot())],
        };
        let text = report.to_prometheus();
        let parsed = parse_prometheus(&text).unwrap();
        // Cumulative bucket counts end at the total.
        let buckets: Vec<&ParsedSample> = parsed
            .iter()
            .filter(|s| s.name == "lat_ns_bucket")
            .collect();
        let cum: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "{cum:?}");
        assert_eq!(*cum.last().unwrap(), 6.0);
        let inf = buckets.last().unwrap();
        assert_eq!(inf.labels, vec![("le".into(), "+Inf".into())]);
        assert_eq!(inf.value, 6.0);
        let count = parsed.iter().find(|s| s.name == "lat_ns_count").unwrap();
        assert_eq!(count.value, 6.0);
        let sum = parsed.iter().find(|s| s.name == "lat_ns_sum").unwrap();
        assert_eq!(sum.value, (3 + 3 + 3 + 100 + 100 + 5000) as f64);
    }

    #[test]
    fn json_export_contains_percentiles() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(64);
        }
        let report = MetricsReport {
            metrics: vec![Metric::histogram("lat_ns", "latency", h.snapshot())],
        };
        let json = report.to_json();
        assert!(json.contains("\"name\":\"lat_ns\""));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("no_value_here").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("name{k=unquoted} 1").is_err());
        assert!(parse_prometheus("1badname 2").is_err());
        assert!(parse_prometheus("ok_name 2\n# comment\n\n").is_ok());
    }

    #[test]
    fn label_escapes_roundtrip() {
        let report = MetricsReport {
            metrics: vec![Metric::gauge("g", "h", 1.0).with_label("path", "a\"b\\c\nd")],
        };
        let parsed = parse_prometheus(&report.to_prometheus()).unwrap();
        assert_eq!(parsed[0].labels[0].1, "a\"b\\c\nd");
    }
}
