//! # shift-obs: zero-dependency observability primitives
//!
//! The metrics, tracing and profiling layer behind the `shift-store`
//! serving stack. Everything here is plain std, 100% safe Rust, and built
//! for instrumentation *inside* lock-free hot paths:
//!
//! * [`metrics`] — relaxed-atomic [`Counter`]s, [`Gauge`]s and log2-bucketed
//!   [`Histogram`]s with p50/p90/p99/p99.9 readout. Recording is one or two
//!   uncontended `fetch_add`s; no locks, no allocation, no floating point.
//! * [`sample`] — deterministic 1-in-N [`Sampler`]s and [`SampledTimer`]
//!   scoped timers that read the clock only on sampled calls, so an
//!   unsampled operation pays one relaxed increment and one predictable
//!   branch instead of an `Instant::now()` pair.
//! * [`trace`] — a bounded, lock-free, drop-oldest [`TraceRing`] of
//!   `[u64; 4]` records with exact drop accounting: structured events from
//!   maintenance machinery, drained by a cold-path consumer.
//! * [`export`] — a [`MetricsReport`] document model rendered to Prometheus
//!   text exposition format and JSON, plus a parser for round-trip tests.
//! * [`http`] — an optional one-thread `std::net::TcpListener`
//!   [`MetricsServer`] serving `/metrics` and `/metrics.json`.
//!
//! The crate deliberately knows nothing about the store: the store layer
//! names its metrics, owns the registry struct, and decides what to sample.
//! That keeps this crate reusable by benches and tests as plain data types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod http;
pub mod metrics;
pub mod sample;
pub mod trace;

pub use export::{parse_prometheus, Metric, MetricValue, MetricsReport, ParsedSample};
pub use http::{MetricsProvider, MetricsServer};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use sample::{SampledTimer, Sampler};
pub use trace::TraceRing;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::export::{parse_prometheus, Metric, MetricValue, MetricsReport};
    pub use crate::http::{MetricsProvider, MetricsServer};
    pub use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
    pub use crate::sample::{SampledTimer, Sampler};
    pub use crate::trace::TraceRing;
}
