//! Runtime model composition: textual model specs resolved to boxed
//! [`CdfModel`] trait objects.
//!
//! A [`ModelSpec`] names one of the workspace's CDF model families plus its
//! tuning parameter, using the compact grammar
//!
//! ```text
//! im | linear | cubic | rmi:<leafs>[:linear|:cubic] | rs:<max_error> | pgm:<epsilon>
//! ```
//!
//! so a model can be chosen from a config file or CLI flag instead of a
//! compile-time generic. [`ModelSpec::build`] trains the model over a sorted
//! key slice and returns it as a `Box<dyn CdfModel<K>>`; the `shift-table`
//! crate combines that with a correction-layer spec into a full
//! `IndexSpec`.

use crate::cubic::CubicModel;
use crate::linear::{InterpolationModel, LinearModel};
use crate::model::CdfModel;
use crate::pgm::PgmModel;
use crate::radix_spline::RadixSplineBuilder;
use crate::rmi::{RmiBuilder, RootModelKind};
use sosd_data::key::Key;

/// Error produced when parsing a model or index spec string.
///
/// Defined here (rather than in the `shift-table` crate) so the model and the
/// layer half of an index spec share one error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecParseError {
    /// The spec string (or one of its parts) was empty.
    Empty,
    /// The model family token was not recognised.
    UnknownModel(String),
    /// The correction-layer token was not recognised.
    UnknownLayer(String),
    /// A parameter was missing, malformed or out of range.
    InvalidParameter {
        /// The offending spec fragment.
        spec: String,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "empty spec string"),
            Self::UnknownModel(s) => write!(
                f,
                "unknown model spec `{s}` (expected im | linear | cubic | rmi:<leafs> | rs:<err> | pgm:<eps>)"
            ),
            Self::UnknownLayer(s) => write!(
                f,
                "unknown layer spec `{s}` (expected none | r1 | s<X> | auto)"
            ),
            Self::InvalidParameter { spec, reason } => {
                write!(f, "invalid parameter in `{spec}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecParseError {}

/// A runtime-selectable CDF model family with its tuning parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// Min/max interpolation (the paper's dummy IM model).
    Im,
    /// Least-squares straight line.
    Linear,
    /// Least-squares cubic polynomial.
    Cubic,
    /// Two-level RMI with the given number of leaf models and root family.
    Rmi {
        /// Number of second-level (leaf) models.
        leaves: usize,
        /// Root model family (`rmi:<leafs>` is linear, `rmi:<leafs>:cubic`
        /// selects the cubic root).
        root: RootModelKind,
    },
    /// RadixSpline with the given spline error bound (records).
    RadixSpline {
        /// Hard per-key error bound of the spline.
        max_error: usize,
    },
    /// PGM-style piecewise-linear model with the given epsilon.
    Pgm {
        /// Per-segment error bound.
        epsilon: usize,
    },
}

impl ModelSpec {
    /// Parse a model spec token (see the module docs for the grammar).
    pub fn parse(s: &str) -> Result<Self, SpecParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecParseError::Empty);
        }
        let (family, param) = match s.split_once(':') {
            Some((f, p)) => (f, Some(p)),
            None => (s, None),
        };
        let parse_param = |name: &'static str| -> Result<usize, SpecParseError> {
            let p = param.ok_or(SpecParseError::InvalidParameter {
                spec: s.to_string(),
                reason: "missing parameter",
            })?;
            let v: usize = p.parse().map_err(|_| SpecParseError::InvalidParameter {
                spec: s.to_string(),
                reason: "parameter is not a positive integer",
            })?;
            if v == 0 {
                return Err(SpecParseError::InvalidParameter {
                    spec: s.to_string(),
                    reason: "parameter must be >= 1",
                });
            }
            let _ = name;
            Ok(v)
        };
        match family {
            "im" | "linear" | "cubic" if param.is_some() => Err(SpecParseError::InvalidParameter {
                spec: s.to_string(),
                reason: "this model family takes no parameter",
            }),
            "im" => Ok(Self::Im),
            "linear" => Ok(Self::Linear),
            "cubic" => Ok(Self::Cubic),
            "rmi" => {
                // `rmi:<leafs>` or `rmi:<leafs>:cubic` / `rmi:<leafs>:linear`.
                let p = param.ok_or(SpecParseError::InvalidParameter {
                    spec: s.to_string(),
                    reason: "missing parameter",
                })?;
                let (leafs_str, root) = match p.split_once(':') {
                    None => (p, RootModelKind::Linear),
                    Some((l, "linear")) => (l, RootModelKind::Linear),
                    Some((l, "cubic")) => (l, RootModelKind::Cubic),
                    Some(_) => {
                        return Err(SpecParseError::InvalidParameter {
                            spec: s.to_string(),
                            reason: "rmi root must be `linear` or `cubic`",
                        })
                    }
                };
                let leaves: usize =
                    leafs_str
                        .parse()
                        .map_err(|_| SpecParseError::InvalidParameter {
                            spec: s.to_string(),
                            reason: "parameter is not a positive integer",
                        })?;
                if leaves == 0 {
                    return Err(SpecParseError::InvalidParameter {
                        spec: s.to_string(),
                        reason: "parameter must be >= 1",
                    });
                }
                Ok(Self::Rmi { leaves, root })
            }
            "rs" => Ok(Self::RadixSpline {
                max_error: parse_param("max_error")?,
            }),
            "pgm" => Ok(Self::Pgm {
                epsilon: parse_param("epsilon")?,
            }),
            _ => Err(SpecParseError::UnknownModel(s.to_string())),
        }
    }

    /// Train the specified model over a sorted key slice and box it.
    pub fn build<K: Key>(&self, keys: &[K]) -> Box<dyn CdfModel<K>> {
        match *self {
            Self::Im => Box::new(InterpolationModel::from_sorted_keys(keys)),
            Self::Linear => Box::new(LinearModel::from_sorted_keys(keys)),
            Self::Cubic => Box::new(CubicModel::from_sorted_keys(keys)),
            Self::Rmi { leaves, root } => Box::new(
                RmiBuilder::default()
                    .leaf_count(leaves)
                    .root_model(root)
                    .build_from_sorted_keys(keys),
            ),
            Self::RadixSpline { max_error } => Box::new(
                RadixSplineBuilder::default()
                    .max_error(max_error)
                    .build_from_sorted_keys(keys),
            ),
            Self::Pgm { epsilon } => Box::new(PgmModel::from_sorted_keys(keys, epsilon)),
        }
    }

    /// One representative spec per model family (with small, test-friendly
    /// parameters) — handy for exhaustively exercising the spec machinery.
    pub fn all_families() -> [ModelSpec; 6] {
        [
            Self::Im,
            Self::Linear,
            Self::Cubic,
            Self::Rmi {
                leaves: 64,
                root: RootModelKind::Linear,
            },
            Self::RadixSpline { max_error: 32 },
            Self::Pgm { epsilon: 32 },
        ]
    }
}

// `Display` renders the canonical spec string, so `parse(x.to_string()) == x`.
impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ModelSpec::Im => write!(f, "im"),
            ModelSpec::Linear => write!(f, "linear"),
            ModelSpec::Cubic => write!(f, "cubic"),
            ModelSpec::Rmi {
                leaves,
                root: RootModelKind::Linear,
            } => write!(f, "rmi:{leaves}"),
            ModelSpec::Rmi {
                leaves,
                root: RootModelKind::Cubic,
            } => write!(f, "rmi:{leaves}:cubic"),
            ModelSpec::RadixSpline { max_error } => write!(f, "rs:{max_error}"),
            ModelSpec::Pgm { epsilon } => write!(f, "pgm:{epsilon}"),
        }
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = SpecParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn parse_roundtrips_through_display() {
        for spec in ModelSpec::all_families() {
            let text = spec.to_string();
            assert_eq!(ModelSpec::parse(&text), Ok(spec), "{text}");
        }
        assert_eq!(
            ModelSpec::parse(" rmi:8 "),
            Ok(ModelSpec::Rmi {
                leaves: 8,
                root: RootModelKind::Linear,
            })
        );
        // Explicit roots: `linear` normalises away, `cubic` round-trips.
        assert_eq!(
            ModelSpec::parse("rmi:8:linear").unwrap().to_string(),
            "rmi:8"
        );
        let cubic = ModelSpec::parse("rmi:8:cubic").unwrap();
        assert_eq!(
            cubic,
            ModelSpec::Rmi {
                leaves: 8,
                root: RootModelKind::Cubic,
            }
        );
        assert_eq!(ModelSpec::parse(&cubic.to_string()), Ok(cubic));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert_eq!(ModelSpec::parse(""), Err(SpecParseError::Empty));
        assert!(matches!(
            ModelSpec::parse("btree"),
            Err(SpecParseError::UnknownModel(_))
        ));
        assert!(matches!(
            ModelSpec::parse("rmi"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("rmi:abc"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("rs:0"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("rmi:8:quartic"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("im:3"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn built_models_predict_within_range_on_every_family() {
        let d: Dataset<u64> = SosdName::Face64.generate(4_000, 11);
        for spec in ModelSpec::all_families() {
            let model = spec.build(d.as_slice());
            assert_eq!(model.key_count(), d.len(), "{spec}");
            for &k in d.as_slice().iter().step_by(97) {
                assert!(model.predict_clamped(k) < d.len(), "{spec} key {k}");
            }
            // The boxed model is usable through the object-safe trait.
            let as_dyn: &dyn CdfModel<u64> = model.as_ref();
            assert!(as_dyn.size_bytes() > 0 || matches!(spec, ModelSpec::Im));
        }
    }

    #[test]
    fn boxed_models_are_send_sync_static() {
        fn assert_owned<T: Send + Sync + 'static>(_: &T) {}
        let d: Dataset<u64> = SosdName::Uden64.generate(500, 3);
        let model = ModelSpec::parse("rmi:16").unwrap().build(d.as_slice());
        assert_owned(&model);
    }
}
