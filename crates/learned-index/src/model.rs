//! The [`CdfModel`] trait: the contract between learned models and the
//! Shift-Table correction layer.

use sosd_data::key::Key;

/// A learned (or hand-built) model of the empirical key CDF.
///
/// Given a key, the model predicts the position of the key's lower bound in
/// the sorted key array the model was trained on. Predictions are clamped to
/// `[0, key_count())`, i.e. a prediction is always a valid record position
/// for non-empty data.
///
/// The Shift-Table layer (§3 of the paper) can correct any such model; the
/// `<Δ, C>` range representation additionally requires the model to be a
/// *valid CDF*, i.e. monotonically non-decreasing in the key (§3.8), which
/// models advertise through [`CdfModel::is_monotonic`].
pub trait CdfModel<K: Key>: Send + Sync {
    /// Predicted position (record index) of the lower bound of `key`.
    fn predict(&self, key: K) -> usize;

    /// Number of keys the model was trained on.
    fn key_count(&self) -> usize;

    /// Approximate size of the model parameters in bytes. Used by the
    /// Figure 8 index-size sweeps and the cost model.
    fn size_bytes(&self) -> usize;

    /// `true` if predictions are guaranteed to be non-decreasing in the key.
    fn is_monotonic(&self) -> bool;

    /// A guaranteed bound on `|predicted - actual|` over the training keys,
    /// if the model tracks one (e.g. error-bounded splines). `None` means
    /// unbounded / unknown.
    fn max_error_bound(&self) -> Option<usize> {
        None
    }

    /// Short human-readable model name used in reports (e.g. `"RMI"`).
    fn name(&self) -> &'static str;

    /// Predict and clamp to the valid record range `[0, n-1]`; returns 0 for
    /// an empty model.
    #[inline]
    fn predict_clamped(&self, key: K) -> usize {
        let n = self.key_count();
        if n == 0 {
            0
        } else {
            self.predict(key).min(n - 1)
        }
    }
}

/// Blanket implementation so `&M`, `Box<M>` and `Arc<M>` are models too.
impl<K: Key, M: CdfModel<K> + ?Sized> CdfModel<K> for &M {
    fn predict(&self, key: K) -> usize {
        (**self).predict(key)
    }
    fn key_count(&self) -> usize {
        (**self).key_count()
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn is_monotonic(&self) -> bool {
        (**self).is_monotonic()
    }
    fn max_error_bound(&self) -> Option<usize> {
        (**self).max_error_bound()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<K: Key, M: CdfModel<K> + ?Sized> CdfModel<K> for Box<M> {
    fn predict(&self, key: K) -> usize {
        (**self).predict(key)
    }
    fn key_count(&self) -> usize {
        (**self).key_count()
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn is_monotonic(&self) -> bool {
        (**self).is_monotonic()
    }
    fn max_error_bound(&self) -> Option<usize> {
        (**self).max_error_bound()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<K: Key, M: CdfModel<K> + ?Sized> CdfModel<K> for std::sync::Arc<M> {
    fn predict(&self, key: K) -> usize {
        (**self).predict(key)
    }
    fn key_count(&self) -> usize {
        (**self).key_count()
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn is_monotonic(&self) -> bool {
        (**self).is_monotonic()
    }
    fn max_error_bound(&self) -> Option<usize> {
        (**self).max_error_bound()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Verify that a model's predictions are non-decreasing over the training
/// keys. Exhaustive over the given keys, so it is intended for tests and for
/// validating third-party models before attaching a range-mode Shift-Table.
pub fn verify_monotonic_on<K: Key, M: CdfModel<K> + ?Sized>(model: &M, keys: &[K]) -> bool {
    let mut prev = 0usize;
    let mut first = true;
    for &k in keys {
        let p = model.predict(k);
        if !first && p < prev {
            return false;
        }
        prev = p;
        first = false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial model used to exercise the trait helpers.
    struct Half {
        n: usize,
    }

    impl CdfModel<u64> for Half {
        fn predict(&self, key: u64) -> usize {
            (key / 2) as usize
        }
        fn key_count(&self) -> usize {
            self.n
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn is_monotonic(&self) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "half"
        }
    }

    #[test]
    fn predict_clamped_stays_in_range() {
        let m = Half { n: 10 };
        assert_eq!(m.predict_clamped(0), 0);
        assert_eq!(m.predict_clamped(6), 3);
        assert_eq!(m.predict_clamped(1_000_000), 9);
        let empty = Half { n: 0 };
        assert_eq!(empty.predict_clamped(123), 0);
    }

    #[test]
    fn trait_works_through_reference_box_and_arc() {
        let m = Half { n: 10 };
        let r: &dyn CdfModel<u64> = &m;
        assert_eq!(r.predict(8), 4);
        assert_eq!(r.name(), "half");
        let b: Box<dyn CdfModel<u64>> = Box::new(Half { n: 10 });
        assert_eq!(b.predict_clamped(100), 9);
        assert!(b.max_error_bound().is_none());
        let a = std::sync::Arc::new(Half { n: 4 });
        assert_eq!(a.predict(2), 1);
        assert!(a.is_monotonic());
    }

    #[test]
    fn verify_monotonic_detects_violations() {
        struct ZigZag;
        impl CdfModel<u64> for ZigZag {
            fn predict(&self, key: u64) -> usize {
                (key % 3) as usize
            }
            fn key_count(&self) -> usize {
                3
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "zigzag"
            }
        }
        let keys: Vec<u64> = (0..10).collect();
        assert!(verify_monotonic_on(&Half { n: 10 }, &keys));
        assert!(!verify_monotonic_on(&ZigZag, &keys));
        assert!(
            verify_monotonic_on(&ZigZag, &[]),
            "empty input is trivially monotone"
        );
    }
}
