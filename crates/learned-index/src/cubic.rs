//! Cubic polynomial CDF model, used as an optional RMI root model.
//!
//! The RMI reference implementation offers cubic models at the root because a
//! cubic captures the S-shape of many CDFs better than a line while staying a
//! handful of multiply-adds at query time. The paper notes (§3.8) that cubic
//! RMI roots are one source of *non-monotonic* predictions, which matters for
//! the Shift-Table's range mode; this implementation therefore reports its
//! monotonicity honestly by checking the fitted derivative over the training
//! key range.

use crate::model::CdfModel;
use sosd_data::dataset::Dataset;
use sosd_data::key::Key;

/// Cubic least-squares model `pos ≈ a + b·t + c·t² + d·t³` over the key
/// value normalised to `t ∈ [0, 1]` (normalisation keeps the normal
/// equations well conditioned for 64-bit keys).
#[derive(Debug, Clone, PartialEq)]
pub struct CubicModel {
    /// Coefficients `[a, b, c, d]` in the normalised variable.
    coeffs: [f64; 4],
    key_min: f64,
    key_span: f64,
    n: usize,
    monotonic: bool,
}

impl CubicModel {
    /// Fit over a dataset.
    pub fn build<K: Key>(dataset: &Dataset<K>) -> Self {
        Self::from_sorted_keys(dataset.as_slice())
    }

    /// Fit over a sorted key slice.
    pub fn from_sorted_keys<K: Key>(keys: &[K]) -> Self {
        let n = keys.len();
        if n < 4 {
            // Too few points for a cubic: fall back to a line through the
            // endpoints (degenerate coefficients).
            let lin = crate::linear::InterpolationModel::from_sorted_keys(keys);
            let key_min = keys.first().map(|k| k.to_f64()).unwrap_or(0.0);
            let key_max = keys.last().map(|k| k.to_f64()).unwrap_or(0.0);
            let span = (key_max - key_min).max(1.0);
            return Self {
                coeffs: [0.0, lin.slope() * span, 0.0, 0.0],
                key_min,
                key_span: span,
                n,
                monotonic: true,
            };
        }
        let key_min = keys[0].to_f64();
        let key_max = keys[n - 1].to_f64();
        let span = (key_max - key_min).max(f64::MIN_POSITIVE);

        // Accumulate the normal-equation moments for the normalised variable.
        // X^T X is a 4x4 Hankel matrix of power sums S_0..S_6; X^T y needs
        // T_0..T_3.
        let mut s = [0.0f64; 7];
        let mut t = [0.0f64; 4];
        for (i, k) in keys.iter().enumerate() {
            let x = (k.to_f64() - key_min) / span;
            let y = i as f64;
            let mut p = 1.0;
            for sj in s.iter_mut() {
                *sj += p;
                p *= x;
            }
            let mut p = 1.0;
            for tj in t.iter_mut() {
                *tj += p * y;
                p *= x;
            }
        }
        let mut a = [[0.0f64; 5]; 4];
        for (r, row) in a.iter_mut().enumerate() {
            row[..4].copy_from_slice(&s[r..r + 4]);
            row[4] = t[r];
        }
        let coeffs = solve_4x4(&mut a).unwrap_or([0.0, (n - 1) as f64, 0.0, 0.0]);

        // Monotonicity check: derivative b + 2c·t + 3d·t² must be ≥ 0 on
        // [0, 1]. Check endpoints and the interior extremum.
        let monotonic = {
            let (b, c, d) = (coeffs[1], coeffs[2], coeffs[3]);
            let deriv = |t: f64| b + 2.0 * c * t + 3.0 * d * t * t;
            let mut ok = deriv(0.0) >= -1e-9 && deriv(1.0) >= -1e-9;
            if d.abs() > 0.0 {
                let t_ext = -c / (3.0 * d);
                if (0.0..=1.0).contains(&t_ext) {
                    ok &= deriv(t_ext) >= -1e-9;
                }
            }
            ok
        };

        Self {
            coeffs,
            key_min,
            key_span: span,
            n,
            monotonic,
        }
    }

    /// Raw (unclamped) prediction as `f64`.
    #[inline]
    pub fn predict_f64(&self, key: f64) -> f64 {
        let t = (key - self.key_min) / self.key_span;
        let [a, b, c, d] = self.coeffs;
        // Horner evaluation.
        ((d * t + c) * t + b) * t + a
    }

    /// The fitted coefficients in the normalised variable.
    #[inline]
    pub fn coefficients(&self) -> [f64; 4] {
        self.coeffs
    }
}

/// Gaussian elimination with partial pivoting for the 4x5 augmented system.
fn solve_4x4(a: &mut [[f64; 5]; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..4 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        // Eliminate below. Indexing (rather than iterators) is kept because
        // each update reads pivot row `col` while writing row `row`.
        #[allow(clippy::needless_range_loop)]
        for row in col + 1..4 {
            let f = a[row][col] / a[col][col];
            for c in col..5 {
                a[row][c] -= f * a[col][c];
            }
        }
    }
    // Back substitution.
    let mut x = [0.0f64; 4];
    for row in (0..4).rev() {
        let mut acc = a[row][4];
        for c in row + 1..4 {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

impl<K: Key> CdfModel<K> for CubicModel {
    #[inline]
    fn predict(&self, key: K) -> usize {
        if self.n == 0 {
            return 0;
        }
        let p = self.predict_f64(key.to_f64());
        let p = if p > 0.0 { p } else { 0.0 };
        (p as usize).min(self.n - 1)
    }

    fn key_count(&self) -> usize {
        self.n
    }

    fn size_bytes(&self) -> usize {
        // 4 coefficients + min + span.
        6 * std::mem::size_of::<f64>()
    }

    fn is_monotonic(&self) -> bool {
        self.monotonic
    }

    fn name(&self) -> &'static str {
        "Cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::generators::SosdName;

    #[test]
    fn fits_a_cubic_relationship_almost_exactly() {
        // positions proportional to cube root of key <=> key ~ pos^3.
        let keys: Vec<u64> = (0..500u64).map(|i| i * i * i).collect();
        let m = CubicModel::from_sorted_keys(&keys);
        // A cubic in the key cannot be exact here (the true inverse is a cube
        // root), but it must do far better than the straight line.
        let lin = crate::linear::InterpolationModel::from_sorted_keys(&keys);
        let err = |f: &dyn Fn(u64) -> usize| -> f64 {
            keys.iter()
                .enumerate()
                .map(|(i, &k)| (f(k) as f64 - i as f64).abs())
                .sum::<f64>()
                / keys.len() as f64
        };
        let cubic_err = err(&|k| CdfModel::<u64>::predict(&m, k));
        let lin_err = err(&|k| CdfModel::<u64>::predict(&lin, k));
        assert!(
            cubic_err < lin_err / 2.0,
            "cubic err {cubic_err} vs linear err {lin_err}"
        );
    }

    #[test]
    fn exact_on_polynomial_data() {
        // If key = t (already linear), the cubic should reduce to the line.
        let keys: Vec<u64> = (0..1000u64).collect();
        let m = CubicModel::from_sorted_keys(&keys);
        for (i, &k) in keys.iter().enumerate().step_by(37) {
            let p = CdfModel::<u64>::predict(&m, k);
            assert!((p as i64 - i as i64).abs() <= 1, "pos {i} predicted {p}");
        }
        assert!(CdfModel::<u64>::is_monotonic(&m));
    }

    #[test]
    fn degenerate_inputs() {
        let m = CubicModel::from_sorted_keys::<u64>(&[]);
        assert_eq!(CdfModel::<u64>::predict(&m, 5), 0);
        let m = CubicModel::from_sorted_keys(&[1u64, 2, 3]);
        assert!(CdfModel::<u64>::predict(&m, 2) < 3);
        let m = CubicModel::from_sorted_keys(&[7u64; 20]);
        assert!(CdfModel::<u64>::predict(&m, 7) < 20);
    }

    #[test]
    fn predictions_stay_in_range_on_real_data() {
        let d: Dataset<u64> = SosdName::Osmc64.generate(20_000, 5);
        let m = CubicModel::build(&d);
        for &k in d.as_slice().iter().step_by(101) {
            assert!(CdfModel::<u64>::predict(&m, k) < d.len());
        }
        // Far out-of-range queries are clamped.
        assert!(CdfModel::<u64>::predict(&m, 0) < d.len());
        assert!(CdfModel::<u64>::predict(&m, u64::MAX) < d.len());
    }

    #[test]
    fn solve_4x4_known_system() {
        // x = [1, 2, 3, 4] with identity-ish matrix.
        let mut a = [
            [2.0, 0.0, 0.0, 0.0, 2.0],
            [0.0, 3.0, 0.0, 0.0, 6.0],
            [0.0, 0.0, 4.0, 0.0, 12.0],
            [0.0, 0.0, 0.0, 5.0, 20.0],
        ];
        let x = solve_4x4(&mut a).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
        assert!((x[3] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let mut a = [[0.0; 5]; 4];
        assert!(solve_4x4(&mut a).is_none());
    }
}
