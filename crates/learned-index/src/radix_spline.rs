//! RadixSpline (RS): a single-pass learned index made of an error-bounded
//! linear spline plus a radix table over key prefixes.
//!
//! This is the paper's "RS" baseline. Construction is a single pass: the
//! greedy spline corridor emits knots with a hard error bound, and a radix
//! table maps the top `radix_bits` of (key − min) to the knot range that can
//! contain the key, so locating the right spline segment costs a small,
//! bounded search instead of a full binary search over all knots.

use crate::model::CdfModel;
use crate::spline::{interpolate_segment, GreedySplineCorridor, SplinePoint};
use sosd_data::dataset::Dataset;
use sosd_data::key::Key;

/// Default spline error bound (records).
pub const DEFAULT_MAX_ERROR: usize = 32;
/// Default number of radix bits.
pub const DEFAULT_RADIX_BITS: u32 = 18;

/// Builder for [`RadixSpline`].
#[derive(Debug, Clone)]
pub struct RadixSplineBuilder {
    max_error: usize,
    radix_bits: u32,
}

impl Default for RadixSplineBuilder {
    fn default() -> Self {
        Self {
            max_error: DEFAULT_MAX_ERROR,
            radix_bits: DEFAULT_RADIX_BITS,
        }
    }
}

impl RadixSplineBuilder {
    /// Set the spline error bound in records (≥ 1).
    pub fn max_error(mut self, max_error: usize) -> Self {
        self.max_error = max_error.max(1);
        self
    }

    /// Set the number of radix bits (1..=26 to keep the table reasonable).
    pub fn radix_bits(mut self, bits: u32) -> Self {
        self.radix_bits = bits.clamp(1, 26);
        self
    }

    /// Build the index over a dataset.
    pub fn build<K: Key>(self, dataset: &Dataset<K>) -> RadixSpline {
        self.build_from_sorted_keys(dataset.as_slice())
    }

    /// Build the index over a sorted key slice.
    pub fn build_from_sorted_keys<K: Key>(self, keys: &[K]) -> RadixSpline {
        let n = keys.len();
        if n == 0 {
            return RadixSpline {
                points: Vec::new(),
                radix_table: vec![0, 0],
                min_key: 0,
                shift: 63,
                max_error: self.max_error,
                n: 0,
            };
        }
        let min_key = keys[0].to_u64();
        let max_key = keys[n - 1].to_u64();
        let points = GreedySplineCorridor::new(self.max_error).fit(keys);

        // Number of bits needed to represent (max - min), and the shift that
        // maps that range onto `radix_bits` buckets.
        let span = max_key - min_key;
        let significant_bits = 64 - span.leading_zeros();
        let radix_bits = self.radix_bits.min(significant_bits.max(1));
        let shift = significant_bits.saturating_sub(radix_bits);
        // One entry per prefix value plus a terminator, so bucket `p` can read
        // the half-open knot range [table[p], table[p+1]].
        let table_len = (1usize << radix_bits) + 1;
        let mut radix_table = vec![0u32; table_len];
        let mut knot = 0usize;
        for (p, entry) in radix_table.iter_mut().enumerate() {
            while knot < points.len() && (((points[knot].key - min_key) >> shift) as usize) < p {
                knot += 1;
            }
            *entry = knot as u32;
        }

        RadixSpline {
            points,
            radix_table,
            min_key,
            shift,
            max_error: self.max_error,
            n,
        }
    }
}

/// The RadixSpline learned index (CDF model component).
#[derive(Debug, Clone)]
pub struct RadixSpline {
    points: Vec<SplinePoint>,
    radix_table: Vec<u32>,
    min_key: u64,
    shift: u32,
    max_error: usize,
    n: usize,
}

impl RadixSpline {
    /// Start building a RadixSpline.
    pub fn builder() -> RadixSplineBuilder {
        RadixSplineBuilder::default()
    }

    /// Build with default parameters.
    pub fn build<K: Key>(dataset: &Dataset<K>) -> Self {
        Self::builder().build(dataset)
    }

    /// Number of spline knots.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The configured error bound.
    pub fn error_bound(&self) -> usize {
        self.max_error
    }

    #[inline]
    fn radix_bucket(&self, key: u64) -> usize {
        let offset = key.saturating_sub(self.min_key);
        ((offset >> self.shift) as usize).min(self.radix_table.len().saturating_sub(2))
    }

    /// Raw `f64` prediction (before truncation), exposed for tests.
    #[inline]
    pub fn predict_f64(&self, key: u64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        if key <= self.points[0].key {
            return self.points[0].pos as f64;
        }
        let last = self.points[self.points.len() - 1];
        if key >= last.key {
            return last.pos as f64;
        }
        // Narrow the knot range via the radix table, then binary search the
        // narrowed range for the first knot with knot.key > key.
        let bucket = self.radix_bucket(key);
        let lo = self.radix_table[bucket] as usize;
        let hi = (self.radix_table[bucket + 1] as usize + 1).min(self.points.len());
        let slice = &self.points[lo.min(hi)..hi];
        let rel = slice.partition_point(|p| p.key <= key);
        let idx = lo + rel;
        // idx is the first knot strictly greater than key; it is >= 1 because
        // key > points[0].key, and <= len-1 because key < last.key.
        let idx = idx.clamp(1, self.points.len() - 1);
        interpolate_segment(self.points[idx - 1], self.points[idx], key)
    }
}

impl<K: Key> CdfModel<K> for RadixSpline {
    #[inline]
    fn predict(&self, key: K) -> usize {
        if self.n == 0 {
            return 0;
        }
        let p = self.predict_f64(key.to_u64());
        let p = if p > 0.0 { p } else { 0.0 };
        (p as usize).min(self.n - 1)
    }

    fn key_count(&self) -> usize {
        self.n
    }

    fn size_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<SplinePoint>()
            + self.radix_table.len() * std::mem::size_of::<u32>()
    }

    fn is_monotonic(&self) -> bool {
        true
    }

    fn max_error_bound(&self) -> Option<usize> {
        Some(self.max_error)
    }

    fn name(&self) -> &'static str {
        "RS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::verify_monotonic_on;
    use sosd_data::generators::SosdName;

    #[test]
    fn error_bound_holds_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(20_000, 7);
            let rs = RadixSpline::builder().max_error(32).build(&d);
            let keys = d.as_slice();
            let mut last = None;
            for (i, &k) in keys.iter().enumerate() {
                if last == Some(k) {
                    continue; // duplicates interpolate to the first occurrence
                }
                last = Some(k);
                let p = CdfModel::<u64>::predict(&rs, k) as f64;
                assert!(
                    (p - i as f64).abs() <= 33.0,
                    "{name}: key {k} pos {i} predicted {p}"
                );
            }
        }
    }

    #[test]
    fn spline_count_grows_with_data_difficulty() {
        let easy: Dataset<u64> = SosdName::Uden64.generate(50_000, 1);
        let hard: Dataset<u64> = SosdName::Osmc64.generate(50_000, 1);
        let rs_easy = RadixSpline::builder().max_error(32).build(&easy);
        let rs_hard = RadixSpline::builder().max_error(32).build(&hard);
        assert!(
            rs_hard.num_points() > 2 * rs_easy.num_points(),
            "osmc needs {} knots, uden {}",
            rs_hard.num_points(),
            rs_easy.num_points()
        );
    }

    #[test]
    fn is_monotonic_over_training_keys() {
        let d: Dataset<u64> = SosdName::Face64.generate(30_000, 2);
        let rs = RadixSpline::builder().max_error(16).build(&d);
        assert!(verify_monotonic_on::<u64, _>(&rs, d.as_slice()));
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(10_000, 3);
        let rs = RadixSpline::build(&d);
        assert_eq!(CdfModel::<u64>::predict(&rs, 0), 0);
        assert_eq!(CdfModel::<u64>::predict(&rs, u64::MAX), d.len() - 1);
    }

    #[test]
    fn radix_bits_tradeoff_affects_size_not_correctness() {
        let d: Dataset<u64> = SosdName::Amzn64.generate(20_000, 4);
        let small = RadixSpline::builder().max_error(64).radix_bits(8).build(&d);
        let large = RadixSpline::builder()
            .max_error(64)
            .radix_bits(20)
            .build(&d);
        assert!(CdfModel::<u64>::size_bytes(&large) > CdfModel::<u64>::size_bytes(&small));
        for &k in d.as_slice().iter().step_by(97) {
            let i = d.lower_bound(k);
            for rs in [&small, &large] {
                let p = CdfModel::<u64>::predict(rs, k) as f64;
                assert!((p - i as f64).abs() <= 65.0);
            }
        }
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let empty: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let rs = RadixSpline::build(&empty);
        assert_eq!(CdfModel::<u64>::predict(&rs, 9), 0);
        assert_eq!(CdfModel::<u64>::key_count(&rs), 0);

        let one = Dataset::from_keys("one", vec![5u64]);
        let rs = RadixSpline::build(&one);
        assert_eq!(CdfModel::<u64>::predict(&rs, 5), 0);
        assert_eq!(CdfModel::<u64>::predict(&rs, 1000), 0);

        let dup = Dataset::from_keys("dup", vec![5u64; 64]);
        let rs = RadixSpline::build(&dup);
        assert_eq!(CdfModel::<u64>::predict(&rs, 5), 0);
    }

    #[test]
    fn works_with_u32_keys() {
        let d: Dataset<u32> = SosdName::Face32.generate(20_000, 5);
        let rs = RadixSpline::builder().max_error(32).build(&d);
        for &k in d.as_slice().iter().step_by(53) {
            let i = d.lower_bound(k);
            let p = CdfModel::<u32>::predict(&rs, k) as f64;
            assert!((p - i as f64).abs() <= 33.0);
        }
    }
}
