//! Learned CDF models for range indexing.
//!
//! A *learned index* replaces the traversal structure of a classical range
//! index with a model of the empirical cumulative distribution function
//! (CDF) of the keys: given a key `x`, the model predicts the position
//! `N·F_θ(x)` where the key's lower bound should live in the sorted array.
//!
//! This crate provides the models the Shift-Table paper builds on and
//! compares against:
//!
//! * [`InterpolationModel`] — the paper's deliberately "dummy" IM model that
//!   interpolates between the minimum and maximum key (two parameters),
//! * [`LinearModel`] — least-squares straight line,
//! * [`RadixSpline`] — a single-pass error-bounded linear spline with a radix
//!   prefix table (the paper's RS baseline),
//! * [`RmiIndex`] — a two-level recursive model index (the paper's RMI
//!   baseline) with linear or cubic root models,
//! * [`PgmModel`] — a PGM-style multi-level piecewise-linear model with a
//!   provable per-segment error bound (related work; used for ablations),
//!
//! plus [`ModelErrorStats`] for measuring prediction error the way the paper
//! reports it (mean, median, log2 and maximum error, signed drift).
//!
//! All models implement the [`CdfModel`] trait, which is what the
//! `shift-table` crate corrects.
//!
//! # Example
//!
//! ```
//! use learned_index::prelude::*;
//! use sosd_data::prelude::*;
//!
//! let data: Dataset<u64> = SosdName::Osmc64.generate(50_000, 1);
//! let im = InterpolationModel::build(&data);
//! let rs = RadixSpline::builder().max_error(32).build(&data);
//!
//! // The dummy model has a huge error on OSM-like data, the spline does not.
//! let im_err = ModelErrorStats::compute(&im, &data);
//! let rs_err = ModelErrorStats::compute(&rs, &data);
//! assert!(im_err.mean_abs > 100.0 * rs_err.mean_abs.max(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cubic;
pub mod error;
pub mod linear;
pub mod model;
pub mod pgm;
pub mod radix_spline;
pub mod rmi;
pub mod spec;
pub mod spline;

pub use cubic::CubicModel;
pub use error::ModelErrorStats;
pub use linear::{InterpolationModel, LinearModel};
pub use model::CdfModel;
pub use pgm::PgmModel;
pub use radix_spline::{RadixSpline, RadixSplineBuilder};
pub use rmi::{RmiBuilder, RmiIndex, RootModelKind};
pub use spec::{ModelSpec, SpecParseError};
pub use spline::{GreedySplineCorridor, SplinePoint};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::cubic::CubicModel;
    pub use crate::error::ModelErrorStats;
    pub use crate::linear::{InterpolationModel, LinearModel};
    pub use crate::model::CdfModel;
    pub use crate::pgm::PgmModel;
    pub use crate::radix_spline::{RadixSpline, RadixSplineBuilder};
    pub use crate::rmi::{RmiBuilder, RmiIndex, RootModelKind};
    pub use crate::spec::{ModelSpec, SpecParseError};
}
