//! PGM-style multi-level piecewise-linear CDF model.
//!
//! The Piecewise Geometric Model index (Ferragina & Vinciguerra, VLDB 2020)
//! is the best-known error-bounded learned index besides RadixSpline; the
//! paper cites it as related work. It is included here (a) to show the
//! Shift-Table layer is model-agnostic and (b) as an ablation point for the
//! Figure 8 index-size sweeps.
//!
//! The structure is a hierarchy of error-bounded piecewise-linear levels: the
//! bottom level's segments map keys to record positions within ±ε; each upper
//! level indexes the first-keys of the level below it, again within ±ε.
//! Lookup descends from the single root segment, at each level correcting the
//! predicted child segment with a small bounded scan.

use crate::model::CdfModel;
use crate::spline::{predict_from_points, GreedySplineCorridor, SplinePoint};
use sosd_data::dataset::Dataset;
use sosd_data::key::Key;

/// Default error bound ε (records / segments).
pub const DEFAULT_EPSILON: usize = 64;

/// One level of the PGM: spline knots over the entities of the level below.
#[derive(Debug, Clone)]
struct Level {
    points: Vec<SplinePoint>,
}

/// PGM-style multi-level error-bounded piecewise-linear model.
#[derive(Debug, Clone)]
pub struct PgmModel {
    /// Levels from the bottom (over the data) to the top (root, one segment
    /// worth of knots small enough to scan directly).
    levels: Vec<Level>,
    epsilon: usize,
    n: usize,
    monotonic: bool,
}

impl PgmModel {
    /// Build with the default ε.
    pub fn build<K: Key>(dataset: &Dataset<K>) -> Self {
        Self::with_epsilon(dataset, DEFAULT_EPSILON)
    }

    /// Build with an explicit error bound ε (records).
    pub fn with_epsilon<K: Key>(dataset: &Dataset<K>, epsilon: usize) -> Self {
        Self::from_sorted_keys(dataset.as_slice(), epsilon)
    }

    /// Build from a sorted key slice with error bound ε.
    pub fn from_sorted_keys<K: Key>(keys: &[K], epsilon: usize) -> Self {
        let n = keys.len();
        let epsilon = epsilon.max(1);
        if n == 0 {
            return Self {
                levels: Vec::new(),
                epsilon,
                n: 0,
                monotonic: true,
            };
        }
        let corridor = GreedySplineCorridor::new(epsilon);
        let bottom = corridor.fit(keys);
        let mut levels = vec![Level { points: bottom }];

        // Build upper levels over the first-keys of the level below until the
        // top level is small enough to scan directly.
        while levels.last().map(|l| l.points.len()).unwrap_or(0) > 2 * epsilon + 4 {
            let below = &levels.last().unwrap().points;
            let keys_above: Vec<u64> = below.iter().map(|p| p.key).collect();
            let above = corridor.fit(&keys_above);
            if above.len() >= below.len() {
                break; // no compression achieved; stop stacking levels
            }
            levels.push(Level { points: above });
        }

        let mut model = Self {
            levels,
            epsilon,
            n,
            monotonic: true,
        };
        // Audit monotonicity over the training keys (like RMI, honesty first).
        let mut prev = 0usize;
        let mut monotonic = true;
        for (i, k) in keys.iter().enumerate() {
            let p = CdfModel::<K>::predict(&model, *k);
            if i > 0 && p < prev {
                monotonic = false;
                break;
            }
            prev = p;
        }
        model.monotonic = monotonic;
        model
    }

    /// The error bound ε.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Number of levels (≥ 1 for non-empty data).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of segments (knots) in the bottom level.
    pub fn segment_count(&self) -> usize {
        self.levels.first().map(|l| l.points.len()).unwrap_or(0)
    }

    /// Raw `f64` prediction (before truncation).
    pub fn predict_f64(&self, key: u64) -> f64 {
        let Some(bottom) = self.levels.first() else {
            return 0.0;
        };
        if self.levels.len() == 1 {
            return predict_from_points(&bottom.points, key);
        }
        // Descend: at each level, predict the knot index in the level below,
        // then correct it with a bounded scan of ±ε around the prediction.
        let top = self.levels.last().unwrap();
        let mut predicted_idx = predict_from_points(&top.points, key) as usize;
        for level_idx in (0..self.levels.len() - 1).rev() {
            let level = &self.levels[level_idx];
            let points = &level.points;
            let lo = predicted_idx.saturating_sub(self.epsilon + 1);
            let hi = (predicted_idx + self.epsilon + 2).min(points.len());
            let window = &points[lo..hi.max(lo)];
            // Find the last knot in the window with knot.key <= key.
            let rel = window.partition_point(|p| p.key <= key);
            let seg_start = if rel == 0 { lo } else { lo + rel - 1 };
            if level_idx == 0 {
                let a = points[seg_start];
                let b = points[(seg_start + 1).min(points.len() - 1)];
                return crate::spline::interpolate_segment(a, b, key).max(a.pos as f64);
            }
            // The knot position in an upper level *is* the index into the
            // level below (upper levels are built over the below level's
            // knot keys, so pos == child index).
            let a = points[seg_start];
            let b = points[(seg_start + 1).min(points.len() - 1)];
            predicted_idx = crate::spline::interpolate_segment(a, b, key) as usize;
        }
        unreachable!("loop always returns at level 0")
    }
}

impl<K: Key> CdfModel<K> for PgmModel {
    #[inline]
    fn predict(&self, key: K) -> usize {
        if self.n == 0 {
            return 0;
        }
        let p = self.predict_f64(key.to_u64());
        let p = if p > 0.0 { p } else { 0.0 };
        (p as usize).min(self.n - 1)
    }

    fn key_count(&self) -> usize {
        self.n
    }

    fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.points.len() * std::mem::size_of::<SplinePoint>())
            .sum()
    }

    fn is_monotonic(&self) -> bool {
        self.monotonic
    }

    fn max_error_bound(&self) -> Option<usize> {
        // Each level adds at most ε of indexing slack, but the bottom-level
        // interpolation error is what matters for record positions.
        Some(self.epsilon + 1)
    }

    fn name(&self) -> &'static str {
        "PGM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ModelErrorStats;
    use sosd_data::generators::SosdName;

    #[test]
    fn error_bound_holds_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(20_000, 11);
            let pgm = PgmModel::with_epsilon(&d, 64);
            let mut last = None;
            for (i, &k) in d.as_slice().iter().enumerate() {
                if last == Some(k) {
                    continue;
                }
                last = Some(k);
                let p = CdfModel::<u64>::predict(&pgm, k) as i64;
                let err = (p - i as i64).unsigned_abs() as usize;
                assert!(err <= 65, "{name}: key {k} pos {i} predicted {p} err {err}");
            }
        }
    }

    #[test]
    fn multiple_levels_emerge_on_hard_data() {
        let d: Dataset<u64> = SosdName::Osmc64.generate(100_000, 1);
        let pgm = PgmModel::with_epsilon(&d, 8);
        assert!(
            pgm.level_count() >= 2,
            "hard data with small ε should need a hierarchy, got {} levels of {} segments",
            pgm.level_count(),
            pgm.segment_count()
        );
    }

    #[test]
    fn easy_data_needs_one_tiny_level() {
        let d: Dataset<u64> = SosdName::Uden64.generate(100_000, 1);
        let pgm = PgmModel::with_epsilon(&d, 64);
        assert_eq!(pgm.level_count(), 1);
        assert!(pgm.segment_count() < 16);
    }

    #[test]
    fn smaller_epsilon_means_lower_error_and_bigger_model() {
        let d: Dataset<u64> = SosdName::Face64.generate(50_000, 2);
        let coarse = PgmModel::with_epsilon(&d, 256);
        let fine = PgmModel::with_epsilon(&d, 8);
        let e_coarse = ModelErrorStats::compute(&coarse, &d).mean_abs;
        let e_fine = ModelErrorStats::compute(&fine, &d).mean_abs;
        assert!(e_fine < e_coarse);
        assert!(CdfModel::<u64>::size_bytes(&fine) > CdfModel::<u64>::size_bytes(&coarse));
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let pgm = PgmModel::build(&empty);
        assert_eq!(CdfModel::<u64>::predict(&pgm, 5), 0);

        let single = Dataset::from_keys("s", vec![9u64]);
        let pgm = PgmModel::build(&single);
        assert_eq!(CdfModel::<u64>::predict(&pgm, 9), 0);
        assert_eq!(CdfModel::<u64>::predict(&pgm, 1000), 0);

        let dup = Dataset::from_keys("d", vec![5u64; 200]);
        let pgm = PgmModel::build(&dup);
        assert_eq!(CdfModel::<u64>::predict(&pgm, 5), 0);
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(10_000, 3);
        let pgm = PgmModel::build(&d);
        assert!(CdfModel::<u64>::predict(&pgm, 0) < d.len());
        assert!(CdfModel::<u64>::predict(&pgm, u64::MAX) < d.len());
    }
}
