//! Greedy error-bounded spline fitting (the "spline corridor" algorithm).
//!
//! This is the shared machinery behind [`crate::radix_spline::RadixSpline`]
//! and [`crate::pgm::PgmModel`]: a single pass over the `(key, position)`
//! points that emits the minimal-ish set of spline knots such that linear
//! interpolation between consecutive knots is within `max_error` records of
//! every training point (Neumann & Michel's smooth interpolating histograms,
//! as used by RadixSpline).

use sosd_data::key::Key;

/// A spline knot: a key and the record position it maps to exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplinePoint {
    /// Key value of the knot (widened to u64).
    pub key: u64,
    /// Record position of the knot.
    pub pos: usize,
}

/// Greedy corridor spline builder with a hard error bound.
#[derive(Debug, Clone)]
pub struct GreedySplineCorridor {
    max_error: usize,
}

impl GreedySplineCorridor {
    /// Create a builder with the given maximum interpolation error (records).
    pub fn new(max_error: usize) -> Self {
        Self {
            max_error: max_error.max(1),
        }
    }

    /// The configured error bound.
    pub fn max_error(&self) -> usize {
        self.max_error
    }

    /// Fit spline knots over a sorted key slice. Duplicate keys contribute
    /// their *first* position (lower-bound semantics); interpolating a
    /// duplicate run therefore lands at its beginning.
    pub fn fit<K: Key>(&self, keys: &[K]) -> Vec<SplinePoint> {
        let n = keys.len();
        if n == 0 {
            return Vec::new();
        }
        let eps = self.max_error as f64;
        let mut points: Vec<SplinePoint> = Vec::new();

        // Deduplicate on the fly: only the first position of each distinct
        // key is a corridor constraint.
        let mut base = SplinePoint {
            key: keys[0].to_u64(),
            pos: 0,
        };
        points.push(base);

        let mut prev = base;
        let mut upper = f64::INFINITY;
        let mut lower = f64::NEG_INFINITY;
        let mut have_interior = false;

        let mut last_key = keys[0].to_u64();
        for (i, k) in keys.iter().enumerate().skip(1) {
            let key = k.to_u64();
            if key == last_key {
                continue;
            }
            last_key = key;
            let point = SplinePoint { key, pos: i };
            let dx = (key - base.key) as f64;
            let dy = point.pos as f64 - base.pos as f64;
            let slope_to_upper = (dy + eps) / dx;
            let slope_to_lower = (dy - eps) / dx;
            if !have_interior {
                // First interior candidate after the base: initialise corridor.
                upper = slope_to_upper;
                lower = slope_to_lower;
                prev = point;
                have_interior = true;
                continue;
            }
            let slope_to_point = dy / dx;
            if slope_to_point > upper || slope_to_point < lower {
                // The corridor cannot cover this point: emit the previous
                // point as a knot and restart the corridor from it.
                points.push(prev);
                base = prev;
                let dx = (key - base.key) as f64;
                let dy = point.pos as f64 - base.pos as f64;
                upper = (dy + eps) / dx;
                lower = (dy - eps) / dx;
            } else {
                // Narrow the corridor.
                upper = upper.min(slope_to_upper);
                lower = lower.max(slope_to_lower);
            }
            prev = point;
        }

        // Always close with the last distinct key so interpolation covers the
        // whole key range exactly at both ends.
        if points.last().map(|p| p.key) != Some(prev.key) {
            points.push(prev);
        }
        points
    }
}

/// Interpolate a position for `key` between two knots. Keys outside the knot
/// span clamp to the nearest knot's position.
#[inline]
pub fn interpolate_segment(a: SplinePoint, b: SplinePoint, key: u64) -> f64 {
    if key <= a.key {
        return a.pos as f64;
    }
    if key >= b.key {
        return b.pos as f64;
    }
    let dx = (b.key - a.key) as f64;
    let frac = (key - a.key) as f64 / dx;
    a.pos as f64 + frac * (b.pos as f64 - a.pos as f64)
}

/// Locate the segment `[points[i], points[i+1]]` containing `key` within the
/// slice and return the interpolated position. The slice must be non-empty
/// and sorted by key.
#[inline]
pub fn predict_from_points(points: &[SplinePoint], key: u64) -> f64 {
    debug_assert!(!points.is_empty());
    if points.len() == 1 || key <= points[0].key {
        return points[0].pos as f64;
    }
    let last = points[points.len() - 1];
    if key >= last.key {
        return last.pos as f64;
    }
    // First knot with knot.key > key; the segment starts one before it.
    let idx = points.partition_point(|p| p.key <= key);
    interpolate_segment(points[idx - 1], points[idx], key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::generators::SosdName;
    use sosd_data::prelude::*;

    fn check_error_bound(keys: &[u64], points: &[SplinePoint], eps: usize) {
        // For distinct keys the interpolated prediction must be within eps of
        // the first-occurrence position.
        let mut last = None;
        for (i, &k) in keys.iter().enumerate() {
            if last == Some(k) {
                continue;
            }
            last = Some(k);
            let predicted = predict_from_points(points, k);
            let err = (predicted - i as f64).abs();
            assert!(
                err <= eps as f64 + 1e-6,
                "key {k} at pos {i} predicted {predicted}, error {err} > eps {eps}"
            );
        }
    }

    #[test]
    fn linear_data_needs_only_two_knots() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
        let points = GreedySplineCorridor::new(16).fit(&keys);
        assert!(
            points.len() <= 3,
            "perfectly linear data should need ~2 knots, got {}",
            points.len()
        );
        check_error_bound(&keys, &points, 16);
    }

    #[test]
    fn error_bound_holds_on_every_dataset_family() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(20_000, 3);
            for eps in [4usize, 32, 256] {
                let points = GreedySplineCorridor::new(eps).fit(d.as_slice());
                assert!(!points.is_empty());
                check_error_bound(d.as_slice(), &points, eps);
            }
        }
    }

    #[test]
    fn tighter_epsilon_needs_more_knots() {
        let d: Dataset<u64> = SosdName::Face64.generate(50_000, 1);
        let coarse = GreedySplineCorridor::new(256).fit(d.as_slice()).len();
        let fine = GreedySplineCorridor::new(4).fit(d.as_slice()).len();
        assert!(
            fine > coarse,
            "eps=4 ({fine} knots) should need more knots than eps=256 ({coarse})"
        );
    }

    #[test]
    fn duplicates_are_collapsed() {
        let keys = vec![1u64, 1, 1, 5, 5, 9, 9, 9, 9];
        let points = GreedySplineCorridor::new(1).fit(&keys);
        // Knot keys must be distinct.
        for w in points.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        // Predictions for duplicate keys land near the first occurrence.
        let p = predict_from_points(&points, 9);
        assert!(
            (p - 5.0).abs() <= 1.0 + 1e-9,
            "9 starts at pos 5, predicted {p}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(GreedySplineCorridor::new(8).fit(&empty).is_empty());

        let single = vec![42u64];
        let points = GreedySplineCorridor::new(8).fit(&single);
        assert_eq!(points.len(), 1);
        assert_eq!(predict_from_points(&points, 42), 0.0);
        assert_eq!(predict_from_points(&points, 7), 0.0);

        let constant = vec![7u64; 100];
        let points = GreedySplineCorridor::new(8).fit(&constant);
        assert_eq!(points.len(), 1, "a single distinct key yields one knot");
    }

    #[test]
    fn interpolation_clamps_outside_span() {
        let a = SplinePoint { key: 10, pos: 5 };
        let b = SplinePoint { key: 20, pos: 15 };
        assert_eq!(interpolate_segment(a, b, 5), 5.0);
        assert_eq!(interpolate_segment(a, b, 25), 15.0);
        assert_eq!(interpolate_segment(a, b, 15), 10.0);
    }
}
