//! Model prediction-error statistics.
//!
//! The paper reports model error in several forms: the mean absolute error
//! (records), the signed drift (§3), and — following SOSD / Figure 8 — the
//! mean log2 error, which approximates the number of binary-search iterations
//! the last-mile search needs. [`ModelErrorStats`] computes all of them in
//! one pass over the training keys.

use crate::model::CdfModel;
use sosd_data::dataset::Dataset;
use sosd_data::key::Key;

/// Error statistics of a model over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelErrorStats {
    /// Number of (distinct-position) keys evaluated.
    pub count: usize,
    /// Mean absolute error in records.
    pub mean_abs: f64,
    /// Mean signed error (positive = model predicts too far right).
    pub mean_signed: f64,
    /// Median absolute error in records.
    pub median_abs: f64,
    /// Maximum absolute error in records.
    pub max_abs: u64,
    /// Mean `log2(1 + |error|)` — the SOSD "log2 error" metric, roughly the
    /// number of binary-search iterations needed in the last-mile search.
    pub mean_log2: f64,
    /// Root mean squared error.
    pub rmse: f64,
}

impl ModelErrorStats {
    /// Compute the statistics of `model` over every key of `dataset`,
    /// using the first occurrence of each duplicate key as the target
    /// (lower-bound semantics, §3.2).
    pub fn compute<K: Key, M: CdfModel<K> + ?Sized>(model: &M, dataset: &Dataset<K>) -> Self {
        Self::compute_on_keys(model, dataset.as_slice())
    }

    /// The `mean_abs` statistic alone, as a buffer-free running sum — for
    /// build paths (layer auto-tuning, the probe-count proxy) that need only
    /// the mean and would otherwise pay [`Self::compute_on_keys`]'s per-key
    /// buffer and median sort on every (re)build. Uses the same unclamped
    /// predictions and first-occurrence duplicate targets, so it is always
    /// equal to `compute_on_keys(model, keys).mean_abs`.
    pub fn mean_abs_on_keys<K: Key, M: CdfModel<K> + ?Sized>(model: &M, keys: &[K]) -> f64 {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        let mut last: Option<K> = None;
        for (i, &k) in keys.iter().enumerate() {
            if last == Some(k) {
                continue; // duplicates: only the first occurrence is a target
            }
            last = Some(k);
            sum += (model.predict(k) as f64 - i as f64).abs();
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Compute over an explicit sorted key slice.
    pub fn compute_on_keys<K: Key, M: CdfModel<K> + ?Sized>(model: &M, keys: &[K]) -> Self {
        let mut abs_errors: Vec<f64> = Vec::with_capacity(keys.len());
        let mut sum_abs = 0.0f64;
        let mut sum_signed = 0.0f64;
        let mut sum_log2 = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max_abs = 0u64;
        let mut last_key: Option<K> = None;
        let mut count = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            if last_key == Some(k) {
                continue; // duplicates: only the first occurrence is a target
            }
            last_key = Some(k);
            let predicted = model.predict(k) as f64;
            let err = predicted - i as f64;
            let abs = err.abs();
            sum_abs += abs;
            sum_signed += err;
            sum_log2 += (1.0 + abs).log2();
            sum_sq += err * err;
            max_abs = max_abs.max(abs.round() as u64);
            abs_errors.push(abs);
            count += 1;
        }
        if count == 0 {
            return Self {
                count: 0,
                mean_abs: 0.0,
                mean_signed: 0.0,
                median_abs: 0.0,
                max_abs: 0,
                mean_log2: 0.0,
                rmse: 0.0,
            };
        }
        abs_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_abs = abs_errors[abs_errors.len() / 2];
        let nf = count as f64;
        Self {
            count,
            mean_abs: sum_abs / nf,
            mean_signed: sum_signed / nf,
            median_abs,
            max_abs,
            mean_log2: sum_log2 / nf,
            rmse: (sum_sq / nf).sqrt(),
        }
    }
}

impl std::fmt::Display for ModelErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean |e| = {:.1}, median |e| = {:.1}, max |e| = {}, log2 e = {:.2}, rmse = {:.1}",
            self.mean_abs, self.median_abs, self.max_abs, self.mean_log2, self.rmse
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::InterpolationModel;
    use crate::radix_spline::RadixSpline;
    use sosd_data::generators::SosdName;

    #[test]
    fn perfect_model_has_zero_error() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 5).collect();
        let d = Dataset::from_keys("lin", keys);
        let m = InterpolationModel::build(&d);
        let s = ModelErrorStats::compute(&m, &d);
        assert_eq!(s.count, 1000);
        assert_eq!(s.mean_abs, 0.0);
        assert_eq!(s.max_abs, 0);
        assert_eq!(s.mean_log2, 0.0);
        assert_eq!(s.rmse, 0.0);
    }

    #[test]
    fn mean_abs_fast_path_agrees_with_the_full_statistics() {
        // The buffer-free fast path must stay bit-identical to the full
        // computation — the §3.9 tuning advisor decides from one while the
        // reports print the other.
        for name in [SosdName::Face64, SosdName::Osmc64, SosdName::Uden64] {
            let d: Dataset<u64> = name.generate(20_000, 17);
            let m = InterpolationModel::build(&d);
            let full = ModelErrorStats::compute_on_keys(&m, d.as_slice()).mean_abs;
            let fast = ModelErrorStats::mean_abs_on_keys(&m, d.as_slice());
            assert_eq!(full, fast, "{name}");
        }
        // Duplicates and the empty slice.
        let dups = vec![3u64, 3, 3, 9, 9];
        let m = InterpolationModel::from_sorted_keys(&dups);
        assert_eq!(
            ModelErrorStats::compute_on_keys(&m, &dups).mean_abs,
            ModelErrorStats::mean_abs_on_keys(&m, &dups)
        );
        assert_eq!(ModelErrorStats::mean_abs_on_keys(&m, &[] as &[u64]), 0.0);
    }

    #[test]
    fn im_error_is_huge_on_osmc_and_small_after_radix_spline() {
        // Quantitative flavour of Figure 6: the dummy linear model has an
        // error that is a substantial fraction of N on OSM-like data, while
        // an error-bounded model keeps it below its ε.
        let d: Dataset<u64> = SosdName::Osmc64.generate(100_000, 1);
        let im = InterpolationModel::build(&d);
        let rs = RadixSpline::builder().max_error(32).build(&d);
        let s_im = ModelErrorStats::compute(&im, &d);
        let s_rs = ModelErrorStats::compute(&rs, &d);
        assert!(
            s_im.mean_abs > 0.02 * d.len() as f64,
            "IM mean error {} should be a large fraction of n",
            s_im.mean_abs
        );
        assert!(s_rs.max_abs <= 33);
        assert!(s_im.mean_abs > 100.0 * s_rs.mean_abs.max(1.0));
    }

    #[test]
    fn duplicates_use_first_occurrence_target() {
        let d = Dataset::from_keys("dup", vec![10u64, 20, 20, 20, 30]);
        let m = InterpolationModel::build(&d);
        let s = ModelErrorStats::compute(&m, &d);
        // Only 3 distinct keys are evaluated.
        assert_eq!(s.count, 3);
    }

    #[test]
    fn signed_error_detects_bias() {
        // A model that always predicts 0 has negative signed error equal to
        // the mean position.
        struct Zero(usize);
        impl CdfModel<u64> for Zero {
            fn predict(&self, _key: u64) -> usize {
                0
            }
            fn key_count(&self) -> usize {
                self.0
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "zero"
            }
        }
        let keys: Vec<u64> = (0..100u64).collect();
        let d = Dataset::from_keys("d", keys);
        let s = ModelErrorStats::compute(&Zero(100), &d);
        assert!((s.mean_signed + 49.5).abs() < 1e-9);
        assert_eq!(s.max_abs, 99);
        assert!((s.mean_abs - 49.5).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset() {
        let d: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let m = InterpolationModel::build(&d);
        let s = ModelErrorStats::compute(&m, &d);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_abs, 0.0);
    }

    #[test]
    fn display_is_human_readable() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(1_000, 1);
        let m = InterpolationModel::build(&d);
        let s = ModelErrorStats::compute(&m, &d);
        let text = s.to_string();
        assert!(text.contains("mean |e|"));
        assert!(text.contains("log2"));
    }
}
