//! Recursive Model Index (RMI): the paper's "RMI" learned-index baseline.
//!
//! A two-level RMI: a root model partitions the key space over `L` leaf
//! models; each leaf is a least-squares line fitted to the keys routed to it.
//! SOSD hand-tunes the architecture per dataset; here [`RmiBuilder::tuned`]
//! performs the equivalent sweep over leaf counts and keeps the
//! configuration with the smallest mean log2 error — the metric SOSD uses to
//! pick architectures.
//!
//! As the paper notes in §3.8, an RMI is *not* guaranteed to produce
//! monotonically increasing predictions (leaf boundaries and cubic roots can
//! break monotonicity), so the builder measures monotonicity over the
//! training keys and reports it honestly through
//! [`CdfModel::is_monotonic`].

use crate::cubic::CubicModel;
use crate::linear::LinearModel;
use crate::model::CdfModel;
use sosd_data::dataset::Dataset;
use sosd_data::key::Key;

/// Which model family the RMI root uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RootModelKind {
    /// Least-squares straight line (fast, always monotone).
    #[default]
    Linear,
    /// Cubic polynomial (better for S-shaped CDFs, may be non-monotone).
    Cubic,
}

/// Builder for [`RmiIndex`].
#[derive(Debug, Clone)]
pub struct RmiBuilder {
    leaf_count: usize,
    root: RootModelKind,
}

impl Default for RmiBuilder {
    fn default() -> Self {
        Self {
            leaf_count: 1024,
            root: RootModelKind::Linear,
        }
    }
}

impl RmiBuilder {
    /// Number of second-level (leaf) models.
    pub fn leaf_count(mut self, count: usize) -> Self {
        self.leaf_count = count.max(1);
        self
    }

    /// Root model family.
    pub fn root_model(mut self, kind: RootModelKind) -> Self {
        self.root = kind;
        self
    }

    /// Build the RMI over a dataset.
    pub fn build<K: Key>(self, dataset: &Dataset<K>) -> RmiIndex {
        self.build_from_sorted_keys(dataset.as_slice())
    }

    /// Build the RMI over a sorted key slice.
    pub fn build_from_sorted_keys<K: Key>(self, keys: &[K]) -> RmiIndex {
        let n = keys.len();
        if n == 0 {
            return RmiIndex {
                root: RootModel::Linear(LinearModel::fit(std::iter::empty(), 0)),
                leaves: Vec::new(),
                leaf_errors: Vec::new(),
                n: 0,
                monotonic: true,
                max_error: 0,
            };
        }
        let leaf_count = self.leaf_count.min(n).max(1);

        // 1. Fit the root over the whole data.
        let root = match self.root {
            RootModelKind::Linear => RootModel::Linear(LinearModel::from_sorted_keys(keys)),
            RootModelKind::Cubic => RootModel::Cubic(CubicModel::from_sorted_keys(keys)),
        };

        // 2. Route every key to a leaf using the root's *raw* prediction
        //    scaled to the leaf range, then fit one line per leaf.
        let mut assignments: Vec<u32> = Vec::with_capacity(n);
        for k in keys {
            let leaf = root.route(k.to_f64(), n, leaf_count);
            assignments.push(leaf as u32);
        }

        let mut leaves: Vec<LinearModel> = Vec::with_capacity(leaf_count);
        let mut leaf_errors: Vec<u32> = vec![0; leaf_count];
        let mut start = 0usize;
        // `leaf` is both an index into `leaf_errors` and the routing target
        // compared against `assignments`, so a range loop is the clearest form.
        #[allow(clippy::needless_range_loop)]
        for leaf in 0..leaf_count {
            // Keys routed to `leaf` form a contiguous run only if the root is
            // monotone; to stay correct for non-monotone roots, gather by
            // scanning the assignment array from the current position while
            // it matches, plus any out-of-order stragglers.
            let mut xs: Vec<f64> = Vec::new();
            let mut ys: Vec<usize> = Vec::new();
            // Fast path: contiguous run starting at `start`.
            let mut idx = start;
            while idx < n && assignments[idx] == leaf as u32 {
                xs.push(keys[idx].to_f64());
                ys.push(idx);
                idx += 1;
            }
            let contiguous_end = idx;
            // Slow path: stragglers elsewhere (only possible with a
            // non-monotone root; rare).
            if contiguous_end == start {
                for (i, &a) in assignments.iter().enumerate() {
                    if a == leaf as u32 {
                        xs.push(keys[i].to_f64());
                        ys.push(i);
                    }
                }
            }
            if contiguous_end > start {
                start = contiguous_end;
            }

            let model = if xs.is_empty() {
                // Empty leaf: reuse the previous leaf's model so predictions
                // remain sensible, or a constant for the very first leaf.
                leaves
                    .last()
                    .cloned()
                    .unwrap_or_else(|| LinearModel::fit(std::iter::empty(), 0))
            } else {
                fit_leaf(&xs, &ys, n)
            };
            // Per-leaf max error over its training keys.
            let mut err = 0u32;
            for (&x, &y) in xs.iter().zip(ys.iter()) {
                let p = clamp_pred(model.predict_f64(x), n);
                err = err.max((p as i64 - y as i64).unsigned_abs() as u32);
            }
            leaf_errors[leaf] = err;
            leaves.push(model);
        }

        let max_error = leaf_errors.iter().copied().max().unwrap_or(0) as usize;

        // 3. Monotonicity audit over the training keys.
        let mut monotonic = true;
        let mut prev = 0usize;
        for (i, k) in keys.iter().enumerate() {
            let leaf = root.route(k.to_f64(), n, leaf_count);
            let p = clamp_pred(leaves[leaf].predict_f64(k.to_f64()), n);
            if i > 0 && p < prev {
                monotonic = false;
                break;
            }
            prev = p;
        }

        RmiIndex {
            root,
            leaves,
            leaf_errors,
            n,
            monotonic,
            max_error,
        }
    }

    /// SOSD-style tuning: sweep leaf counts (and root kinds) and keep the
    /// configuration with the lowest mean log2 error on the training keys.
    pub fn tuned<K: Key>(dataset: &Dataset<K>, leaf_counts: &[usize]) -> RmiIndex {
        let mut best: Option<(f64, RmiIndex)> = None;
        for &lc in leaf_counts {
            for root in [RootModelKind::Linear, RootModelKind::Cubic] {
                let rmi = RmiBuilder::default()
                    .leaf_count(lc)
                    .root_model(root)
                    .build(dataset);
                let err = crate::error::ModelErrorStats::compute(&rmi, dataset).mean_log2;
                if best.as_ref().map(|(e, _)| err < *e).unwrap_or(true) {
                    best = Some((err, rmi));
                }
            }
        }
        best.map(|(_, rmi)| rmi)
            .unwrap_or_else(|| RmiBuilder::default().build(dataset))
    }
}

/// Fit a leaf line over explicit `(key, global position)` pairs. `n` is the
/// total record count predictions will later be clamped to.
fn fit_leaf(xs: &[f64], ys: &[usize], n: usize) -> LinearModel {
    // Simple least squares on the raw pairs (positions are global).
    let m = xs.len();
    if m == 0 {
        return LinearModel::fit(std::iter::empty(), 0);
    }
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    let mut sum_xx = 0.0;
    let mut sum_xy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let y = y as f64;
        sum_x += x;
        sum_y += y;
        sum_xx += x * x;
        sum_xy += x * y;
    }
    let nf = m as f64;
    let denom = nf * sum_xx - sum_x * sum_x;
    let (slope, intercept) = if denom.abs() < f64::EPSILON || m < 2 {
        (0.0, sum_y / nf)
    } else {
        let slope = ((nf * sum_xy - sum_x * sum_y) / denom).max(0.0);
        ((slope), (sum_y - slope * sum_x) / nf)
    };
    LinearModel::from_parts(intercept, slope, n)
}

#[inline]
fn clamp_pred(p: f64, n: usize) -> usize {
    if n == 0 || p <= 0.0 {
        0
    } else {
        (p as usize).min(n - 1)
    }
}

/// The root model variants.
#[derive(Debug, Clone)]
enum RootModel {
    Linear(LinearModel),
    Cubic(CubicModel),
}

impl RootModel {
    /// Route a key to a leaf index in `[0, leaf_count)`.
    #[inline]
    fn route(&self, key: f64, n: usize, leaf_count: usize) -> usize {
        let raw = match self {
            Self::Linear(m) => m.predict_f64(key),
            Self::Cubic(m) => m.predict_f64(key),
        };
        if n == 0 || leaf_count == 0 {
            return 0;
        }
        let frac = (raw / n as f64).clamp(0.0, 1.0);
        ((frac * leaf_count as f64) as usize).min(leaf_count - 1)
    }

    fn size_bytes(&self) -> usize {
        match self {
            Self::Linear(_) => 2 * std::mem::size_of::<f64>(),
            Self::Cubic(_) => 6 * std::mem::size_of::<f64>(),
        }
    }
}

/// A trained two-level recursive model index.
#[derive(Debug, Clone)]
pub struct RmiIndex {
    root: RootModel,
    leaves: Vec<LinearModel>,
    leaf_errors: Vec<u32>,
    n: usize,
    monotonic: bool,
    max_error: usize,
}

impl RmiIndex {
    /// Start building an RMI.
    pub fn builder() -> RmiBuilder {
        RmiBuilder::default()
    }

    /// Build with default parameters (1024 linear leaves).
    pub fn build<K: Key>(dataset: &Dataset<K>) -> Self {
        RmiBuilder::default().build(dataset)
    }

    /// Number of leaf models.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Per-leaf maximum training error (records); parallel to the leaves.
    pub fn leaf_errors(&self) -> &[u32] {
        &self.leaf_errors
    }

    /// The leaf a key routes to.
    pub fn leaf_for<K: Key>(&self, key: K) -> usize {
        self.root.route(key.to_f64(), self.n, self.leaves.len())
    }
}

impl<K: Key> CdfModel<K> for RmiIndex {
    #[inline]
    fn predict(&self, key: K) -> usize {
        if self.n == 0 || self.leaves.is_empty() {
            return 0;
        }
        let x = key.to_f64();
        let leaf = self.root.route(x, self.n, self.leaves.len());
        clamp_pred(self.leaves[leaf].predict_f64(x), self.n)
    }

    fn key_count(&self) -> usize {
        self.n
    }

    fn size_bytes(&self) -> usize {
        self.root.size_bytes()
            + self.leaves.len() * 2 * std::mem::size_of::<f64>()
            + self.leaf_errors.len() * std::mem::size_of::<u32>()
    }

    fn is_monotonic(&self) -> bool {
        self.monotonic
    }

    fn max_error_bound(&self) -> Option<usize> {
        Some(self.max_error)
    }

    fn name(&self) -> &'static str {
        "RMI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ModelErrorStats;
    use sosd_data::generators::SosdName;

    #[test]
    fn rmi_is_near_exact_on_uniform_dense_data() {
        let d: Dataset<u64> = SosdName::Uden64.generate(50_000, 1);
        let rmi = RmiIndex::builder().leaf_count(256).build(&d);
        let stats = ModelErrorStats::compute(&rmi, &d);
        assert!(
            stats.mean_abs < 4.0,
            "uden should be almost perfectly learned, mean error {}",
            stats.mean_abs
        );
    }

    #[test]
    fn more_leaves_reduce_error() {
        let d: Dataset<u64> = SosdName::Face64.generate(50_000, 2);
        let coarse = RmiIndex::builder().leaf_count(16).build(&d);
        let fine = RmiIndex::builder().leaf_count(4096).build(&d);
        let e_coarse = ModelErrorStats::compute(&coarse, &d).mean_abs;
        let e_fine = ModelErrorStats::compute(&fine, &d).mean_abs;
        assert!(
            e_fine < e_coarse,
            "4096 leaves ({e_fine}) should beat 16 leaves ({e_coarse})"
        );
    }

    #[test]
    fn predictions_stay_in_range() {
        let d: Dataset<u64> = SosdName::Logn64.generate(20_000, 3);
        let rmi = RmiIndex::build(&d);
        assert!(CdfModel::<u64>::predict(&rmi, 0) < d.len());
        assert!(CdfModel::<u64>::predict(&rmi, u64::MAX) < d.len());
        for &k in d.as_slice().iter().step_by(211) {
            assert!(CdfModel::<u64>::predict(&rmi, k) < d.len());
        }
    }

    #[test]
    fn max_error_bound_covers_training_keys() {
        let d: Dataset<u64> = SosdName::Amzn64.generate(20_000, 4);
        let rmi = RmiIndex::builder().leaf_count(512).build(&d);
        let bound = CdfModel::<u64>::max_error_bound(&rmi).unwrap();
        for (i, &k) in d.as_slice().iter().enumerate() {
            if i > 0 && d.as_slice()[i - 1] == k {
                continue; // duplicates: only first occurrence is the target
            }
            let p = CdfModel::<u64>::predict(&rmi, k);
            assert!(
                (p as i64 - i as i64).unsigned_abs() as usize <= bound,
                "key {k}: predicted {p}, actual {i}, bound {bound}"
            );
        }
    }

    #[test]
    fn cubic_root_works_and_reports_monotonicity_honestly() {
        let d: Dataset<u64> = SosdName::Norm64.generate(20_000, 5);
        let rmi = RmiIndex::builder()
            .leaf_count(128)
            .root_model(RootModelKind::Cubic)
            .build(&d);
        // Whatever it reports must agree with an explicit audit.
        let audited = crate::model::verify_monotonic_on::<u64, _>(&rmi, d.as_slice());
        assert_eq!(CdfModel::<u64>::is_monotonic(&rmi), audited);
        let stats = ModelErrorStats::compute(&rmi, &d);
        assert!(stats.mean_abs < d.len() as f64 / 20.0);
    }

    #[test]
    fn tuned_rmi_is_at_least_as_good_as_any_single_config() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(20_000, 6);
        let tuned = RmiBuilder::tuned(&d, &[64, 512, 2048]);
        let fixed = RmiIndex::builder().leaf_count(64).build(&d);
        let e_tuned = ModelErrorStats::compute(&tuned, &d).mean_log2;
        let e_fixed = ModelErrorStats::compute(&fixed, &d).mean_log2;
        assert!(e_tuned <= e_fixed + 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let rmi = RmiIndex::build(&empty);
        assert_eq!(CdfModel::<u64>::predict(&rmi, 1), 0);
        assert_eq!(CdfModel::<u64>::key_count(&rmi), 0);

        let tiny = Dataset::from_keys("t", vec![3u64, 9]);
        let rmi = RmiIndex::builder().leaf_count(512).build(&tiny);
        assert!(CdfModel::<u64>::predict(&rmi, 9) < 2);

        let dup = Dataset::from_keys("dup", vec![4u64; 100]);
        let rmi = RmiIndex::build(&dup);
        assert!(CdfModel::<u64>::predict(&rmi, 4) < 100);
    }

    #[test]
    fn leaf_count_is_capped_by_key_count() {
        let d = Dataset::from_keys("small", (0u64..10).collect::<Vec<_>>());
        let rmi = RmiIndex::builder().leaf_count(1_000_000).build(&d);
        assert!(rmi.leaf_count() <= 10);
    }
}
