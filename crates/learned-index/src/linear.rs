//! Straight-line CDF models: min/max interpolation (IM) and least squares.
//!
//! The paper deliberately pairs its correction layer with the *dumbest
//! possible* model — `IM`, a two-parameter interpolation between the minimum
//! and maximum key (§4.1) — to show that the Shift-Table layer, not the
//! model, can carry the burden of learning the distribution. The
//! least-squares [`LinearModel`] is included as the natural slightly-smarter
//! alternative and is used as the RMI leaf model.

use crate::model::CdfModel;
use sosd_data::dataset::Dataset;
use sosd_data::key::Key;

/// "Interpolation as a Model" (IM): predicts
/// `(x - min) / (max - min) · (N - 1)`, i.e. a straight line through the
/// first and last key. Two parameters, never needs training data beyond the
/// min and max, and always monotone.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationModel {
    min: f64,
    /// Precomputed slope `(n - 1) / (max - min)`.
    slope: f64,
    n: usize,
}

impl InterpolationModel {
    /// Build from a dataset.
    pub fn build<K: Key>(dataset: &Dataset<K>) -> Self {
        Self::from_sorted_keys(dataset.as_slice())
    }

    /// Build from a sorted key slice.
    pub fn from_sorted_keys<K: Key>(keys: &[K]) -> Self {
        let n = keys.len();
        if n < 2 {
            return Self {
                min: 0.0,
                slope: 0.0,
                n,
            };
        }
        let min = keys[0].to_f64();
        let max = keys[n - 1].to_f64();
        let span = max - min;
        let slope = if span > 0.0 {
            (n - 1) as f64 / span
        } else {
            0.0
        };
        Self { min, slope, n }
    }

    /// The slope of the fitted line in records per key unit.
    #[inline]
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl<K: Key> CdfModel<K> for InterpolationModel {
    #[inline]
    fn predict(&self, key: K) -> usize {
        if self.n == 0 {
            return 0;
        }
        let p = (key.to_f64() - self.min) * self.slope;
        // Negative predictions (key below min) clamp to 0.
        let p = if p > 0.0 { p } else { 0.0 };
        (p as usize).min(self.n - 1)
    }

    fn key_count(&self) -> usize {
        self.n
    }

    fn size_bytes(&self) -> usize {
        // min + slope (the record count is metadata every index carries).
        2 * std::mem::size_of::<f64>()
    }

    fn is_monotonic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "IM"
    }
}

/// Least-squares straight line mapping keys to positions.
///
/// Fitted with the standard closed-form simple-linear-regression estimator
/// computed in one pass. Always monotone because key–position pairs are
/// positively correlated for sorted data (slope ≥ 0).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    intercept: f64,
    slope: f64,
    n: usize,
}

impl LinearModel {
    /// Fit over a dataset.
    pub fn build<K: Key>(dataset: &Dataset<K>) -> Self {
        Self::from_sorted_keys(dataset.as_slice())
    }

    /// Fit over a sorted key slice (position `i` is the target for `keys[i]`).
    pub fn from_sorted_keys<K: Key>(keys: &[K]) -> Self {
        Self::fit(keys.iter().map(|k| k.to_f64()), keys.len())
    }

    /// Fit a line position = `intercept + slope · key` over arbitrary
    /// `(key, position)` pairs where positions are `0..count`.
    pub fn fit(keys: impl Iterator<Item = f64>, count: usize) -> Self {
        if count == 0 {
            return Self {
                intercept: 0.0,
                slope: 0.0,
                n: 0,
            };
        }
        // One-pass accumulation with the key mean subtracted afterwards;
        // keys can be ~2^62 so accumulate in f64 carefully via shifted sums.
        let mut sum_x = 0.0f64;
        let mut sum_y = 0.0f64;
        let mut sum_xx = 0.0f64;
        let mut sum_xy = 0.0f64;
        let mut m = 0usize;
        for (i, x) in keys.enumerate() {
            let y = i as f64;
            sum_x += x;
            sum_y += y;
            sum_xx += x * x;
            sum_xy += x * y;
            m += 1;
        }
        debug_assert_eq!(m, count);
        let nf = m as f64;
        let denom = nf * sum_xx - sum_x * sum_x;
        let (slope, intercept) = if denom.abs() < f64::EPSILON || m < 2 {
            (0.0, if m > 0 { (m - 1) as f64 / 2.0 } else { 0.0 })
        } else {
            let slope = (nf * sum_xy - sum_x * sum_y) / denom;
            let intercept = (sum_y - slope * sum_x) / nf;
            (slope.max(0.0), intercept)
        };
        Self {
            intercept,
            slope,
            n: count,
        }
    }

    /// Construct a model directly from its parameters. `count` is the number
    /// of records predictions are clamped to (the trained data size).
    pub fn from_parts(intercept: f64, slope: f64, count: usize) -> Self {
        Self {
            intercept,
            slope,
            n: count,
        }
    }

    /// Fitted slope (records per key unit).
    #[inline]
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept (records).
    #[inline]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Raw (unclamped) prediction as `f64`; used by RMI leaf composition.
    #[inline]
    pub fn predict_f64(&self, key: f64) -> f64 {
        self.intercept + self.slope * key
    }
}

impl<K: Key> CdfModel<K> for LinearModel {
    #[inline]
    fn predict(&self, key: K) -> usize {
        if self.n == 0 {
            return 0;
        }
        let p = self.predict_f64(key.to_f64());
        let p = if p > 0.0 { p } else { 0.0 };
        (p as usize).min(self.n - 1)
    }

    fn key_count(&self) -> usize {
        self.n
    }

    fn size_bytes(&self) -> usize {
        2 * std::mem::size_of::<f64>()
    }

    fn is_monotonic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::generators::SosdName;

    #[test]
    fn interpolation_is_exact_on_perfectly_linear_data() {
        let keys: Vec<u64> = (0..1000u64).map(|i| 100 + i * 10).collect();
        let d = Dataset::from_keys("lin", keys);
        let m = InterpolationModel::build(&d);
        for (i, &k) in d.as_slice().iter().enumerate() {
            assert_eq!(CdfModel::<u64>::predict(&m, k), i);
        }
        assert!(CdfModel::<u64>::is_monotonic(&m));
        assert_eq!(CdfModel::<u64>::size_bytes(&m), 16);
    }

    #[test]
    fn interpolation_clamps_out_of_range_queries() {
        let d = Dataset::from_keys("d", vec![100u64, 200, 300]);
        let m = InterpolationModel::build(&d);
        assert_eq!(CdfModel::<u64>::predict(&m, 0), 0);
        assert_eq!(CdfModel::<u64>::predict(&m, 10_000), 2);
    }

    #[test]
    fn interpolation_handles_degenerate_inputs() {
        let empty: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let m = InterpolationModel::build(&empty);
        assert_eq!(CdfModel::<u64>::predict(&m, 42), 0);

        let single = Dataset::from_keys("s", vec![7u64]);
        let m = InterpolationModel::build(&single);
        assert_eq!(CdfModel::<u64>::predict(&m, 7), 0);

        let constant = Dataset::from_keys("c", vec![5u64; 100]);
        let m = InterpolationModel::build(&constant);
        assert_eq!(CdfModel::<u64>::predict(&m, 5), 0);
    }

    #[test]
    fn least_squares_matches_hand_computed_fit() {
        // y = 2x exactly: keys 0, 0.5, 1.0, ... can't be integers, use y = x/2.
        let keys: Vec<u64> = (0..100u64).map(|i| i * 2).collect();
        let m = LinearModel::from_sorted_keys(&keys);
        assert!((m.slope() - 0.5).abs() < 1e-9, "slope {}", m.slope());
        assert!(m.intercept().abs() < 1e-6, "intercept {}", m.intercept());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(CdfModel::<u64>::predict(&m, k), i);
        }
    }

    #[test]
    fn least_squares_beats_interpolation_on_skewed_data() {
        // On lognormal data the min/max line is a terrible fit; the
        // least-squares line should have a lower sum of squared residuals.
        let d: Dataset<u64> = SosdName::Logn64.generate(20_000, 3);
        let im = InterpolationModel::build(&d);
        let ls = LinearModel::build(&d);
        let sse = |f: &dyn Fn(u64) -> usize| -> f64 {
            d.as_slice()
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    let e = f(k) as f64 - i as f64;
                    e * e
                })
                .sum()
        };
        let sse_im = sse(&|k| CdfModel::<u64>::predict(&im, k));
        let sse_ls = sse(&|k| CdfModel::<u64>::predict(&ls, k));
        assert!(
            sse_ls <= sse_im,
            "least squares ({sse_ls}) should not be worse than min/max ({sse_im})"
        );
    }

    #[test]
    fn linear_model_degenerate_inputs() {
        let m = LinearModel::fit(std::iter::empty(), 0);
        assert_eq!(CdfModel::<u64>::predict(&m, 10), 0);
        let m = LinearModel::from_sorted_keys(&[9u64; 50]);
        // All keys equal: prediction is the middle of the run and in range.
        let p = CdfModel::<u64>::predict(&m, 9);
        assert!(p < 50);
    }

    #[test]
    fn models_are_monotone_on_real_world_data() {
        let d: Dataset<u64> = SosdName::Face64.generate(10_000, 1);
        let im = InterpolationModel::build(&d);
        let ls = LinearModel::build(&d);
        assert!(crate::model::verify_monotonic_on::<u64, _>(
            &im,
            d.as_slice()
        ));
        assert!(crate::model::verify_monotonic_on::<u64, _>(
            &ls,
            d.as_slice()
        ));
    }
}
