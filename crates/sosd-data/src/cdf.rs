//! Empirical CDF utilities and the duplicate-key rank semantics of §3.2.
//!
//! The paper defines the "CDF" of a key `x` not as the probabilistic
//! `P(X <= x)` but as the *index of the result* of a `key >= x` lower-bound
//! lookup, i.e. `N·F(x_0) = 0` and `N·F(x_{N-1}) = N-1`. [`EmpiricalCdf`]
//! captures that mapping plus the alternative last-occurrence semantics used
//! for duplicate-heavy workloads.

use crate::dataset::Dataset;
use crate::key::Key;

/// Which record among a run of duplicates the CDF should rank a key at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateRank {
    /// Rank at the first occurrence — correct for `key <= q` predicates
    /// scanned to the right (the paper's default, §3.2).
    #[default]
    FirstOccurrence,
    /// Rank at the last occurrence — recommended when most queries use the
    /// `key >= q` operator over duplicate-heavy data (§3.2).
    LastOccurrence,
}

/// Empirical CDF of a sorted key column: maps keys to record positions.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf<'a, K: Key> {
    keys: &'a [K],
    rank: DuplicateRank,
}

impl<'a, K: Key> EmpiricalCdf<'a, K> {
    /// Build the CDF view over a dataset using first-occurrence ranking.
    pub fn new(dataset: &'a Dataset<K>) -> Self {
        Self {
            keys: dataset.as_slice(),
            rank: DuplicateRank::FirstOccurrence,
        }
    }

    /// Build the CDF view over a raw sorted slice.
    ///
    /// # Panics
    /// Debug-panics if the slice is not sorted.
    pub fn from_sorted_slice(keys: &'a [K]) -> Self {
        debug_assert!(keys.is_sorted());
        Self {
            keys,
            rank: DuplicateRank::FirstOccurrence,
        }
    }

    /// Switch the duplicate-ranking semantics.
    pub fn with_rank(mut self, rank: DuplicateRank) -> Self {
        self.rank = rank;
        self
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if there are no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The underlying sorted keys.
    #[inline]
    pub fn keys(&self) -> &[K] {
        self.keys
    }

    /// Integer rank `N·F(q)`: the record position the paper's `F` assigns to
    /// `q` under the configured duplicate semantics. For keys absent from the
    /// data this is the position the lower bound (or, for
    /// [`DuplicateRank::LastOccurrence`], the predecessor) would occupy,
    /// clamped to `[0, N-1]` for non-empty data.
    #[inline]
    pub fn rank(&self, q: K) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        match self.rank {
            DuplicateRank::FirstOccurrence => {
                let lb = self.keys.partition_point(|&k| k < q);
                lb.min(self.keys.len() - 1)
            }
            DuplicateRank::LastOccurrence => {
                let ub = self.keys.partition_point(|&k| k <= q);
                ub.saturating_sub(1)
            }
        }
    }

    /// Relative position `F(q) ∈ [0, 1)` of a key (rank divided by `N`).
    #[inline]
    pub fn relative(&self, q: K) -> f64 {
        if self.keys.is_empty() {
            0.0
        } else {
            self.rank(q) as f64 / self.keys.len() as f64
        }
    }

    /// Exact lower-bound position (may equal `N` when every key is `< q`),
    /// independent of the duplicate-ranking mode. This is the search target
    /// all indexes must return.
    #[inline]
    pub fn lower_bound(&self, q: K) -> usize {
        self.keys.partition_point(|&k| k < q)
    }

    /// Sample the CDF at `points` evenly spaced keys across the key domain,
    /// returning `(key, relative_position)` pairs. Used to export the
    /// Figure 3 macro/micro CDF plots.
    pub fn sample_curve(&self, points: usize) -> Vec<(K, f64)> {
        if self.keys.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.keys[0].to_u64();
        let hi = self.keys[self.keys.len() - 1].to_u64();
        let span = hi.saturating_sub(lo);
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let frac = i as f64 / (points.saturating_sub(1).max(1)) as f64;
            let key_u64 = lo + (span as f64 * frac) as u64;
            let key = K::from_u64_saturating(key_u64);
            out.push((key, self.relative(key)));
        }
        out
    }

    /// Sample the CDF restricted to a sub-range of positions — the "zoomed-in"
    /// mini-charts of Figure 3 that expose micro-level unpredictability.
    pub fn sample_zoom(&self, start_pos: usize, len: usize, points: usize) -> Vec<(K, f64)> {
        if self.keys.is_empty() || points == 0 || start_pos >= self.keys.len() {
            return Vec::new();
        }
        let end_pos = (start_pos + len).min(self.keys.len() - 1);
        let lo = self.keys[start_pos].to_u64();
        let hi = self.keys[end_pos].to_u64();
        let span = hi.saturating_sub(lo);
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let frac = i as f64 / (points.saturating_sub(1).max(1)) as f64;
            let key = K::from_u64_saturating(lo + (span as f64 * frac) as u64);
            out.push((key, self.relative(key)));
        }
        out
    }
}

/// Free-standing lower bound over a sorted slice (first index with `k >= q`).
#[inline]
pub fn lower_bound_slice<K: Key>(keys: &[K], q: K) -> usize {
    keys.partition_point(|&k| k < q)
}

/// Free-standing upper bound over a sorted slice (first index with `k > q`).
#[inline]
pub fn upper_bound_slice<K: Key>(keys: &[K], q: K) -> usize {
    keys.partition_point(|&k| k <= q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset<u64> {
        Dataset::from_keys("t", vec![10u64, 20, 20, 20, 30, 40, 50])
    }

    #[test]
    fn rank_first_occurrence() {
        let d = dataset();
        let cdf = EmpiricalCdf::new(&d);
        assert_eq!(cdf.rank(10), 0);
        assert_eq!(cdf.rank(20), 1);
        assert_eq!(cdf.rank(30), 4);
        assert_eq!(cdf.rank(50), 6);
        // Non-indexed keys rank at their insertion point.
        assert_eq!(cdf.rank(25), 4);
        // Larger than all keys: clamped to N-1.
        assert_eq!(cdf.rank(99), 6);
        // Smaller than all keys.
        assert_eq!(cdf.rank(1), 0);
    }

    #[test]
    fn rank_last_occurrence() {
        let d = dataset();
        let cdf = EmpiricalCdf::new(&d).with_rank(DuplicateRank::LastOccurrence);
        assert_eq!(cdf.rank(20), 3);
        assert_eq!(cdf.rank(10), 0);
        assert_eq!(cdf.rank(50), 6);
        assert_eq!(cdf.rank(25), 3, "predecessor's last occurrence");
        assert_eq!(cdf.rank(5), 0, "clamped at zero");
    }

    #[test]
    fn endpoints_match_paper_definition() {
        // N·F(x_0) = 0 and N·F(x_{N-1}) = N-1.
        let keys: Vec<u64> = (0..100).map(|i| i * 3 + 7).collect();
        let d = Dataset::from_keys("t", keys.clone());
        let cdf = EmpiricalCdf::new(&d);
        assert_eq!(cdf.rank(keys[0]), 0);
        assert_eq!(cdf.rank(keys[99]), 99);
    }

    #[test]
    fn relative_in_unit_interval() {
        let d = dataset();
        let cdf = EmpiricalCdf::new(&d);
        for q in [0u64, 10, 25, 50, 1000] {
            let r = cdf.relative(q);
            assert!((0.0..1.0).contains(&r), "relative({q}) = {r}");
        }
    }

    #[test]
    fn lower_bound_ignores_rank_mode() {
        let d = dataset();
        let first = EmpiricalCdf::new(&d);
        let last = EmpiricalCdf::new(&d).with_rank(DuplicateRank::LastOccurrence);
        for q in 0u64..60 {
            assert_eq!(first.lower_bound(q), last.lower_bound(q));
            assert_eq!(first.lower_bound(q), d.lower_bound(q));
        }
    }

    #[test]
    fn sample_curve_is_monotone() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        let d = Dataset::from_keys("sq", keys);
        let cdf = EmpiricalCdf::new(&d);
        let curve = cdf.sample_curve(64);
        assert_eq!(curve.len(), 64);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF sample must be non-decreasing");
        }
        assert!(curve[0].1 <= 0.01);
    }

    #[test]
    fn sample_zoom_stays_in_range() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 13 + (i % 7)).collect();
        let d = Dataset::from_keys("z", keys);
        let cdf = EmpiricalCdf::new(&d);
        let zoom = cdf.sample_zoom(5000, 100, 32);
        assert_eq!(zoom.len(), 32);
        for (_, rel) in &zoom {
            assert!(
                (0.49..=0.52).contains(rel),
                "zoomed CDF should stay local, got {rel}"
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let d: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let cdf = EmpiricalCdf::new(&d);
        assert_eq!(cdf.rank(5), 0);
        assert_eq!(cdf.relative(5), 0.0);
        assert!(cdf.sample_curve(8).is_empty());
        assert!(cdf.is_empty());

        let single = Dataset::from_keys("s", vec![42u64]);
        let cdf = EmpiricalCdf::new(&single);
        assert_eq!(cdf.rank(0), 0);
        assert_eq!(cdf.rank(42), 0);
        assert_eq!(cdf.rank(100), 0);
    }

    #[test]
    fn slice_helpers_agree_with_std() {
        let keys = vec![1u32, 4, 4, 4, 9, 12];
        for q in 0..15u32 {
            assert_eq!(
                lower_bound_slice(&keys, q),
                keys.partition_point(|&k| k < q)
            );
            assert_eq!(
                upper_bound_slice(&keys, q),
                keys.partition_point(|&k| k <= q)
            );
        }
    }
}
