//! Simulated Wikipedia edit-timestamp dataset (`wiki`).
//!
//! SOSD's `wiki64` contains the timestamps of edit actions on Wikipedia
//! articles: a monotone stream whose arrival rate grew over the years, with
//! strong diurnal/weekly burstiness and many *duplicate* timestamps (several
//! edits within the same second) — which is why ART is N/A for `wiki` in
//! Table 2.
//!
//! The simulation integrates a piecewise arrival-rate curve (slow early era,
//! accelerating growth, daily bursts) and emits second-granularity
//! timestamps, so duplicates arise naturally whenever the instantaneous rate
//! exceeds one edit per second.

use crate::rng::{SplitMix64, Xoshiro256};

/// Number of rate epochs (years of growth).
const EPOCHS: usize = 20;
/// Each epoch's rate multiplier relative to the previous one.
const GROWTH_PER_EPOCH: f64 = 1.35;
/// Relative amplitude of the burst modulation.
const BURST_AMPLITUDE: f64 = 0.9;

/// Generate `n` sorted Wikipedia-like edit timestamps in `[0, domain_max]`.
pub fn generate(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut seeder = SplitMix64::new(seed);
    let mut rng = Xoshiro256::new(seeder.next_u64());

    // Build the relative number of edits per epoch (exponential growth).
    let mut epoch_weights: Vec<f64> = (0..EPOCHS)
        .map(|e| GROWTH_PER_EPOCH.powi(e as i32))
        .collect();
    let total: f64 = epoch_weights.iter().sum();
    epoch_weights.iter_mut().for_each(|w| *w /= total);

    let epoch_span = (domain_max / EPOCHS as u64).max(1);
    let mut keys = Vec::with_capacity(n);

    for (e, &w) in epoch_weights.iter().enumerate() {
        let epoch_start = e as u64 * epoch_span;
        let epoch_edits = ((n as f64) * w).round() as usize;
        if epoch_edits == 0 {
            continue;
        }
        // Mean gap between edits within the epoch, in key units ("seconds").
        let mean_gap = (epoch_span as f64 / epoch_edits as f64).max(0.05);
        let mut t = epoch_start as f64;
        // Burst phase drifts slowly so consecutive windows have correlated
        // density (diurnal pattern).
        let mut phase = rng.next_f64() * std::f64::consts::TAU;
        for i in 0..epoch_edits {
            if i % 256 == 0 {
                phase += rng.next_f64() * 0.5;
            }
            // Burst modulation in [1-A, 1+A]; exponential inter-arrival.
            let modulation = 1.0 + BURST_AMPLITUDE * (phase + i as f64 * 0.01).sin();
            let u = rng.next_f64().max(1e-12);
            let gap = -u.ln() * mean_gap / modulation.max(0.05);
            t += gap;
            let key = (t.min(domain_max as f64)) as u64; // truncate to seconds
            keys.push(key.min(domain_max));
        }
    }

    keys.sort_unstable();
    while keys.len() < n {
        keys.push(rng.next_below(domain_max.saturating_add(1).max(1)));
        keys.sort_unstable();
    }
    keys.truncate(n);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sized_and_bounded() {
        let domain = 1u64 << 62;
        let keys = generate(50_000, domain, 1);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.is_sorted());
        assert!(keys.iter().all(|&k| k <= domain));
    }

    #[test]
    fn has_duplicates_like_sosd_wiki() {
        // Use a small domain so several edits land in the same "second".
        let keys = generate(200_000, 1u64 << 24, 2);
        let distinct = {
            let mut k = keys.clone();
            k.dedup();
            k.len()
        };
        assert!(
            distinct < keys.len(),
            "wiki simulation must contain duplicate timestamps"
        );
    }

    #[test]
    fn edit_rate_grows_over_time() {
        // Later halves of the time domain must contain more edits than
        // earlier halves (Wikipedia grew).
        let domain = 1u64 << 40;
        let keys = generate(100_000, domain, 3);
        let first_half = keys.iter().filter(|&&k| k < domain / 2).count();
        let second_half = keys.len() - first_half;
        assert!(
            second_half as f64 > 2.0 * first_half as f64,
            "second half {second_half} should dominate first half {first_half}"
        );
    }

    #[test]
    fn bursty_local_density() {
        // Windowed gap coefficient of variation should be clearly above a
        // memoryless (exponential) baseline of ~1 somewhere in the stream.
        let keys = generate(100_000, 1u64 << 40, 4);
        let window = 128;
        let mut max_cv = 0.0f64;
        let mut start = 0;
        while start + window < keys.len() {
            let slice = &keys[start..start + window + 1];
            let gaps: Vec<f64> = slice.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean > 0.0 {
                let var =
                    gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
                max_cv = max_cv.max(var.sqrt() / mean);
            }
            start += window;
        }
        assert!(max_cv > 1.2, "expected bursty windows, max cv {max_cv}");
    }

    #[test]
    fn deterministic_and_edge_sizes() {
        assert!(generate(0, 1000, 1).is_empty());
        assert_eq!(generate(2_000, 1 << 40, 7), generate(2_000, 1 << 40, 7));
        assert_ne!(generate(2_000, 1 << 40, 7), generate(2_000, 1 << 40, 8));
        let tiny = generate(2, 1 << 40, 9);
        assert_eq!(tiny.len(), 2);
    }
}
