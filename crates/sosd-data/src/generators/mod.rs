//! Dataset generators for the 14 SOSD dataset names used in Table 2.
//!
//! The four synthetic families (`uden`, `uspr`, `norm`, `logn`) follow the
//! SOSD definitions directly. The four real-world families (`face`, `amzn`,
//! `osmc`, `wiki`) cannot be downloaded in this environment, so they are
//! *simulated* by generators that reproduce the property the paper identifies
//! as decisive for learned-index performance: micro-level unpredictability
//! (high local variance, spikes, empty regions, duplicate bursts) layered on
//! the matching macro shape. See DESIGN.md §3 for the substitution rationale.

pub mod amazon;
pub mod facebook;
pub mod gaussian;
pub mod osm;
pub mod uniform;
pub mod wiki;

use crate::dataset::Dataset;
use crate::key::Key;

/// The eight dataset families of the SOSD benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetFamily {
    /// Dense uniformly-distributed integers (synthetic, easy).
    Uden,
    /// Sparse uniformly-distributed integers (synthetic).
    Uspr,
    /// Normal distribution (synthetic).
    Norm,
    /// Lognormal(0, 2) distribution (synthetic, heavily skewed).
    Logn,
    /// Facebook user IDs (real-world; simulated here).
    Face,
    /// Amazon book sale popularity (real-world; simulated here).
    Amzn,
    /// OpenStreetMap cell IDs (real-world; simulated here).
    Osmc,
    /// Wikipedia edit timestamps (real-world; simulated here).
    Wiki,
}

impl DatasetFamily {
    /// True for the families SOSD sources from real-world data.
    pub fn is_real_world(self) -> bool {
        matches!(self, Self::Face | Self::Amzn | Self::Osmc | Self::Wiki)
    }

    /// Generate `n` sorted keys of this family inside `[0, domain_max]`.
    pub fn generate_raw(self, n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
        match self {
            Self::Uden => uniform::generate_dense(n, domain_max, seed),
            Self::Uspr => uniform::generate_sparse(n, domain_max, seed),
            Self::Norm => gaussian::generate_normal(n, domain_max, seed),
            Self::Logn => gaussian::generate_lognormal(n, domain_max, seed),
            Self::Face => facebook::generate(n, domain_max, seed),
            Self::Amzn => amazon::generate(n, domain_max, seed),
            Self::Osmc => osm::generate(n, domain_max, seed),
            Self::Wiki => wiki::generate(n, domain_max, seed),
        }
    }

    /// Short lowercase family name (`uden`, `face`, ...).
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Uden => "uden",
            Self::Uspr => "uspr",
            Self::Norm => "norm",
            Self::Logn => "logn",
            Self::Face => "face",
            Self::Amzn => "amzn",
            Self::Osmc => "osmc",
            Self::Wiki => "wiki",
        }
    }
}

/// The 14 dataset names evaluated in Table 2 of the paper
/// (family × key width, minus combinations SOSD does not ship).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SosdName {
    Logn32,
    Norm32,
    Uden32,
    Uspr32,
    Logn64,
    Norm64,
    Uden64,
    Uspr64,
    Amzn32,
    Face32,
    Amzn64,
    Face64,
    Osmc64,
    Wiki64,
}

impl SosdName {
    /// All 14 names in the order Table 2 lists them.
    pub fn all() -> [SosdName; 14] {
        [
            Self::Logn32,
            Self::Norm32,
            Self::Uden32,
            Self::Uspr32,
            Self::Logn64,
            Self::Norm64,
            Self::Uden64,
            Self::Uspr64,
            Self::Amzn32,
            Self::Face32,
            Self::Amzn64,
            Self::Face64,
            Self::Osmc64,
            Self::Wiki64,
        ]
    }

    /// The synthetic-data subset (top half of Table 2).
    pub fn synthetic() -> [SosdName; 8] {
        [
            Self::Logn32,
            Self::Norm32,
            Self::Uden32,
            Self::Uspr32,
            Self::Logn64,
            Self::Norm64,
            Self::Uden64,
            Self::Uspr64,
        ]
    }

    /// The real-world-data subset (bottom half of Table 2).
    pub fn real_world() -> [SosdName; 6] {
        [
            Self::Amzn32,
            Self::Face32,
            Self::Amzn64,
            Self::Face64,
            Self::Osmc64,
            Self::Wiki64,
        ]
    }

    /// The dataset family this name belongs to.
    pub fn family(self) -> DatasetFamily {
        match self {
            Self::Logn32 | Self::Logn64 => DatasetFamily::Logn,
            Self::Norm32 | Self::Norm64 => DatasetFamily::Norm,
            Self::Uden32 | Self::Uden64 => DatasetFamily::Uden,
            Self::Uspr32 | Self::Uspr64 => DatasetFamily::Uspr,
            Self::Amzn32 | Self::Amzn64 => DatasetFamily::Amzn,
            Self::Face32 | Self::Face64 => DatasetFamily::Face,
            Self::Osmc64 => DatasetFamily::Osmc,
            Self::Wiki64 => DatasetFamily::Wiki,
        }
    }

    /// Key width in bits (32 or 64).
    pub fn bits(self) -> u32 {
        match self {
            Self::Logn32
            | Self::Norm32
            | Self::Uden32
            | Self::Uspr32
            | Self::Amzn32
            | Self::Face32 => 32,
            _ => 64,
        }
    }

    /// The lowercase SOSD-style dataset name (e.g. `face64`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Logn32 => "logn32",
            Self::Norm32 => "norm32",
            Self::Uden32 => "uden32",
            Self::Uspr32 => "uspr32",
            Self::Logn64 => "logn64",
            Self::Norm64 => "norm64",
            Self::Uden64 => "uden64",
            Self::Uspr64 => "uspr64",
            Self::Amzn32 => "amzn32",
            Self::Face32 => "face32",
            Self::Amzn64 => "amzn64",
            Self::Face64 => "face64",
            Self::Osmc64 => "osmc64",
            Self::Wiki64 => "wiki64",
        }
    }

    /// Parse a lowercase SOSD dataset name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|n| n.as_str() == s)
    }

    /// True for datasets sourced from real-world data in SOSD.
    pub fn is_real_world(self) -> bool {
        self.family().is_real_world()
    }

    /// The key-domain ceiling used when generating this dataset for key type
    /// `K`. 32-bit datasets use (nearly) the full 32-bit domain, 64-bit
    /// datasets use a large but `f64`-friendly portion of the 64-bit domain
    /// (the paper's face64/osmc64 keys similarly occupy only part of the
    /// space — see Figure 6's x-axis of ~1e19).
    pub fn domain_max<K: Key>(self) -> u64 {
        if K::BITS == 32 || self.bits() == 32 {
            (u32::MAX - 1) as u64
        } else {
            // Keep below 2^62 so f64 model arithmetic keeps ~9 bits of
            // intra-gap precision at 200M keys.
            1u64 << 62
        }
    }

    /// Generate the dataset with `n` keys using the given seed.
    ///
    /// The key type `K` selects the physical width. Generating a 32-bit name
    /// (e.g. `face32`) as `u64` is allowed — the values stay within the
    /// 32-bit domain, mirroring SOSD's storage of 32-bit data in wider
    /// columns when required.
    pub fn generate<K: Key>(self, n: usize, seed: u64) -> Dataset<K> {
        let domain = self.domain_max::<K>();
        // Mix the dataset name into the seed so e.g. face32 and face64 do not
        // produce byte-identical prefixes.
        let mixed_seed = seed ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let raw = self.family().generate_raw(n, domain, mixed_seed);
        let keys: Vec<K> = raw.into_iter().map(K::from_u64_saturating).collect();
        Dataset::from_keys(self.as_str(), keys)
    }
}

impl std::fmt::Display for SosdName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SosdName {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown SOSD dataset name: {s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_names_match_table2() {
        assert_eq!(SosdName::all().len(), 14);
        assert_eq!(SosdName::synthetic().len(), 8);
        assert_eq!(SosdName::real_world().len(), 6);
        let all: std::collections::HashSet<_> = SosdName::all().into_iter().collect();
        assert_eq!(all.len(), 14, "names must be unique");
    }

    #[test]
    fn name_roundtrip() {
        for name in SosdName::all() {
            assert_eq!(SosdName::parse(name.as_str()), Some(name));
            assert_eq!(name.as_str().parse::<SosdName>().unwrap(), name);
        }
        assert_eq!(SosdName::parse("bogus"), None);
    }

    #[test]
    fn bits_and_family_are_consistent_with_names() {
        for name in SosdName::all() {
            let s = name.as_str();
            assert!(s.starts_with(name.family().short_name()));
            assert!(s.ends_with(&name.bits().to_string()));
        }
    }

    #[test]
    fn every_generator_produces_sorted_data_of_requested_size() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 7);
            assert_eq!(d.len(), 5_000, "{name}");
            assert!(d.as_slice().is_sorted(), "{name}");
            assert!(
                d.max_key().unwrap() <= name.domain_max::<u64>(),
                "{name} exceeds domain"
            );
        }
    }

    #[test]
    fn thirty_two_bit_names_fit_in_u32() {
        for name in SosdName::all().into_iter().filter(|n| n.bits() == 32) {
            let d: Dataset<u32> = name.generate(2_000, 3);
            assert_eq!(d.len(), 2_000);
            // Generating the same name as u64 stays in the 32-bit domain.
            let wide: Dataset<u64> = name.generate(2_000, 3);
            assert!(wide.max_key().unwrap() <= u32::MAX as u64);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Dataset<u64> = SosdName::Osmc64.generate(3_000, 11);
        let b: Dataset<u64> = SosdName::Osmc64.generate(3_000, 11);
        let c: Dataset<u64> = SosdName::Osmc64.generate(3_000, 12);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn real_world_flag() {
        assert!(SosdName::Face64.is_real_world());
        assert!(SosdName::Wiki64.is_real_world());
        assert!(!SosdName::Uden32.is_real_world());
        assert!(!SosdName::Logn64.is_real_world());
    }
}
