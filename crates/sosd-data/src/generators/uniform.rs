//! Uniform dataset generators: `uden` (dense) and `uspr` (sparse).
//!
//! * `uden` — dense integers: `n` distinct values drawn uniformly from a
//!   domain only marginally larger than `n`. The empirical CDF is nearly a
//!   perfect line, which is why the paper's learned indexes ace it.
//! * `uspr` — sparse integers: `n` distinct values drawn uniformly from the
//!   whole key domain. Macro shape is the same line, but the gap variance is
//!   much higher, which already hurts compact models (Table 2).

use crate::rng::Xoshiro256;

/// Dense uniform integers: `n` distinct keys packed tightly into a narrow
/// range (constant stride plus at most one unit of jitter per key).
///
/// SOSD's `uden` datasets are the learned index's best case: the empirical
/// CDF is a straight line and even a two-parameter model fits it with
/// near-zero error at any scale. The generator therefore keeps the drift of
/// a min/max interpolation bounded by a constant (≈ 1 record), independent
/// of `n` — which is exactly the property Table 2 and §2.4 rely on.
pub fn generate_dense(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = Xoshiro256::new(seed);
    // Stride 2..=4 so there is room for one unit of jitter while staying
    // strictly increasing; fall back to stride 1 (consecutive) when the
    // domain is too small.
    let max_stride = (domain_max / n as u64).clamp(1, 4);
    let stride = if max_stride >= 2 {
        2 + rng.next_below(max_stride - 1)
    } else {
        1
    };
    let span = stride * n as u64;
    // Dense integers start near the bottom of the domain (as in SOSD): the
    // keys stay small enough that f64 model arithmetic keeps full precision.
    let start = if domain_max > span {
        rng.next_below((domain_max - span).min(1_000_000))
    } else {
        0
    };
    (0..n as u64)
        .map(|i| {
            let jitter = if stride >= 2 { rng.next_below(2) } else { 0 };
            (start + i * stride + jitter).min(domain_max)
        })
        .collect()
}

/// Sparse uniform integers: `n` distinct keys from `[0, domain_max]`.
pub fn generate_sparse(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = Xoshiro256::new(seed);
    let mut keys: Vec<u64> = Vec::with_capacity(n + n / 16 + 16);
    // Over-sample slightly, then dedup; top up until we have n distinct keys.
    while keys.len() < n {
        let missing = n - keys.len();
        for _ in 0..missing + missing / 8 + 8 {
            keys.push(rng.next_below(domain_max.saturating_add(1).max(1)));
        }
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(n);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_is_sorted_distinct_and_dense() {
        let keys = generate_dense(10_000, u32::MAX as u64, 1);
        assert_eq!(keys.len(), 10_000);
        assert!(keys.is_sorted());
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "must be distinct");
        // Dense: the occupied span is at most a few keys per record.
        let span = keys.last().unwrap() - keys.first().unwrap();
        assert!(span <= 5 * 10_000, "span {span} should be ≤ stride·n");
    }

    #[test]
    fn dense_handles_tiny_domain() {
        let keys = generate_dense(100, 120, 1);
        assert_eq!(keys.len(), 100);
        assert!(keys.iter().all(|&k| k <= 120));
        assert!(keys.is_sorted());
    }

    #[test]
    fn sparse_is_sorted_distinct_and_spread_out() {
        let domain = 1u64 << 62;
        let keys = generate_sparse(10_000, domain, 2);
        assert_eq!(keys.len(), 10_000);
        assert!(keys.is_sorted());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| k <= domain));
        // Sparse: spread over a substantial part of the domain.
        let span = keys.last().unwrap() - keys.first().unwrap();
        assert!(
            span > domain / 2,
            "span {span} too small for sparse uniform"
        );
    }

    #[test]
    fn zero_keys() {
        assert!(generate_dense(0, 1000, 1).is_empty());
        assert!(generate_sparse(0, 1000, 1).is_empty());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate_dense(1000, 1 << 20, 9),
            generate_dense(1000, 1 << 20, 9)
        );
        assert_eq!(
            generate_sparse(1000, 1 << 40, 9),
            generate_sparse(1000, 1 << 40, 9)
        );
        assert_ne!(
            generate_sparse(1000, 1 << 40, 9),
            generate_sparse(1000, 1 << 40, 10)
        );
    }

    #[test]
    fn dense_cdf_is_nearly_linear() {
        // The defining property of uden: a straight line through the min and
        // max key predicts every position within a couple of records,
        // independent of the dataset size.
        let keys = generate_dense(50_000, u32::MAX as u64, 3);
        let n = keys.len() as f64;
        let min = *keys.first().unwrap() as f64;
        let max = *keys.last().unwrap() as f64;
        let mut max_err: f64 = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let predicted = (k as f64 - min) / (max - min) * (n - 1.0);
            max_err = max_err.max((predicted - i as f64).abs());
        }
        assert!(max_err < 3.0, "uden drift {max_err} should be ≈ constant");
    }
}
