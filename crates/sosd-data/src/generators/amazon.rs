//! Simulated Amazon book-popularity dataset (`amzn`).
//!
//! SOSD's `amzn` keys come from Amazon sales-rank data: a heavy-tailed
//! popularity distribution whose integer encoding produces dense plateaus of
//! nearby (and duplicated) keys next to long sparse stretches. Duplicates are
//! the reason the paper marks ART as "N/A" for `amzn`.
//!
//! The simulation draws cluster centres uniformly over the domain, assigns
//! each cluster a Zipf-like share of the keys, and fills clusters with a
//! mixture of tiny gaps (plateaus) and exact duplicates; a sparse uniform
//! background fills the remainder.

use crate::rng::{SplitMix64, Xoshiro256};

/// Fraction of keys that belong to dense clusters (the rest is background).
const CLUSTERED_FRACTION: f64 = 0.85;
/// Probability that a key inside a cluster repeats its predecessor exactly.
const DUPLICATE_PROB: f64 = 0.08;
/// Zipf exponent controlling how skewed cluster sizes are.
const ZIPF_EXPONENT: f64 = 1.1;

/// Generate `n` sorted Amazon-like keys in `[0, domain_max]`.
pub fn generate(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut seeder = SplitMix64::new(seed);
    let mut rng = Xoshiro256::new(seeder.next_u64());

    let clustered = ((n as f64) * CLUSTERED_FRACTION) as usize;
    let background = n - clustered;
    let num_clusters = (n / 2000).clamp(16, 8192);

    // Zipf-like cluster weights: w_i = 1 / (i+1)^s.
    let mut weights: Vec<f64> = (0..num_clusters)
        .map(|i| 1.0 / ((i + 1) as f64).powf(ZIPF_EXPONENT))
        .collect();
    let total: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= total);

    // Random cluster centres; cluster widths shrink with popularity so the
    // most popular ranks form the densest plateaus.
    let mut centres: Vec<u64> = (0..num_clusters)
        .map(|_| rng.next_below(domain_max.saturating_add(1).max(1)))
        .collect();
    centres.sort_unstable();

    let mut keys = Vec::with_capacity(n);
    for (i, (&centre, &w)) in centres.iter().zip(weights.iter()).enumerate() {
        let count = ((clustered as f64) * w).round() as usize;
        if count == 0 {
            continue;
        }
        // Width: popular clusters are narrow relative to their population.
        let width = ((domain_max as f64 / num_clusters as f64)
            * (0.05 + 0.4 * (i as f64 / num_clusters as f64)))
            .max(count as f64 * 0.25)
            .max(1.0) as u64;
        let start = centre.saturating_sub(width / 2);
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let key = if let (Some(p), true) = (prev, rng.next_f64() < DUPLICATE_PROB) {
                p
            } else {
                start
                    .saturating_add(rng.next_below(width.max(1)))
                    .min(domain_max)
            };
            keys.push(key);
            prev = Some(key);
        }
    }

    // Sparse background keys.
    for _ in 0..background {
        keys.push(rng.next_below(domain_max.saturating_add(1).max(1)));
    }

    keys.sort_unstable();
    // Top up (rounding may have lost a few) or trim to exactly n.
    while keys.len() < n {
        keys.push(rng.next_below(domain_max.saturating_add(1).max(1)));
        keys.sort_unstable();
    }
    keys.truncate(n);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sized_and_bounded() {
        let domain = 1u64 << 62;
        let keys = generate(50_000, domain, 1);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.is_sorted());
        assert!(keys.iter().all(|&k| k <= domain));
    }

    #[test]
    fn contains_duplicates_like_sosd_amzn() {
        let keys = generate(100_000, 1u64 << 62, 2);
        let distinct = {
            let mut k = keys.clone();
            k.dedup();
            k.len()
        };
        assert!(
            distinct < keys.len(),
            "amzn simulation must contain duplicate keys (ART is N/A in Table 2)"
        );
    }

    #[test]
    fn is_clustered_not_uniform() {
        // A large share of the keys should fall into a small share of the
        // domain (heavy-tailed popularity), unlike uniform data.
        let domain = 1u64 << 62;
        let keys = generate(100_000, domain, 3);
        let bucket_count = 1000usize;
        let bucket_width = domain / bucket_count as u64;
        let mut buckets = vec![0usize; bucket_count];
        for &k in &keys {
            buckets[((k / bucket_width) as usize).min(bucket_count - 1)] += 1;
        }
        buckets.sort_unstable_by(|a, b| b.cmp(a));
        let top_5pct: usize = buckets[..bucket_count / 20].iter().sum();
        assert!(
            top_5pct as f64 > 0.3 * keys.len() as f64,
            "top 5% of buckets hold {} of {} keys — not clustered enough",
            top_5pct,
            keys.len()
        );
    }

    #[test]
    fn deterministic_and_edge_sizes() {
        assert!(generate(0, 1000, 1).is_empty());
        assert_eq!(generate(3_000, 1 << 40, 7), generate(3_000, 1 << 40, 7));
        let tiny = generate(5, 1 << 40, 7);
        assert_eq!(tiny.len(), 5);
        assert!(tiny.is_sorted());
    }
}
