//! Simulated Facebook user-ID dataset (`face`).
//!
//! The paper's Figure 3b shows that the Facebook ID data is *macro-uniform*
//! (the global CDF hugs a straight line) yet *micro-chaotic*: IDs were handed
//! out in allocation runs whose local density varies wildly, with empty
//! stretches and dense spikes. That combination is precisely what makes it
//! 6–7× slower for RMI/RadixSpline than the synthetic uniform data.
//!
//! The simulation builds the key sequence from its *gaps*: most gaps are tiny
//! (IDs inside an allocation run), some are medium (between runs) and a small
//! fraction is huge (abandoned ID ranges). On top of the gap mixture, a
//! slowly varying per-segment density multiplier models allocation eras.
//! Averaged over many segments the macro CDF stays near the diagonal, but
//! any cache-line-sized neighbourhood is unpredictable — exactly the regime
//! §2.4 identifies as hard for compact learned models.

use crate::rng::{GaussianSource, SplitMix64, Xoshiro256};

/// Number of density segments (allocation eras).
const SEGMENTS: usize = 256;
/// Sigma of the lognormal per-segment density multiplier. Kept moderate so
/// the macro shape stays near-uniform.
const SEGMENT_SIGMA: f64 = 0.45;

/// Generate `n` sorted Facebook-like IDs in `[0, domain_max]`.
pub fn generate(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut seeder = SplitMix64::new(seed);
    let mut rng = Xoshiro256::new(seeder.next_u64());
    let mut gauss = GaussianSource::new(seeder.next_u64());

    // Per-segment density multipliers (allocation eras).
    let seg_mult: Vec<f64> = (0..SEGMENTS)
        .map(|_| gauss.next_lognormal(0.0, SEGMENT_SIGMA))
        .collect();
    let per_segment = n.div_ceil(SEGMENTS).max(1);

    // Build cumulative gap sums first, then rescale into the key domain.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        let seg = (i / per_segment).min(SEGMENTS - 1);
        // Gap mixture: allocation-run interior / between runs / spikes of
        // unused ranges. The heavy tail dominates the variance.
        let u = rng.next_f64();
        let base_gap = if u < 0.60 {
            0.2 + rng.next_f64() * 0.3 // inside an allocation run
        } else if u < 0.90 {
            1.0 + rng.next_f64() * 2.0 // between nearby runs
        } else if u < 0.99 {
            15.0 + rng.next_f64() * 30.0 // skipped sub-range
        } else {
            300.0 + rng.next_f64() * 600.0 // abandoned range
        };
        acc += base_gap * seg_mult[seg];
        cumulative.push(acc);
    }

    // Rescale so the largest key lands near (but below) domain_max.
    let scale = if acc > 0.0 {
        (domain_max as f64 * 0.98) / acc
    } else {
        1.0
    };
    let mut keys: Vec<u64> = cumulative
        .into_iter()
        .map(|v| ((v * scale).clamp(0.0, domain_max as f64)) as u64)
        .collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sized_and_bounded() {
        let domain = 1u64 << 62;
        let keys = generate(50_000, domain, 1);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.is_sorted());
        assert!(keys.iter().all(|&k| k <= domain));
    }

    #[test]
    fn macro_shape_is_roughly_uniform() {
        // Quartiles of the key values should be near the quartiles of the
        // occupied domain (macro-uniform like Figure 3b).
        let domain = 1u64 << 62;
        let keys = generate(100_000, domain, 2);
        let span = (keys[keys.len() - 1] - keys[0]) as f64;
        let q1 = (keys[keys.len() / 4] - keys[0]) as f64 / span;
        let q2 = (keys[keys.len() / 2] - keys[0]) as f64 / span;
        let q3 = (keys[3 * keys.len() / 4] - keys[0]) as f64 / span;
        assert!((q1 - 0.25).abs() < 0.12, "q1={q1}");
        assert!((q2 - 0.50).abs() < 0.12, "q2={q2}");
        assert!((q3 - 0.75).abs() < 0.12, "q3={q3}");
    }

    #[test]
    fn micro_structure_has_high_local_variance() {
        // Compare windowed gap variability against plain sparse uniform data:
        // the Facebook simulation must be much spikier at cache-line scale.
        let domain = 1u64 << 62;
        let keys = generate(100_000, domain, 3);
        let cv = windowed_gap_cv(&keys, 64);
        let uniform: Vec<u64> = {
            let mut r = Xoshiro256::new(9);
            let mut v: Vec<u64> = (0..100_000).map(|_| r.next_below(domain)).collect();
            v.sort_unstable();
            v
        };
        let cv_uniform = windowed_gap_cv(&uniform, 64);
        assert!(
            cv > 1.5 * cv_uniform,
            "face cv {cv} should exceed plain uniform cv {cv_uniform}"
        );
    }

    fn windowed_gap_cv(keys: &[u64], window: usize) -> f64 {
        let mut total = 0.0;
        let mut count = 0;
        let mut start = 0;
        while start + window < keys.len() {
            let slice = &keys[start..start + window + 1];
            let gaps: Vec<f64> = slice.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            if mean > 0.0 {
                total += var.sqrt() / mean;
            }
            count += 1;
            start += window;
        }
        total / count as f64
    }

    #[test]
    fn deterministic_and_empty() {
        assert!(generate(0, 1000, 1).is_empty());
        assert_eq!(generate(5_000, 1 << 40, 7), generate(5_000, 1 << 40, 7));
        assert_ne!(generate(5_000, 1 << 40, 7), generate(5_000, 1 << 40, 8));
    }

    #[test]
    fn small_n_still_works() {
        let keys = generate(10, 1 << 32, 5);
        assert_eq!(keys.len(), 10);
        assert!(keys.is_sorted());
    }

    #[test]
    fn fits_in_32_bit_domain_when_requested() {
        let keys = generate(50_000, (u32::MAX - 1) as u64, 6);
        assert!(keys.iter().all(|&k| k < u32::MAX as u64));
    }
}
