//! Normal (`norm`) and lognormal (`logn`) dataset generators.
//!
//! Both are synthetic distributions with a *smooth* CDF: at any zoom level
//! the curve looks locally linear (Figure 3c), which is why spline-based
//! learned indexes model them almost perfectly even though `logn` is heavily
//! skewed. Sampling uses the Box–Muller transform from [`crate::rng`].

use crate::rng::GaussianSource;

/// Normal distribution scaled into `[0, domain_max]`.
///
/// Mean is placed at the centre of the domain with a standard deviation of
/// one eighth of the domain, and samples are clamped at the boundaries (the
/// clamp affects ~1e-14 of samples, preserving smoothness).
pub fn generate_normal(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut g = GaussianSource::new(seed);
    let mean = domain_max as f64 / 2.0;
    let sd = domain_max as f64 / 8.0;
    let mut keys: Vec<u64> = (0..n)
        .map(|_| {
            let v = g.next(mean, sd);
            let clamped = v.clamp(0.0, domain_max as f64);
            clamped as u64
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// Lognormal(0, 2) distribution scaled so the largest sample maps near
/// `domain_max` (mirrors SOSD's integer scaling of the heavy-tailed samples).
///
/// The scaling squeezes the dense low end of the distribution into few
/// distinct integers, so — like SOSD's `logn32` — the 32-bit variant contains
/// duplicate keys.
pub fn generate_lognormal(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut g = GaussianSource::new(seed);
    let raw: Vec<f64> = (0..n).map(|_| g.next_lognormal(0.0, 2.0)).collect();
    let max_raw = raw.iter().copied().fold(f64::MIN, f64::max);
    let scale = if max_raw > 0.0 {
        domain_max as f64 / max_raw
    } else {
        1.0
    };
    let mut keys: Vec<u64> = raw
        .into_iter()
        .map(|v| ((v * scale).clamp(0.0, domain_max as f64)) as u64)
        .collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_is_sorted_centered_and_bounded() {
        let domain = 1u64 << 40;
        let keys = generate_normal(50_000, domain, 1);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.is_sorted());
        assert!(keys.iter().all(|&k| k <= domain));
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        let center = domain as f64 / 2.0;
        assert!(
            (mean - center).abs() < center * 0.02,
            "mean {mean} should be near domain centre {center}"
        );
    }

    #[test]
    fn normal_median_close_to_mean() {
        let domain = 1u64 << 40;
        let keys = generate_normal(50_000, domain, 2);
        let median = keys[keys.len() / 2] as f64;
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!(
            (median - mean).abs() < domain as f64 * 0.01,
            "normal is symmetric"
        );
    }

    #[test]
    fn lognormal_is_sorted_skewed_and_bounded() {
        let domain = 1u64 << 40;
        let keys = generate_lognormal(50_000, domain, 3);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.is_sorted());
        assert!(keys.iter().all(|&k| k <= domain));
        // Heavily right-skewed: the median is a tiny fraction of the max.
        let median = keys[keys.len() / 2];
        assert!(
            (median as f64) < domain as f64 * 0.01,
            "lognormal median {median} should be far below the max"
        );
    }

    #[test]
    fn lognormal_32bit_scaling_creates_duplicates() {
        // Mirrors SOSD's logn32 where ART is N/A because of duplicate keys.
        let keys = generate_lognormal(200_000, (u32::MAX - 1) as u64, 4);
        let distinct = {
            let mut k = keys.clone();
            k.dedup();
            k.len()
        };
        assert!(
            distinct < keys.len(),
            "expected duplicates from the dense low end of logn32"
        );
    }

    #[test]
    fn zero_keys_and_determinism() {
        assert!(generate_normal(0, 1000, 1).is_empty());
        assert!(generate_lognormal(0, 1000, 1).is_empty());
        assert_eq!(
            generate_normal(1000, 1 << 30, 5),
            generate_normal(1000, 1 << 30, 5)
        );
        assert_eq!(
            generate_lognormal(1000, 1 << 30, 5),
            generate_lognormal(1000, 1 << 30, 5)
        );
    }
}
