//! Simulated OpenStreetMap cell-ID dataset (`osmc`).
//!
//! SOSD's `osmc64` contains cell IDs of OpenStreetMap locations: geography
//! makes the distribution multi-modal (dense cities, empty oceans) with
//! several orders of magnitude of density variation and visible "shelves" in
//! the CDF (Figure 3d). It is the dataset on which the paper demonstrates the
//! Shift-Table's error correction (Figure 6: a linear model has ~28M average
//! error; the corrected index has ~129).
//!
//! The simulation uses a hierarchical mixture: continents (few, wide) →
//! cities (many, narrow, lognormal weights) → points (Gaussian around the
//! city centre), plus a thin uniform background. This creates the same
//! nested multi-modal structure and extreme local density swings.

use crate::rng::{GaussianSource, SplitMix64, Xoshiro256};

/// Number of top-level regions ("continents").
const NUM_REGIONS: usize = 6;
/// Fraction of keys in the uniform background (ocean noise). Kept very small
/// so large parts of the domain stay empty, as on the real map.
const BACKGROUND_FRACTION: f64 = 0.003;

/// Generate `n` sorted OSM-like cell IDs in `[0, domain_max]`.
pub fn generate(n: usize, domain_max: u64, seed: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut seeder = SplitMix64::new(seed);
    let mut rng = Xoshiro256::new(seeder.next_u64());
    let mut gauss = GaussianSource::new(seeder.next_u64());

    let background = ((n as f64) * BACKGROUND_FRACTION) as usize;
    let clustered = n - background;

    // Region weights (continents): moderately unequal.
    let mut region_weights: Vec<f64> = (0..NUM_REGIONS)
        .map(|_| gauss.next_lognormal(0.0, 0.6))
        .collect();
    let total_rw: f64 = region_weights.iter().sum();
    region_weights.iter_mut().for_each(|w| *w /= total_rw);

    let region_width = domain_max / NUM_REGIONS as u64;
    let cities_per_region = (clustered / 3000).clamp(8, 2048);

    let mut keys = Vec::with_capacity(n);
    for (r, &rw) in region_weights.iter().enumerate() {
        let region_start = r as u64 * region_width;
        let region_keys = ((clustered as f64) * rw).round() as usize;
        if region_keys == 0 {
            continue;
        }
        // City weights inside the region: strongly unequal (lognormal σ=1.5).
        let mut city_weights: Vec<f64> = (0..cities_per_region)
            .map(|_| gauss.next_lognormal(0.0, 1.5))
            .collect();
        let total_cw: f64 = city_weights.iter().sum();
        city_weights.iter_mut().for_each(|w| *w /= total_cw);

        for &cw in &city_weights {
            let city_keys = ((region_keys as f64) * cw).round() as usize;
            if city_keys == 0 {
                continue;
            }
            // City centre anywhere in the region; width a small fraction of
            // the region, roughly proportional to the city's population.
            let centre = region_start + rng.next_below(region_width.max(1));
            let sigma = (region_width as f64 * 0.002).max(city_keys as f64 * 0.5);
            for _ in 0..city_keys {
                let v = gauss.next(centre as f64, sigma);
                let key = v.clamp(0.0, domain_max as f64) as u64;
                keys.push(key);
            }
        }
    }

    // Background noise.
    for _ in 0..background {
        keys.push(rng.next_below(domain_max.saturating_add(1).max(1)));
    }

    keys.sort_unstable();
    while keys.len() < n {
        keys.push(rng.next_below(domain_max.saturating_add(1).max(1)));
        keys.sort_unstable();
    }
    keys.truncate(n);
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_sized_and_bounded() {
        let domain = 1u64 << 62;
        let keys = generate(50_000, domain, 1);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.is_sorted());
        assert!(keys.iter().all(|&k| k <= domain));
    }

    #[test]
    fn is_strongly_multi_modal() {
        // Density must vary over orders of magnitude between domain buckets.
        let domain = 1u64 << 62;
        let keys = generate(100_000, domain, 2);
        let bucket_count = 500usize;
        let bucket_width = domain / bucket_count as u64;
        let mut buckets = vec![0usize; bucket_count];
        for &k in &keys {
            buckets[((k / bucket_width) as usize).min(bucket_count - 1)] += 1;
        }
        let empty = buckets.iter().filter(|&&c| c == 0).count();
        let max = *buckets.iter().max().unwrap();
        assert!(
            empty > bucket_count / 10,
            "expected many empty buckets (oceans), got {empty}"
        );
        assert!(
            max as f64 > 20.0 * (keys.len() as f64 / bucket_count as f64),
            "expected dense city buckets, max bucket {max}"
        );
    }

    #[test]
    fn linear_model_error_is_huge() {
        // The Figure 6 premise: a straight-line model on osmc has enormous
        // average error relative to the dataset size.
        let keys = generate(100_000, 1u64 << 62, 3);
        let n = keys.len() as f64;
        let min = keys[0] as f64;
        let max = *keys.last().unwrap() as f64;
        let mut sum_err = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let predicted = (k as f64 - min) / (max - min) * (n - 1.0);
            sum_err += (predicted - i as f64).abs();
        }
        let mean_err = sum_err / n;
        assert!(
            mean_err > 0.05 * n,
            "mean linear-model error {mean_err} should be a large fraction of n={n}"
        );
    }

    #[test]
    fn deterministic_and_edge_sizes() {
        assert!(generate(0, 1000, 1).is_empty());
        assert_eq!(generate(2_000, 1 << 40, 7), generate(2_000, 1 << 40, 7));
        let tiny = generate(3, 1 << 40, 9);
        assert_eq!(tiny.len(), 3);
    }
}
