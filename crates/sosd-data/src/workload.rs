//! Query workload generators.
//!
//! The SOSD benchmark (and §4 of the paper) measures lookup latency for
//! queries sampled uniformly from the *indexed keys*. This module provides
//! that workload plus three extensions used by the tests and ablations:
//! domain-uniform queries, non-indexed ("miss") queries, and hot-range
//! (skewed) queries — and, for the updatable store layer, [`MixedWorkload`]:
//! reproducible read/write traces (read-heavy, insert-heavy, and Zipfian
//! shard skew) over a dataset's key space.

use crate::dataset::Dataset;
use crate::key::Key;
use crate::rng::{SplitMix64, Xoshiro256, Zipf};

/// Which distribution the query keys are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniformly sampled existing keys (the SOSD/paper default).
    UniformKeys,
    /// Uniformly sampled values from `[min_key, max_key]`; may or may not be
    /// indexed.
    UniformDomain,
    /// Values that are guaranteed *not* to be indexed keys (gap midpoints),
    /// exercising §3.1's non-indexed-key handling.
    NonIndexed,
    /// 90% of the queries fall into a contiguous 10% slice of the key space
    /// (a simple hot-range skew).
    HotRange,
}

/// A reproducible batch of lookup queries together with their ground-truth
/// lower-bound positions.
#[derive(Debug, Clone)]
pub struct Workload<K: Key> {
    kind: WorkloadKind,
    queries: Vec<K>,
    expected: Vec<usize>,
}

impl<K: Key> Workload<K> {
    /// Queries sampled uniformly from the indexed keys (paper default).
    pub fn uniform_keys(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let n = dataset.len();
        let mut queries = Vec::with_capacity(count);
        if n > 0 {
            for _ in 0..count {
                let i = rng.next_below(n as u64) as usize;
                queries.push(dataset.key_at(i));
            }
        }
        Self::finish(WorkloadKind::UniformKeys, queries, dataset)
    }

    /// Queries sampled uniformly from the key domain `[min, max]`.
    pub fn uniform_domain(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let mut queries = Vec::with_capacity(count);
        if let (Some(min), Some(max)) = (dataset.min_key(), dataset.max_key()) {
            let (lo, hi) = (min.to_u64(), max.to_u64());
            for _ in 0..count {
                queries.push(K::from_u64_saturating(rng.next_in_range(lo, hi)));
            }
        }
        Self::finish(WorkloadKind::UniformDomain, queries, dataset)
    }

    /// Queries guaranteed to miss: midpoints of gaps between consecutive keys.
    /// Falls back to key queries when the data has no usable gap (e.g. dense
    /// consecutive integers).
    pub fn non_indexed(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let keys = dataset.as_slice();
        let mut queries = Vec::with_capacity(count);
        if keys.len() >= 2 {
            let mut attempts = 0usize;
            while queries.len() < count && attempts < count * 20 {
                attempts += 1;
                let i = rng.next_below((keys.len() - 1) as u64) as usize;
                let (a, b) = (keys[i].to_u64(), keys[i + 1].to_u64());
                if b > a + 1 {
                    let mid = a + (b - a) / 2;
                    queries.push(K::from_u64_saturating(mid));
                }
            }
        }
        // Fallback: if the dataset is perfectly dense there are no misses.
        while queries.len() < count && !keys.is_empty() {
            let i = rng.next_below(keys.len() as u64) as usize;
            queries.push(keys[i]);
        }
        Self::finish(WorkloadKind::NonIndexed, queries, dataset)
    }

    /// Skewed workload: 90% of queries from a contiguous 10% of positions.
    pub fn hot_range(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let n = dataset.len();
        let mut queries = Vec::with_capacity(count);
        if n > 0 {
            let hot_len = (n / 10).max(1);
            let hot_start = rng.next_below((n - hot_len + 1) as u64) as usize;
            for _ in 0..count {
                let i = if rng.next_f64() < 0.9 {
                    hot_start + rng.next_below(hot_len as u64) as usize
                } else {
                    rng.next_below(n as u64) as usize
                };
                queries.push(dataset.key_at(i));
            }
        }
        Self::finish(WorkloadKind::HotRange, queries, dataset)
    }

    fn finish(kind: WorkloadKind, queries: Vec<K>, dataset: &Dataset<K>) -> Self {
        let expected = queries.iter().map(|&q| dataset.lower_bound(q)).collect();
        Self {
            kind,
            queries,
            expected,
        }
    }

    /// The kind of workload.
    #[inline]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The query keys.
    #[inline]
    pub fn queries(&self) -> &[K] {
        &self.queries
    }

    /// Ground-truth lower-bound position for each query (parallel to
    /// [`Self::queries`]).
    #[inline]
    pub fn expected(&self) -> &[usize] {
        &self.expected
    }

    /// Number of queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload has no queries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterate `(query, expected_lower_bound)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, usize)> + '_ {
        self.queries
            .iter()
            .copied()
            .zip(self.expected.iter().copied())
    }
}

/// One operation of a mixed read/write trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedOp<K: Key> {
    /// Point lower-bound lookup.
    Lookup(K),
    /// Insert one occurrence of the key.
    Insert(K),
    /// Delete one occurrence of the key (a no-op when absent).
    Delete(K),
    /// Range query `lo <= key <= hi`.
    Range(K, K),
}

/// Which trace shape a [`MixedWorkload`] was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedKind {
    /// 90% lookups, 5% inserts, 3% deletes, 2% ranges — a serving cache in
    /// front of a mostly-static corpus.
    ReadHeavy,
    /// 50% inserts, 10% deletes, 35% lookups, 5% ranges — ingest-dominated.
    InsertHeavy,
    /// Read-mostly, but with keys drawn Zipfian-skewed over contiguous
    /// slices of the key space, so a range-sharded store sees a hot shard.
    ZipfShardSkew,
    /// YCSB-E-style scan-heavy mix: 95% short range scans whose start keys
    /// are Zipfian-skewed over contiguous domain slices and whose lengths
    /// are uniform in 1..=100 records (converted to a key span via the
    /// dataset's mean gap), plus 5% inserts.
    ScanHeavy,
}

/// Base hot-slice rotation of Zipf-shaped traces: thread 0 (and the
/// single-threaded generator) places the hottest rank on this slice so it
/// is not trivially the leftmost one; concurrent threads stagger from here.
const ZIPF_BASE_ROTATION: u64 = 3;

/// A reproducible mixed read/write trace over a dataset's key domain.
///
/// The trace carries operations only (no ground truth): the truth of an
/// updatable store depends on every preceding write, so consumers replay the
/// trace against the store and an oracle side by side (as the store's
/// property tests do) or just measure throughput (as the bench suite does).
#[derive(Debug, Clone)]
pub struct MixedWorkload<K: Key> {
    kind: MixedKind,
    ops: Vec<MixedOp<K>>,
}

impl<K: Key> MixedWorkload<K> {
    /// Read-heavy trace (see [`MixedKind::ReadHeavy`]).
    pub fn read_heavy(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        Self::generate(dataset, count, seed, MixedKind::ReadHeavy, None)
    }

    /// Insert-heavy trace (see [`MixedKind::InsertHeavy`]).
    pub fn insert_heavy(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        Self::generate(dataset, count, seed, MixedKind::InsertHeavy, None)
    }

    /// YCSB-E-style scan-heavy trace (see [`MixedKind::ScanHeavy`]): 95%
    /// short scans with Zipf(0.99) start keys over 16 domain slices, 5%
    /// inserts.
    pub fn scan_heavy(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        Self::generate_zipf(
            dataset,
            count,
            seed,
            MixedKind::ScanHeavy,
            Zipf::new(16, 0.99),
            ZIPF_BASE_ROTATION,
        )
    }

    /// One deterministic trace per concurrent worker thread: thread `t`'s
    /// trace is derived from an independent [`SplitMix64`]-forked sub-seed
    /// of `seed`, so a multi-threaded replay is reproducible *per thread*
    /// regardless of how the scheduler interleaves them — the property the
    /// concurrent store tests and the multi-threaded bench driver rely on.
    /// Every thread's trace has the same shape (`kind`) and `ops_per_thread`
    /// operations; Zipf-skewed traces rotate the hot slice per thread so
    /// workers contend on overlapping but not identical key ranges.
    pub fn concurrent(
        dataset: &Dataset<K>,
        threads: usize,
        ops_per_thread: usize,
        seed: u64,
        kind: MixedKind,
    ) -> Vec<Self> {
        let mut root = SplitMix64::new(seed);
        (0..threads.max(1))
            .map(|t| {
                // Each thread gets an independent sub-stream of the root
                // seed, so trace `t` never depends on how many threads run.
                let thread_seed = root.fork().next_u64();
                match kind {
                    MixedKind::ReadHeavy => Self::read_heavy(dataset, ops_per_thread, thread_seed),
                    MixedKind::InsertHeavy => {
                        Self::insert_heavy(dataset, ops_per_thread, thread_seed)
                    }
                    kind @ (MixedKind::ZipfShardSkew | MixedKind::ScanHeavy) => {
                        Self::generate_zipf(
                            dataset,
                            ops_per_thread,
                            thread_seed,
                            kind,
                            Zipf::new(16, 0.99),
                            ZIPF_BASE_ROTATION + t as u64,
                        )
                    }
                }
            })
            .collect()
    }

    /// Read-mostly trace whose keys are Zipfian-skewed (exponent `theta`,
    /// ~0.99 is the YCSB default) over `slices` contiguous slices of the key
    /// domain — the hot-shard scenario for a range-sharded store.
    pub fn zipf_shard_skew(
        dataset: &Dataset<K>,
        count: usize,
        slices: usize,
        theta: f64,
        seed: u64,
    ) -> Self {
        Self::generate_zipf(
            dataset,
            count,
            seed,
            MixedKind::ZipfShardSkew,
            Zipf::new(slices.max(1), theta),
            ZIPF_BASE_ROTATION,
        )
    }

    /// Zipf-shaped trace with an explicit hot-slice rotation (the
    /// per-thread stagger [`MixedWorkload::concurrent`] applies).
    fn generate_zipf(
        dataset: &Dataset<K>,
        count: usize,
        seed: u64,
        kind: MixedKind,
        zipf: Zipf,
        rotation: u64,
    ) -> Self {
        Self::generate(dataset, count, seed, kind, Some((zipf, rotation)))
    }

    fn generate(
        dataset: &Dataset<K>,
        count: usize,
        seed: u64,
        kind: MixedKind,
        zipf: Option<(Zipf, u64)>,
    ) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let (lo, hi) = match (dataset.min_key(), dataset.max_key()) {
            (Some(min), Some(max)) => (min.to_u64(), max.to_u64()),
            _ => (0, u64::MAX / 2),
        };
        let span = hi.saturating_sub(lo).max(1);
        // Draw a key, restricted to the Zipf-selected domain slice when the
        // trace is shard-skewed.
        let draw_key = |rng: &mut Xoshiro256| -> K {
            let (slice_lo, slice_span) = match &zipf {
                Some((z, rotation)) => {
                    let slices = z.len() as u64;
                    // The sampled rank is remapped through a rotation so the
                    // hot slice is not always the leftmost one (and
                    // concurrent traces can stagger theirs per thread).
                    // Addition is a bijection for every slice count (a
                    // multiplicative mix would collapse ranks whenever the
                    // factor shares a divisor with `slices`).
                    let rank = z.rank_of(rng.next_f64()) as u64;
                    let slice = (rank + rotation) % slices;
                    let w = (span / slices).max(1);
                    (lo + slice * w, w)
                }
                None => (lo, span),
            };
            K::from_u64_saturating(slice_lo + rng.next_below(slice_span.max(1)))
        };
        let (insert_pct, delete_pct, range_pct) = match kind {
            MixedKind::ReadHeavy => (5, 3, 2),
            MixedKind::InsertHeavy => (50, 10, 5),
            MixedKind::ZipfShardSkew => (10, 5, 5),
            // YCSB-E: 95% scans, 5% inserts, no reads or deletes.
            MixedKind::ScanHeavy => (5, 0, 95),
        };
        // Mean key distance between consecutive records, for converting a
        // record-count scan length into a key span.
        let mean_gap = (span / (dataset.len().max(1) as u64)).max(1);
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let roll = rng.next_below(100);
            let op = if roll < insert_pct {
                MixedOp::Insert(draw_key(&mut rng))
            } else if roll < insert_pct + delete_pct {
                // Bias deletes towards keys that exist (sampled from the
                // base) so they are not all no-ops.
                let k = if !dataset.is_empty() && rng.next_below(4) != 0 {
                    dataset.key_at(rng.next_below(dataset.len() as u64) as usize)
                } else {
                    draw_key(&mut rng)
                };
                MixedOp::Delete(k)
            } else if roll < insert_pct + delete_pct + range_pct {
                let a = draw_key(&mut rng);
                let scan_span = match kind {
                    // YCSB-E scan lengths: uniform 1..=100 records.
                    MixedKind::ScanHeavy => (1 + rng.next_below(100)).saturating_mul(mean_gap),
                    // Short scans: a span of ~0.1% of the domain.
                    _ => span / 1000,
                };
                let b = K::from_u64_saturating(a.to_u64().saturating_add(scan_span));
                MixedOp::Range(a.min(b), a.max(b))
            } else {
                MixedOp::Lookup(draw_key(&mut rng))
            };
            ops.push(op);
        }
        Self { kind, ops }
    }

    /// The trace shape this workload was generated from.
    #[inline]
    pub fn kind(&self) -> MixedKind {
        self.kind
    }

    /// The operations, in replay order.
    #[inline]
    pub fn ops(&self) -> &[MixedOp<K>] {
        &self.ops
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operation counts as `(lookups, inserts, deletes, ranges)`.
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0usize, 0usize, 0usize, 0usize);
        for op in &self.ops {
            match op {
                MixedOp::Lookup(_) => c.0 += 1,
                MixedOp::Insert(_) => c.1 += 1,
                MixedOp::Delete(_) => c.2 += 1,
                MixedOp::Range(_, _) => c.3 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::SosdName;

    fn dataset() -> Dataset<u64> {
        SosdName::Face64.generate(20_000, 1)
    }

    #[test]
    fn uniform_keys_only_contains_indexed_keys() {
        let d = dataset();
        let w = Workload::uniform_keys(&d, 500, 3);
        assert_eq!(w.len(), 500);
        assert_eq!(w.kind(), WorkloadKind::UniformKeys);
        for (q, pos) in w.iter() {
            assert_eq!(
                d.key_at(pos),
                q,
                "expected position must hold the key itself"
            );
        }
    }

    #[test]
    fn expected_positions_are_lower_bounds() {
        let d = dataset();
        for w in [
            Workload::uniform_keys(&d, 200, 1),
            Workload::uniform_domain(&d, 200, 2),
            Workload::non_indexed(&d, 200, 3),
            Workload::hot_range(&d, 200, 4),
        ] {
            for (q, pos) in w.iter() {
                assert_eq!(pos, d.lower_bound(q));
                if pos < d.len() {
                    assert!(d.key_at(pos) >= q);
                }
                if pos > 0 {
                    assert!(d.key_at(pos - 1) < q);
                }
            }
        }
    }

    #[test]
    fn non_indexed_queries_miss() {
        let d = dataset();
        let w = Workload::non_indexed(&d, 300, 9);
        assert_eq!(w.len(), 300);
        let missing = w
            .queries()
            .iter()
            .filter(|&&q| d.equal_range(q).is_empty())
            .count();
        assert!(
            missing as f64 > 0.9 * w.len() as f64,
            "most non-indexed queries should miss, only {missing} did"
        );
    }

    #[test]
    fn hot_range_is_skewed() {
        let d = dataset();
        let w = Workload::hot_range(&d, 2_000, 5);
        // The most popular decile of positions should receive far more than
        // 10% of the queries.
        let n = d.len();
        let mut decile_counts = [0usize; 10];
        for &pos in w.expected() {
            decile_counts[(pos * 10 / n).min(9)] += 1;
        }
        let max = *decile_counts.iter().max().unwrap();
        assert!(
            max as f64 > 0.5 * w.len() as f64,
            "hot decile only got {max} of {} queries",
            w.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dataset();
        let a = Workload::uniform_keys(&d, 100, 42);
        let b = Workload::uniform_keys(&d, 100, 42);
        let c = Workload::uniform_keys(&d, 100, 43);
        assert_eq!(a.queries(), b.queries());
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn empty_dataset_yields_empty_workload() {
        let d: Dataset<u64> = Dataset::from_keys("e", vec![]);
        assert!(Workload::uniform_keys(&d, 10, 1).is_empty());
        assert!(Workload::uniform_domain(&d, 10, 1).is_empty());
        assert!(Workload::non_indexed(&d, 10, 1).is_empty());
        assert!(Workload::hot_range(&d, 10, 1).is_empty());
    }

    #[test]
    fn mixed_workloads_have_the_advertised_shape() {
        let d = dataset();
        let read = MixedWorkload::read_heavy(&d, 10_000, 7);
        assert_eq!(read.len(), 10_000);
        assert_eq!(read.kind(), MixedKind::ReadHeavy);
        let (lookups, inserts, deletes, ranges) = read.op_counts();
        assert_eq!(lookups + inserts + deletes + ranges, 10_000);
        assert!(
            lookups > 8_500,
            "read-heavy must be ~90% lookups: {lookups}"
        );
        assert!(inserts > 100 && deletes > 100 && ranges > 50);

        let write = MixedWorkload::insert_heavy(&d, 10_000, 7);
        let (w_lookups, w_inserts, ..) = write.op_counts();
        assert!(
            w_inserts > 4_500,
            "insert-heavy must be ~50% inserts: {w_inserts}"
        );
        assert!(w_inserts > w_lookups);
    }

    #[test]
    fn scan_heavy_is_ycsb_e_shaped() {
        let d = dataset();
        let w = MixedWorkload::scan_heavy(&d, 10_000, 11);
        assert_eq!(w.kind(), MixedKind::ScanHeavy);
        let (lookups, inserts, deletes, ranges) = w.op_counts();
        assert_eq!(lookups + inserts + deletes + ranges, 10_000);
        assert!(ranges > 9_300, "scan-heavy must be ~95% scans: {ranges}");
        assert!(inserts > 300, "scan-heavy keeps ~5% inserts: {inserts}");
        assert_eq!(deletes, 0, "YCSB-E has no deletes");

        // Scan lengths: short (1..=100 records via the mean gap), varied,
        // and well-formed.
        let span = d.max_key().unwrap() - d.min_key().unwrap();
        let mean_gap = (span / d.len() as u64).max(1);
        let mut spans = Vec::new();
        for op in w.ops() {
            if let MixedOp::Range(lo, hi) = *op {
                assert!(lo <= hi);
                spans.push(hi.saturating_sub(lo));
            }
        }
        let max = *spans.iter().max().unwrap();
        assert!(
            max <= 100 * mean_gap,
            "scan spans are capped at 100 mean gaps: {max} vs {}",
            100 * mean_gap
        );
        let distinct: std::collections::HashSet<u64> = spans.iter().copied().collect();
        assert!(distinct.len() > 50, "lengths are drawn, not fixed");

        // Start keys are Zipf-skewed over 16 slices, like the shard-skew
        // trace: the hot slice gets far more than the uniform share.
        let lo_key = d.min_key().unwrap();
        let width = (span / 16).max(1);
        let mut counts = [0usize; 17];
        for op in w.ops() {
            if let MixedOp::Range(lo, _) = *op {
                counts[((lo.saturating_sub(lo_key) / width).min(16)) as usize] += 1;
            }
        }
        let hot = *counts.iter().max().unwrap();
        assert!(
            hot > 3 * spans.len() / 16,
            "scan starts must be Zipf-skewed: {counts:?}"
        );

        // Determinism and the concurrent per-thread form.
        assert_eq!(MixedWorkload::scan_heavy(&d, 500, 3).ops(), {
            let again = MixedWorkload::scan_heavy(&d, 500, 3);
            &again.ops().to_vec()[..]
        });
        let traces = MixedWorkload::concurrent(&d, 3, 400, 5, MixedKind::ScanHeavy);
        assert_eq!(traces.len(), 3);
        assert_ne!(traces[0].ops(), traces[1].ops());
        assert!(traces.iter().all(|t| t.kind() == MixedKind::ScanHeavy));
    }

    #[test]
    fn zipf_trace_concentrates_on_few_slices() {
        let d = dataset();
        let slices = 16usize;
        let w = MixedWorkload::zipf_shard_skew(&d, 20_000, slices, 0.99, 9);
        assert_eq!(w.kind(), MixedKind::ZipfShardSkew);
        let (lo, hi) = (d.min_key().unwrap(), d.max_key().unwrap());
        let span = (hi - lo).max(1);
        let width = (span / slices as u64).max(1);
        let mut counts = vec![0usize; slices + 1];
        for op in w.ops() {
            let k = match *op {
                MixedOp::Lookup(k) | MixedOp::Insert(k) | MixedOp::Range(k, _) => k,
                // Deletes are base-biased, not slice-restricted.
                MixedOp::Delete(_) => continue,
            };
            counts[(k.saturating_sub(lo) / width).min(slices as u64) as usize] += 1;
        }
        let total: usize = counts.iter().sum();
        let max = *counts.iter().max().unwrap();
        // Zipf(0.99) over 16 ranks gives the top rank ~30% of the mass —
        // roughly 5× the uniform share.
        assert!(
            max > 3 * total / slices,
            "the hot slice should far exceed the uniform share: {counts:?}"
        );
    }

    #[test]
    fn zipf_rank_rotation_reaches_every_slice() {
        // Regression: the rank → slice rotation must stay a bijection for
        // every slice count (a multiplicative remap collapsed all ranks onto
        // one slice whenever the factor divided `slices`). With theta = 0
        // every slice must receive traffic.
        let d = dataset();
        let (lo, hi) = (d.min_key().unwrap(), d.max_key().unwrap());
        let span = (hi - lo).max(1);
        for slices in [7usize, 14, 16] {
            let w = MixedWorkload::zipf_shard_skew(&d, 20_000, slices, 0.0, 9);
            let width = (span / slices as u64).max(1);
            let mut hit = vec![false; slices + 1];
            for op in w.ops() {
                let k = match *op {
                    MixedOp::Lookup(k) | MixedOp::Insert(k) | MixedOp::Range(k, _) => k,
                    MixedOp::Delete(_) => continue,
                };
                hit[(k.saturating_sub(lo) / width).min(slices as u64) as usize] = true;
            }
            let reached = hit[..slices].iter().filter(|&&h| h).count();
            assert!(
                reached == slices,
                "theta = 0 over {slices} slices must reach all of them, got {reached}"
            );
        }
    }

    #[test]
    fn concurrent_traces_are_deterministic_and_independent_per_thread() {
        let d = dataset();
        let a = MixedWorkload::concurrent(&d, 4, 300, 11, MixedKind::InsertHeavy);
        let b = MixedWorkload::concurrent(&d, 4, 300, 11, MixedKind::InsertHeavy);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ops(), y.ops(), "same seed ⇒ identical per-thread traces");
        }
        // Thread t's trace does not depend on the total thread count.
        let wide = MixedWorkload::concurrent(&d, 8, 300, 11, MixedKind::InsertHeavy);
        for (x, y) in a.iter().zip(wide.iter()) {
            assert_eq!(x.ops(), y.ops(), "prefix threads keep their streams");
        }
        // Distinct threads get distinct streams.
        assert_ne!(a[0].ops(), a[1].ops());
        // Other shapes and a different seed.
        let c = MixedWorkload::concurrent(&d, 2, 300, 12, MixedKind::ReadHeavy);
        assert_ne!(c[0].ops(), a[0].ops());
        assert_eq!(c[0].kind(), MixedKind::ReadHeavy);
        let z = MixedWorkload::concurrent(&d, 2, 300, 12, MixedKind::ZipfShardSkew);
        assert_eq!(z[1].kind(), MixedKind::ZipfShardSkew);
        assert_eq!(z[1].len(), 300);
    }

    #[test]
    fn concurrent_zipf_threads_stagger_their_hot_slices() {
        let d = dataset();
        let (lo, hi) = (d.min_key().unwrap(), d.max_key().unwrap());
        let span = (hi - lo).max(1);
        let slices = 16u64;
        let width = (span / slices).max(1);
        let traces = MixedWorkload::concurrent(&d, 3, 20_000, 5, MixedKind::ZipfShardSkew);
        let hot_slice_of = |w: &MixedWorkload<u64>| -> usize {
            let mut counts = vec![0usize; slices as usize + 1];
            for op in w.ops() {
                let k = match *op {
                    MixedOp::Lookup(k) | MixedOp::Insert(k) | MixedOp::Range(k, _) => k,
                    MixedOp::Delete(_) => continue, // base-biased, not sliced
                };
                counts[((k.saturating_sub(lo) / width).min(slices)) as usize] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .unwrap()
                .0
        };
        let hots: Vec<usize> = traces.iter().map(hot_slice_of).collect();
        assert_eq!(
            hots[1],
            (hots[0] + 1) % slices as usize,
            "thread hot slices must stagger by one: {hots:?}"
        );
        assert_eq!(
            hots[2],
            (hots[1] + 1) % slices as usize,
            "thread hot slices must stagger by one: {hots:?}"
        );
    }

    #[test]
    fn mixed_traces_are_deterministic_per_seed() {
        let d = dataset();
        let a = MixedWorkload::insert_heavy(&d, 500, 42);
        let b = MixedWorkload::insert_heavy(&d, 500, 42);
        let c = MixedWorkload::insert_heavy(&d, 500, 43);
        assert_eq!(a.ops(), b.ops());
        assert_ne!(a.ops(), c.ops());
    }

    #[test]
    fn mixed_workload_on_empty_dataset_is_usable() {
        let d: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let w = MixedWorkload::read_heavy(&d, 100, 1);
        assert_eq!(w.len(), 100);
        // No deletes can be base-biased; all ops must still be well-formed.
        for op in w.ops() {
            if let MixedOp::Range(lo, hi) = op {
                assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn dense_data_non_indexed_falls_back() {
        // Dense consecutive integers have no gaps to place misses in.
        let d = Dataset::from_keys("dense", (0u64..1000).collect::<Vec<_>>());
        let w = Workload::non_indexed(&d, 50, 1);
        assert_eq!(w.len(), 50);
    }
}
