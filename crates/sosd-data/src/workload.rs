//! Query workload generators.
//!
//! The SOSD benchmark (and §4 of the paper) measures lookup latency for
//! queries sampled uniformly from the *indexed keys*. This module provides
//! that workload plus three extensions used by the tests and ablations:
//! domain-uniform queries, non-indexed ("miss") queries, and hot-range
//! (skewed) queries.

use crate::dataset::Dataset;
use crate::key::Key;
use crate::rng::Xoshiro256;

/// Which distribution the query keys are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniformly sampled existing keys (the SOSD/paper default).
    UniformKeys,
    /// Uniformly sampled values from `[min_key, max_key]`; may or may not be
    /// indexed.
    UniformDomain,
    /// Values that are guaranteed *not* to be indexed keys (gap midpoints),
    /// exercising §3.1's non-indexed-key handling.
    NonIndexed,
    /// 90% of the queries fall into a contiguous 10% slice of the key space
    /// (a simple hot-range skew).
    HotRange,
}

/// A reproducible batch of lookup queries together with their ground-truth
/// lower-bound positions.
#[derive(Debug, Clone)]
pub struct Workload<K: Key> {
    kind: WorkloadKind,
    queries: Vec<K>,
    expected: Vec<usize>,
}

impl<K: Key> Workload<K> {
    /// Queries sampled uniformly from the indexed keys (paper default).
    pub fn uniform_keys(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let n = dataset.len();
        let mut queries = Vec::with_capacity(count);
        if n > 0 {
            for _ in 0..count {
                let i = rng.next_below(n as u64) as usize;
                queries.push(dataset.key_at(i));
            }
        }
        Self::finish(WorkloadKind::UniformKeys, queries, dataset)
    }

    /// Queries sampled uniformly from the key domain `[min, max]`.
    pub fn uniform_domain(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let mut queries = Vec::with_capacity(count);
        if let (Some(min), Some(max)) = (dataset.min_key(), dataset.max_key()) {
            let (lo, hi) = (min.to_u64(), max.to_u64());
            for _ in 0..count {
                queries.push(K::from_u64_saturating(rng.next_in_range(lo, hi)));
            }
        }
        Self::finish(WorkloadKind::UniformDomain, queries, dataset)
    }

    /// Queries guaranteed to miss: midpoints of gaps between consecutive keys.
    /// Falls back to key queries when the data has no usable gap (e.g. dense
    /// consecutive integers).
    pub fn non_indexed(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let keys = dataset.as_slice();
        let mut queries = Vec::with_capacity(count);
        if keys.len() >= 2 {
            let mut attempts = 0usize;
            while queries.len() < count && attempts < count * 20 {
                attempts += 1;
                let i = rng.next_below((keys.len() - 1) as u64) as usize;
                let (a, b) = (keys[i].to_u64(), keys[i + 1].to_u64());
                if b > a + 1 {
                    let mid = a + (b - a) / 2;
                    queries.push(K::from_u64_saturating(mid));
                }
            }
        }
        // Fallback: if the dataset is perfectly dense there are no misses.
        while queries.len() < count && !keys.is_empty() {
            let i = rng.next_below(keys.len() as u64) as usize;
            queries.push(keys[i]);
        }
        Self::finish(WorkloadKind::NonIndexed, queries, dataset)
    }

    /// Skewed workload: 90% of queries from a contiguous 10% of positions.
    pub fn hot_range(dataset: &Dataset<K>, count: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let n = dataset.len();
        let mut queries = Vec::with_capacity(count);
        if n > 0 {
            let hot_len = (n / 10).max(1);
            let hot_start = rng.next_below((n - hot_len + 1) as u64) as usize;
            for _ in 0..count {
                let i = if rng.next_f64() < 0.9 {
                    hot_start + rng.next_below(hot_len as u64) as usize
                } else {
                    rng.next_below(n as u64) as usize
                };
                queries.push(dataset.key_at(i));
            }
        }
        Self::finish(WorkloadKind::HotRange, queries, dataset)
    }

    fn finish(kind: WorkloadKind, queries: Vec<K>, dataset: &Dataset<K>) -> Self {
        let expected = queries.iter().map(|&q| dataset.lower_bound(q)).collect();
        Self {
            kind,
            queries,
            expected,
        }
    }

    /// The kind of workload.
    #[inline]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The query keys.
    #[inline]
    pub fn queries(&self) -> &[K] {
        &self.queries
    }

    /// Ground-truth lower-bound position for each query (parallel to
    /// [`Self::queries`]).
    #[inline]
    pub fn expected(&self) -> &[usize] {
        &self.expected
    }

    /// Number of queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload has no queries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterate `(query, expected_lower_bound)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (K, usize)> + '_ {
        self.queries
            .iter()
            .copied()
            .zip(self.expected.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::SosdName;

    fn dataset() -> Dataset<u64> {
        SosdName::Face64.generate(20_000, 1)
    }

    #[test]
    fn uniform_keys_only_contains_indexed_keys() {
        let d = dataset();
        let w = Workload::uniform_keys(&d, 500, 3);
        assert_eq!(w.len(), 500);
        assert_eq!(w.kind(), WorkloadKind::UniformKeys);
        for (q, pos) in w.iter() {
            assert_eq!(
                d.key_at(pos),
                q,
                "expected position must hold the key itself"
            );
        }
    }

    #[test]
    fn expected_positions_are_lower_bounds() {
        let d = dataset();
        for w in [
            Workload::uniform_keys(&d, 200, 1),
            Workload::uniform_domain(&d, 200, 2),
            Workload::non_indexed(&d, 200, 3),
            Workload::hot_range(&d, 200, 4),
        ] {
            for (q, pos) in w.iter() {
                assert_eq!(pos, d.lower_bound(q));
                if pos < d.len() {
                    assert!(d.key_at(pos) >= q);
                }
                if pos > 0 {
                    assert!(d.key_at(pos - 1) < q);
                }
            }
        }
    }

    #[test]
    fn non_indexed_queries_miss() {
        let d = dataset();
        let w = Workload::non_indexed(&d, 300, 9);
        assert_eq!(w.len(), 300);
        let missing = w
            .queries()
            .iter()
            .filter(|&&q| d.equal_range(q).is_empty())
            .count();
        assert!(
            missing as f64 > 0.9 * w.len() as f64,
            "most non-indexed queries should miss, only {missing} did"
        );
    }

    #[test]
    fn hot_range_is_skewed() {
        let d = dataset();
        let w = Workload::hot_range(&d, 2_000, 5);
        // The most popular decile of positions should receive far more than
        // 10% of the queries.
        let n = d.len();
        let mut decile_counts = [0usize; 10];
        for &pos in w.expected() {
            decile_counts[(pos * 10 / n).min(9)] += 1;
        }
        let max = *decile_counts.iter().max().unwrap();
        assert!(
            max as f64 > 0.5 * w.len() as f64,
            "hot decile only got {max} of {} queries",
            w.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dataset();
        let a = Workload::uniform_keys(&d, 100, 42);
        let b = Workload::uniform_keys(&d, 100, 42);
        let c = Workload::uniform_keys(&d, 100, 43);
        assert_eq!(a.queries(), b.queries());
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn empty_dataset_yields_empty_workload() {
        let d: Dataset<u64> = Dataset::from_keys("e", vec![]);
        assert!(Workload::uniform_keys(&d, 10, 1).is_empty());
        assert!(Workload::uniform_domain(&d, 10, 1).is_empty());
        assert!(Workload::non_indexed(&d, 10, 1).is_empty());
        assert!(Workload::hot_range(&d, 10, 1).is_empty());
    }

    #[test]
    fn dense_data_non_indexed_falls_back() {
        // Dense consecutive integers have no gaps to place misses in.
        let d = Dataset::from_keys("dense", (0u64..1000).collect::<Vec<_>>());
        let w = Workload::non_indexed(&d, 50, 1);
        assert_eq!(w.len(), 50);
    }
}
