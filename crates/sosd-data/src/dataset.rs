//! [`Dataset`]: the sorted, read-only key column every index searches over.
//!
//! The paper evaluates *clustered* range indexes: keys are physically sorted
//! and a range query `A <= key <= B` is answered by locating the lower bound
//! of `A` and scanning right. `Dataset` owns that sorted key column and
//! provides reference lower/upper-bound implementations that all indexes are
//! tested against.

use crate::key::Key;
use crate::stats::DatasetStats;

/// An immutable, sorted collection of keys (possibly containing duplicates).
///
/// Invariant: `keys` is sorted in non-decreasing order. All constructors
/// enforce this (by sorting if necessary), so downstream code may rely on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset<K: Key> {
    name: String,
    keys: Vec<K>,
}

impl<K: Key> Dataset<K> {
    /// Create a dataset from keys, sorting them if they are not sorted yet.
    pub fn from_keys(name: impl Into<String>, mut keys: Vec<K>) -> Self {
        if !keys.is_sorted() {
            keys.sort_unstable();
        }
        Self {
            name: name.into(),
            keys,
        }
    }

    /// Create a dataset from keys that are already sorted.
    ///
    /// # Panics
    /// Panics (in debug builds) if the keys are not sorted.
    pub fn from_sorted_keys(name: impl Into<String>, keys: Vec<K>) -> Self {
        debug_assert!(keys.is_sorted(), "from_sorted_keys requires sorted input");
        Self {
            name: name.into(),
            keys,
        }
    }

    /// Create a dataset from keys, sorting and removing duplicates.
    pub fn from_keys_deduped(name: impl Into<String>, mut keys: Vec<K>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        Self {
            name: name.into(),
            keys,
        }
    }

    /// Human-readable dataset name (e.g. `face64`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the dataset contains no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted key slice (the physical layout indexes search over).
    #[inline]
    pub fn as_slice(&self) -> &[K] {
        &self.keys
    }

    /// Consume the dataset and return the sorted key vector.
    pub fn into_keys(self) -> Vec<K> {
        self.keys
    }

    /// Consume the dataset and hand its sorted key column over as shared,
    /// reference-counted storage — the owned form `'static` indexes are built
    /// from. Moves the keys (no copy beyond the `Vec → Arc` transfer).
    pub fn into_shared(self) -> std::sync::Arc<[K]> {
        self.keys.into()
    }

    /// Clone the sorted key column into shared storage, keeping the dataset
    /// alive (one `O(n)` copy). Useful when several owned indexes should be
    /// built over the same generated dataset.
    pub fn to_shared(&self) -> std::sync::Arc<[K]> {
        std::sync::Arc::from(self.keys.as_slice())
    }

    /// Smallest key, if any.
    #[inline]
    pub fn min_key(&self) -> Option<K> {
        self.keys.first().copied()
    }

    /// Largest key, if any.
    #[inline]
    pub fn max_key(&self) -> Option<K> {
        self.keys.last().copied()
    }

    /// Key at position `i`.
    #[inline]
    pub fn key_at(&self, i: usize) -> K {
        self.keys[i]
    }

    /// Reference lower bound: index of the first key `>= q`, or `len()` if all
    /// keys are smaller. This is the ground truth every index is tested
    /// against and matches the paper's `F(x)` definition for `key <= q`
    /// range predicates (§3.2).
    #[inline]
    pub fn lower_bound(&self, q: K) -> usize {
        self.keys.partition_point(|&k| k < q)
    }

    /// Reference upper bound: index of the first key `> q`.
    #[inline]
    pub fn upper_bound(&self, q: K) -> usize {
        self.keys.partition_point(|&k| k <= q)
    }

    /// Index of the *last* occurrence of a key `<= q`, or `None` if every key
    /// is greater than `q`. This is the alternative CDF definition the paper
    /// recommends when the dominant query operator is `>=` over data with
    /// many duplicates (§3.2).
    #[inline]
    pub fn last_occurrence_le(&self, q: K) -> Option<usize> {
        let ub = self.upper_bound(q);
        if ub == 0 {
            None
        } else {
            Some(ub - 1)
        }
    }

    /// All positions holding exactly key `q`, as a half-open range.
    #[inline]
    pub fn equal_range(&self, q: K) -> std::ops::Range<usize> {
        self.lower_bound(q)..self.upper_bound(q)
    }

    /// Answer the full range query `lo <= key <= hi`, returning the half-open
    /// index range of qualifying records (the scan the paper omits from its
    /// timings, provided here for the range-scan example).
    #[inline]
    pub fn range_query(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        if lo > hi {
            return 0..0;
        }
        self.lower_bound(lo)..self.upper_bound(hi)
    }

    /// Number of duplicate keys (total keys minus distinct keys).
    pub fn duplicate_count(&self) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        let distinct = 1 + self.keys.windows(2).filter(|w| w[0] != w[1]).count();
        self.keys.len() - distinct
    }

    /// True if the dataset contains at least one duplicated key.
    pub fn has_duplicates(&self) -> bool {
        self.keys.windows(2).any(|w| w[0] == w[1])
    }

    /// Size of the key column in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * K::size_bytes()
    }

    /// Compute the difficulty/shape statistics for this dataset (§2.4).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(self)
    }

    /// Empirical CDF value of `q`: the relative position of its lower bound.
    /// Returns a value in `[0, 1]`.
    #[inline]
    pub fn empirical_cdf(&self, q: K) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        self.lower_bound(q) as f64 / self.keys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset<u64> {
        Dataset::from_keys("sample", vec![5, 1, 3, 3, 9, 7, 3])
    }

    #[test]
    fn from_keys_sorts() {
        let d = sample();
        assert_eq!(d.as_slice(), &[1, 3, 3, 3, 5, 7, 9]);
        assert_eq!(d.len(), 7);
        assert_eq!(d.min_key(), Some(1));
        assert_eq!(d.max_key(), Some(9));
    }

    #[test]
    fn from_keys_deduped_removes_duplicates() {
        let d = Dataset::from_keys_deduped("d", vec![5u64, 1, 3, 3, 9, 7, 3]);
        assert_eq!(d.as_slice(), &[1, 3, 5, 7, 9]);
        assert!(!d.has_duplicates());
        assert_eq!(d.duplicate_count(), 0);
    }

    #[test]
    fn lower_bound_matches_manual_scan() {
        let d = sample();
        for q in 0u64..=10 {
            let expected = d.as_slice().iter().position(|&k| k >= q).unwrap_or(d.len());
            assert_eq!(d.lower_bound(q), expected, "q={q}");
        }
    }

    #[test]
    fn upper_bound_and_equal_range() {
        let d = sample();
        assert_eq!(d.equal_range(3), 1..4);
        assert_eq!(d.equal_range(4), 4..4);
        assert_eq!(d.upper_bound(9), 7);
        assert_eq!(d.upper_bound(0), 0);
    }

    #[test]
    fn last_occurrence_le_semantics() {
        let d = sample();
        assert_eq!(d.last_occurrence_le(3), Some(3));
        assert_eq!(d.last_occurrence_le(0), None);
        assert_eq!(d.last_occurrence_le(100), Some(6));
        assert_eq!(d.last_occurrence_le(4), Some(3));
    }

    #[test]
    fn range_query_inclusive_bounds() {
        let d = sample();
        assert_eq!(d.range_query(3, 7), 1..6);
        assert_eq!(d.range_query(2, 2), 1..1);
        assert_eq!(d.range_query(8, 2), 0..0, "inverted range is empty");
        assert_eq!(d.range_query(0, 100), 0..7);
    }

    #[test]
    fn duplicate_count() {
        let d = sample();
        assert_eq!(d.duplicate_count(), 2);
        assert!(d.has_duplicates());
    }

    #[test]
    fn empty_dataset_is_safe() {
        let d: Dataset<u32> = Dataset::from_keys("empty", vec![]);
        assert!(d.is_empty());
        assert_eq!(d.lower_bound(5), 0);
        assert_eq!(d.upper_bound(5), 0);
        assert_eq!(d.last_occurrence_le(5), None);
        assert_eq!(d.duplicate_count(), 0);
        assert_eq!(d.empirical_cdf(5), 0.0);
        assert_eq!(d.min_key(), None);
    }

    #[test]
    fn empirical_cdf_endpoints() {
        let d = Dataset::from_keys("d", (0u64..100).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(d.empirical_cdf(0), 0.0);
        assert!(d.empirical_cdf(991) >= 1.0 - 1e-9);
        let mid = d.empirical_cdf(500);
        assert!((mid - 0.5).abs() < 0.02);
    }

    #[test]
    fn shared_handoff_preserves_the_sorted_column() {
        let d = sample();
        let expected = d.as_slice().to_vec();
        let shared = d.to_shared();
        assert_eq!(&shared[..], &expected[..]);
        let moved = d.into_shared();
        assert_eq!(&moved[..], &expected[..]);
    }

    #[test]
    fn size_bytes_accounts_for_key_width() {
        let d32 = Dataset::from_keys("a", vec![1u32, 2, 3]);
        let d64 = Dataset::from_keys("b", vec![1u64, 2, 3]);
        assert_eq!(d32.size_bytes(), 12);
        assert_eq!(d64.size_bytes(), 24);
    }
}
