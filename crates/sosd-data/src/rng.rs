//! Small, deterministic pseudo-random number generators used by the dataset
//! generators and workloads.
//!
//! The generators need reproducible streams that are cheap to seed and fork.
//! [`SplitMix64`] is used for seeding and simple streams; [`Xoshiro256`]
//! (xoshiro256**) is the workhorse generator. Gaussian deviates are produced
//! with the Box–Muller transform ([`GaussianSource`]) so the workspace does
//! not need an extra distribution crate.

/// SplitMix64: a tiny, high-quality 64-bit generator. Mainly used to expand a
/// single `u64` seed into the larger state of [`Xoshiro256`] and to derive
/// independent sub-seeds for parallel generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift bounded generation (no modulo bias concerns
        // matter for data generation, but it is also faster).
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Derive an independent sub-seed (e.g. for a per-segment generator).
    #[inline]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// xoshiro256**: fast general-purpose generator used for bulk data generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion, as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.next_below(span + 1)
        }
    }
}

/// A Zipfian sampler over ranks `0..n` with exponent `theta` (`theta = 0` is
/// uniform; ~0.99 is the YCSB default; larger is more skewed). Implemented by
/// inverse-CDF binary search over precomputed cumulative weights, which is
/// exact and cheap for the small `n` (shard counts, hot-set sizes) the
/// workload generators use.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for ranks `0..n` (clamped to at least 1).
    pub fn new(n: usize, theta: f64) -> Self {
        let n = n.max(1);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(acc);
        }
        let total = acc;
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there is a single rank (never: `n >= 1`), for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Map a uniform `u in [0, 1)` to a rank (rank 0 is the most popular).
    #[inline]
    pub fn rank_of(&self, u: f64) -> usize {
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// Draw a rank using `rng`.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        self.rank_of(rng.next_f64())
    }
}

/// Box–Muller Gaussian source producing standard-normal deviates in pairs.
#[derive(Debug, Clone)]
pub struct GaussianSource {
    rng: Xoshiro256,
    cached: Option<f64>,
}

impl GaussianSource {
    /// Create a Gaussian source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::new(seed),
            cached: None,
        }
    }

    /// Next standard-normal deviate (mean 0, variance 1).
    pub fn next_standard(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        loop {
            let u1 = self.rng.next_f64();
            let u2 = self.rng.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            let z0 = r * theta.cos();
            let z1 = r * theta.sin();
            self.cached = Some(z1);
            return z0;
        }
    }

    /// Next normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn next(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_standard()
    }

    /// Next lognormal deviate with underlying normal parameters `(mu, sigma)`.
    #[inline]
    pub fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_standard()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_in_range_inclusive() {
        let mut r = Xoshiro256::new(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_in_range(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi, "bounds should both be reachable");
    }

    #[test]
    fn zipf_is_skewed_and_covers_all_ranks() {
        let z = Zipf::new(10, 0.99);
        assert_eq!(z.len(), 10);
        let mut rng = Xoshiro256::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 5,
            "rank 0 must dominate: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "all ranks reachable");
        // theta = 0 degenerates to uniform.
        let u = Zipf::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[u.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 2, "uniform-ish: {counts:?}");
        // Boundary inputs clamp into range.
        assert_eq!(z.rank_of(0.0), 0);
        assert_eq!(z.rank_of(0.999_999_9), 9);
        assert_eq!(Zipf::new(0, 1.0).len(), 1);
    }

    #[test]
    fn gaussian_mean_and_variance_roughly_correct() {
        let mut g = GaussianSource::new(2024);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = g.next_standard();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut g = GaussianSource::new(5);
        let samples: Vec<f64> = (0..10_000).map(|_| g.next_lognormal(0.0, 2.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        // Lognormal(0, 2) is heavily right-skewed: mean far above median.
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SplitMix64::new(10);
        let mut child = parent.fork();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }
}
