//! SOSD-style dataset generators, query workloads and empirical-CDF utilities.
//!
//! This crate is the data substrate of the Shift-Table reproduction. It
//! provides:
//!
//! * [`Dataset`] — an immutable, sorted, in-memory key column (the physical
//!   layout every range index in the workspace searches over),
//! * [`generators`] — synthetic generators for the four synthetic SOSD
//!   distributions (`uden`, `uspr`, `norm`, `logn`) and simulated stand-ins
//!   for the four real-world SOSD datasets (`face`, `amzn`, `osmc`, `wiki`),
//! * [`workload`] — query workload generators (lookups sampled from the keys,
//!   from the whole domain, from non-indexed keys, or from hot ranges),
//! * [`cdf`] — empirical-CDF helpers implementing the paper's lower-bound
//!   semantics for duplicate keys (§3.2),
//! * [`stats`] — the "difficulty" statistics the paper uses to explain why
//!   real-world data is hard to learn (§2.4): local variance, signed drift
//!   against a straight line, duplicate structure,
//! * [`io`] — the SOSD on-disk binary format so genuine SOSD files can be
//!   dropped in instead of the synthetic stand-ins.
//!
//! # Example
//!
//! ```
//! use sosd_data::prelude::*;
//!
//! // Generate a small "Facebook-like" dataset and a query workload over it.
//! let dataset: Dataset<u64> = SosdName::Face64.generate(10_000, 42);
//! let queries = Workload::uniform_keys(&dataset, 100, 7).queries().to_vec();
//! for q in queries {
//!     let pos = dataset.lower_bound(q);
//!     assert!(pos < dataset.len());
//!     assert!(dataset.as_slice()[pos] >= q);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod dataset;
pub mod generators;
pub mod io;
pub mod key;
pub mod rng;
pub mod stats;
pub mod workload;

pub use cdf::EmpiricalCdf;
pub use dataset::Dataset;
pub use generators::SosdName;
pub use key::Key;
pub use rng::SplitMix64;
pub use stats::DatasetStats;
pub use workload::{MixedOp, MixedWorkload, Workload};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::cdf::EmpiricalCdf;
    pub use crate::dataset::Dataset;
    pub use crate::generators::{DatasetFamily, SosdName};
    pub use crate::key::Key;
    pub use crate::rng::SplitMix64;
    pub use crate::stats::DatasetStats;
    pub use crate::workload::{MixedKind, MixedOp, MixedWorkload, Workload, WorkloadKind};
}
