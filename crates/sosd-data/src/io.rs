//! The SOSD on-disk binary format.
//!
//! SOSD datasets are stored as a little-endian `u64` element count followed
//! by the keys themselves (`u32` or `u64`, little-endian). Supporting the
//! format means the genuine 200M-key SOSD files can be dropped into the
//! harness in place of the synthetic stand-ins without any code changes.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::key::Key;

/// Maximum element count accepted when reading, as a sanity guard against
/// corrupt headers (1e10 keys ≈ 80 GB, far beyond anything SOSD ships).
const MAX_REASONABLE_COUNT: u64 = 10_000_000_000;

/// Errors produced by SOSD file I/O.
#[derive(Debug)]
pub enum SosdIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header count is implausibly large or the payload is truncated.
    Corrupt(String),
}

impl std::fmt::Display for SosdIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt SOSD file: {msg}"),
        }
    }
}

impl std::error::Error for SosdIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for SosdIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Write keys in SOSD binary format (`u64` count + little-endian keys).
pub fn write_keys<K: Key, W: Write>(mut writer: W, keys: &[K]) -> Result<(), SosdIoError> {
    writer.write_all(&(keys.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for chunk in keys.chunks(1024) {
        buf.clear();
        for &k in chunk {
            match K::BITS {
                32 => buf.extend_from_slice(&(k.to_u64() as u32).to_le_bytes()),
                _ => buf.extend_from_slice(&k.to_u64().to_le_bytes()),
            }
        }
        writer.write_all(&buf)?;
    }
    writer.flush()?;
    Ok(())
}

/// Read keys in SOSD binary format.
pub fn read_keys<K: Key, R: Read>(mut reader: R) -> Result<Vec<K>, SosdIoError> {
    let mut header = [0u8; 8];
    reader.read_exact(&mut header)?;
    let count = u64::from_le_bytes(header);
    if count > MAX_REASONABLE_COUNT {
        return Err(SosdIoError::Corrupt(format!(
            "header claims {count} keys, which exceeds the sanity limit"
        )));
    }
    let count = count as usize;
    let key_bytes = K::size_bytes();
    let mut keys = Vec::with_capacity(count);
    let mut buf = vec![0u8; key_bytes * 4096];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(4096);
        let slice = &mut buf[..take * key_bytes];
        reader.read_exact(slice).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                SosdIoError::Corrupt(format!(
                    "file truncated: expected {count} keys, got {}",
                    count - remaining
                ))
            } else {
                SosdIoError::Io(e)
            }
        })?;
        for chunk in slice.chunks_exact(key_bytes) {
            let v = match key_bytes {
                4 => u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as u64,
                _ => u64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ]),
            };
            keys.push(K::from_u64_saturating(v));
        }
        remaining -= take;
    }
    Ok(keys)
}

/// Write a dataset to a file in SOSD binary format.
pub fn write_dataset_file<K: Key>(path: &Path, dataset: &Dataset<K>) -> Result<(), SosdIoError> {
    let file = File::create(path)?;
    write_keys(BufWriter::new(file), dataset.as_slice())
}

/// Read a dataset from a SOSD binary file. The dataset name is derived from
/// the file stem; keys are sorted if the file is unsorted.
pub fn read_dataset_file<K: Key>(path: &Path) -> Result<Dataset<K>, SosdIoError> {
    let file = File::open(path)?;
    let keys = read_keys(BufReader::new(file))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "sosd".to_string());
    Ok(Dataset::from_keys(name, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::SosdName;

    #[test]
    fn roundtrip_u64_in_memory() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(3_000, 1);
        let mut buf = Vec::new();
        write_keys(&mut buf, d.as_slice()).unwrap();
        assert_eq!(buf.len(), 8 + 8 * d.len());
        let back: Vec<u64> = read_keys(&buf[..]).unwrap();
        assert_eq!(back, d.as_slice());
    }

    #[test]
    fn roundtrip_u32_in_memory() {
        let d: Dataset<u32> = SosdName::Face32.generate(3_000, 2);
        let mut buf = Vec::new();
        write_keys(&mut buf, d.as_slice()).unwrap();
        assert_eq!(buf.len(), 8 + 4 * d.len());
        let back: Vec<u32> = read_keys(&buf[..]).unwrap();
        assert_eq!(back, d.as_slice());
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("sosd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uden64_small");
        let d: Dataset<u64> = SosdName::Uden64.generate(1_000, 3);
        write_dataset_file(&path, &d).unwrap();
        let back: Dataset<u64> = read_dataset_file(&path).unwrap();
        assert_eq!(back.as_slice(), d.as_slice());
        assert_eq!(back.name(), "uden64_small");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_detected() {
        let d: Dataset<u64> = SosdName::Uden64.generate(100, 4);
        let mut buf = Vec::new();
        write_keys(&mut buf, d.as_slice()).unwrap();
        buf.truncate(buf.len() - 17);
        let err = read_keys::<u64, _>(&buf[..]).unwrap_err();
        assert!(matches!(err, SosdIoError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn implausible_header_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_keys::<u64, _>(&buf[..]).unwrap_err();
        assert!(matches!(err, SosdIoError::Corrupt(_)));
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let mut buf = Vec::new();
        write_keys::<u64, _>(&mut buf, &[]).unwrap();
        let back: Vec<u64> = read_keys(&buf[..]).unwrap();
        assert!(back.is_empty());
    }
}
