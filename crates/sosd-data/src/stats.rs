//! Dataset "difficulty" statistics (§2.4 of the paper).
//!
//! The paper argues that what makes real-world data hard for learned indexes
//! is not skew but *unpredictability*: the micro-level fluctuations of the
//! empirical CDF. [`DatasetStats`] quantifies that with the gap (first
//! difference) statistics, a windowed local-variance measure, the signed
//! drift of the data against a straight-line (min/max interpolation) model,
//! and duplicate structure. These numbers are reported by the harness next to
//! each dataset so the qualitative claims of §2.4/§3.6 can be checked.

use crate::dataset::Dataset;
use crate::key::Key;

/// Summary statistics describing how difficult a dataset is to model.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of keys.
    pub n: usize,
    /// Smallest key (as u64), 0 for empty data.
    pub min_key: u64,
    /// Largest key (as u64), 0 for empty data.
    pub max_key: u64,
    /// Number of duplicated key slots (n minus distinct count).
    pub duplicates: usize,
    /// Size of the largest run of equal keys.
    pub max_duplicate_run: usize,
    /// Mean gap between consecutive keys.
    pub mean_gap: f64,
    /// Standard deviation of gaps between consecutive keys.
    pub gap_std_dev: f64,
    /// Coefficient of variation of the gaps (std-dev / mean); the paper's
    /// "local variance" notion — 0 for perfectly regular (dense uniform)
    /// data, large for spiky real-world data.
    pub gap_cv: f64,
    /// Mean of the windowed local coefficient of variation (window = 64
    /// gaps). Captures micro-level fluctuation even when the global gap
    /// distribution looks tame.
    pub local_gap_cv: f64,
    /// Mean absolute drift (in records) of the true position away from the
    /// straight-line interpolation between min and max key — exactly the
    /// error a "dummy" IM model makes (§3.6, Figure 6).
    pub mean_abs_drift: f64,
    /// Maximum absolute drift in records.
    pub max_abs_drift: u64,
}

impl DatasetStats {
    /// Compute the statistics for a dataset.
    pub fn compute<K: Key>(dataset: &Dataset<K>) -> Self {
        let keys = dataset.as_slice();
        let n = keys.len();
        if n == 0 {
            return Self::empty();
        }
        let min_key = keys[0].to_u64();
        let max_key = keys[n - 1].to_u64();

        // Duplicate structure.
        let mut duplicates = 0usize;
        let mut max_run = 1usize;
        let mut run = 1usize;
        for w in keys.windows(2) {
            if w[0] == w[1] {
                duplicates += 1;
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }

        // Gap statistics.
        let (mean_gap, gap_std_dev) = gap_moments(keys);
        let gap_cv = if mean_gap > 0.0 {
            gap_std_dev / mean_gap
        } else {
            0.0
        };
        let local_gap_cv = local_gap_cv(keys, 64);

        // Drift against straight-line interpolation.
        let (mean_abs_drift, max_abs_drift) = drift_against_line(keys);

        Self {
            n,
            min_key,
            max_key,
            duplicates,
            max_duplicate_run: if n == 0 { 0 } else { max_run },
            mean_gap,
            gap_std_dev,
            gap_cv,
            local_gap_cv,
            mean_abs_drift,
            max_abs_drift,
        }
    }

    fn empty() -> Self {
        Self {
            n: 0,
            min_key: 0,
            max_key: 0,
            duplicates: 0,
            max_duplicate_run: 0,
            mean_gap: 0.0,
            gap_std_dev: 0.0,
            gap_cv: 0.0,
            local_gap_cv: 0.0,
            mean_abs_drift: 0.0,
            max_abs_drift: 0,
        }
    }

    /// A single scalar "difficulty" score used to sanity-check that the
    /// simulated real-world datasets are harder than the synthetic ones:
    /// the mean absolute drift normalised by the dataset size.
    pub fn normalized_drift(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean_abs_drift / self.n as f64
        }
    }
}

/// Mean and standard deviation of consecutive-key gaps.
fn gap_moments<K: Key>(keys: &[K]) -> (f64, f64) {
    if keys.len() < 2 {
        return (0.0, 0.0);
    }
    let m = (keys.len() - 1) as f64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for w in keys.windows(2) {
        let gap = (w[1].to_u64() - w[0].to_u64()) as f64;
        sum += gap;
        sum_sq += gap * gap;
    }
    let mean = sum / m;
    let var = (sum_sq / m - mean * mean).max(0.0);
    (mean, var.sqrt())
}

/// Mean of per-window gap coefficient of variation.
fn local_gap_cv<K: Key>(keys: &[K], window: usize) -> f64 {
    if keys.len() < window + 1 {
        let (mean, sd) = gap_moments(keys);
        return if mean > 0.0 { sd / mean } else { 0.0 };
    }
    let mut total = 0.0;
    let mut count = 0usize;
    let mut start = 0usize;
    while start + window < keys.len() {
        let slice = &keys[start..start + window + 1];
        let (mean, sd) = gap_moments(slice);
        if mean > 0.0 {
            total += sd / mean;
        }
        count += 1;
        start += window;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Mean and max absolute difference between each key's true position and the
/// position predicted by straight-line interpolation between min and max.
fn drift_against_line<K: Key>(keys: &[K]) -> (f64, u64) {
    let n = keys.len();
    if n < 2 {
        return (0.0, 0);
    }
    let min = keys[0].to_f64();
    let max = keys[n - 1].to_f64();
    let span = max - min;
    if span <= 0.0 {
        // All keys equal: the line predicts position 0 for every key.
        let mean = (0..n).map(|i| i as f64).sum::<f64>() / n as f64;
        return (mean, (n - 1) as u64);
    }
    let mut sum_abs = 0.0;
    let mut max_abs = 0u64;
    for (i, k) in keys.iter().enumerate() {
        let predicted = ((k.to_f64() - min) / span) * (n - 1) as f64;
        let drift = i as f64 - predicted;
        sum_abs += drift.abs();
        max_abs = max_abs.max(drift.abs().round() as u64);
    }
    (sum_abs / n as f64, max_abs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::SosdName;

    #[test]
    fn perfectly_linear_data_has_zero_drift() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i * 7).collect();
        let d = Dataset::from_keys("lin", keys);
        let s = d.stats();
        assert_eq!(s.n, 1000);
        assert!(s.mean_abs_drift < 1e-6, "drift {}", s.mean_abs_drift);
        assert_eq!(s.max_abs_drift, 0);
        assert!(s.gap_cv < 1e-9);
        assert_eq!(s.duplicates, 0);
    }

    #[test]
    fn duplicates_are_counted() {
        let d = Dataset::from_keys("dup", vec![1u64, 1, 1, 2, 3, 3]);
        let s = d.stats();
        assert_eq!(s.duplicates, 3);
        assert_eq!(s.max_duplicate_run, 3);
    }

    #[test]
    fn empty_and_single_key_are_safe() {
        let e: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let s = e.stats();
        assert_eq!(s.n, 0);
        assert_eq!(s.normalized_drift(), 0.0);

        let one = Dataset::from_keys("one", vec![5u64]);
        let s = one.stats();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean_abs_drift, 0.0);
    }

    #[test]
    fn all_equal_keys() {
        let d = Dataset::from_keys("eq", vec![9u64; 64]);
        let s = d.stats();
        assert_eq!(s.duplicates, 63);
        assert_eq!(s.max_duplicate_run, 64);
        assert!(
            s.mean_abs_drift > 0.0,
            "a flat line cannot place 64 equal keys"
        );
    }

    #[test]
    fn real_world_like_data_is_harder_than_uniform_dense() {
        let n = 50_000;
        let uden: Dataset<u64> = SosdName::Uden64.generate(n, 1);
        let face: Dataset<u64> = SosdName::Face64.generate(n, 1);
        let osmc: Dataset<u64> = SosdName::Osmc64.generate(n, 1);
        let s_uden = uden.stats();
        let s_face = face.stats();
        let s_osmc = osmc.stats();
        // The paper's central observation: face/osmc have far more micro-level
        // drift than dense uniform data, even though face is macro-uniform.
        assert!(
            s_face.normalized_drift() > 4.0 * s_uden.normalized_drift().max(1e-9),
            "face drift {} should exceed uden drift {}",
            s_face.normalized_drift(),
            s_uden.normalized_drift()
        );
        assert!(
            s_osmc.normalized_drift() > 4.0 * s_uden.normalized_drift().max(1e-9),
            "osmc drift {} should exceed uden drift {}",
            s_osmc.normalized_drift(),
            s_uden.normalized_drift()
        );
    }

    #[test]
    fn gap_cv_detects_irregular_spacing() {
        let regular: Vec<u64> = (0..10_000u64).map(|i| i * 100).collect();
        let mut irregular = Vec::with_capacity(10_000);
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc += if i % 97 == 0 { 50_000 } else { 3 };
            irregular.push(acc);
        }
        let r = Dataset::from_keys("r", regular).stats();
        let ir = Dataset::from_keys("ir", irregular).stats();
        assert!(ir.gap_cv > 10.0 * r.gap_cv.max(1e-12));
        assert!(ir.local_gap_cv > r.local_gap_cv);
    }
}
