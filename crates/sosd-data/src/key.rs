//! The [`Key`] abstraction over the unsigned integer key types used by SOSD.
//!
//! The SOSD benchmark (and the Shift-Table paper) evaluates datasets of 32-bit
//! and 64-bit unsigned integer keys. Every index in this workspace is generic
//! over [`Key`] so both widths share one implementation while keeping the
//! memory-footprint difference that the paper's 32-vs-64-bit rows reflect.

use std::fmt::{Debug, Display};
use std::hash::Hash;

/// An unsigned integer key type usable by every index in the workspace.
///
/// The trait exposes the handful of conversions the learned models need:
/// a widening conversion to `u64` (for exact integer arithmetic) and to `f64`
/// (for CDF model fitting / interpolation).
pub trait Key: Copy + Ord + Eq + Hash + Debug + Display + Send + Sync + Default + 'static {
    /// Number of value bits in the key type (32 or 64).
    const BITS: u32;
    /// Smallest representable key.
    const MIN_KEY: Self;
    /// Largest representable key.
    const MAX_KEY: Self;

    /// Widen to `u64` (lossless).
    fn to_u64(self) -> u64;

    /// Narrow from `u64`, saturating at the type's maximum.
    fn from_u64_saturating(v: u64) -> Self;

    /// Convert to `f64` for model arithmetic. Precision loss above 2^53 is
    /// acceptable for CDF *prediction* (the prediction is corrected anyway).
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_u64() as f64
    }

    /// Size of one key in bytes on the physical layout.
    #[inline]
    fn size_bytes() -> usize {
        (Self::BITS / 8) as usize
    }

    /// Midpoint between two keys without overflow, used by search routines.
    #[inline]
    fn midpoint(self, other: Self) -> Self {
        let (a, b) = (self.to_u64(), other.to_u64());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Self::from_u64_saturating(lo + (hi - lo) / 2)
    }

    /// Checked distance `self - other` as `u64`, `None` if `other > self`.
    #[inline]
    fn distance_from(self, other: Self) -> Option<u64> {
        self.to_u64().checked_sub(other.to_u64())
    }

    /// The smallest key strictly greater than `self`, or `None` for the
    /// maximum key. Lets range queries locate their end with a second
    /// lower-bound probe: the upper bound of `q` is the lower bound of
    /// `q.checked_next()`.
    #[inline]
    fn checked_next(self) -> Option<Self> {
        if self == Self::MAX_KEY {
            None
        } else {
            Some(Self::from_u64_saturating(self.to_u64() + 1))
        }
    }
}

impl Key for u32 {
    const BITS: u32 = 32;
    const MIN_KEY: Self = u32::MIN;
    const MAX_KEY: Self = u32::MAX;

    #[inline]
    fn to_u64(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_u64_saturating(v: u64) -> Self {
        if v > u32::MAX as u64 {
            u32::MAX
        } else {
            v as u32
        }
    }
}

impl Key for u64 {
    const BITS: u32 = 64;
    const MIN_KEY: Self = u64::MIN;
    const MAX_KEY: Self = u64::MAX;

    #[inline]
    fn to_u64(self) -> u64 {
        self
    }

    #[inline]
    fn from_u64_saturating(v: u64) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_and_saturation() {
        assert_eq!(u32::from_u64_saturating(17), 17u32);
        assert_eq!(u32::from_u64_saturating(u64::MAX), u32::MAX);
        assert_eq!(42u32.to_u64(), 42u64);
        assert_eq!(u32::BITS, 32);
        assert_eq!(u32::size_bytes(), 4);
    }

    #[test]
    fn u64_roundtrip() {
        assert_eq!(u64::from_u64_saturating(u64::MAX), u64::MAX);
        assert_eq!(u64::size_bytes(), 8);
    }

    #[test]
    fn midpoint_no_overflow() {
        assert_eq!(u64::MAX.midpoint(u64::MAX - 2), u64::MAX - 1);
        assert_eq!(0u32.midpoint(10), 5);
        assert_eq!(10u32.midpoint(0), 5);
        assert_eq!(7u64.midpoint(7), 7);
    }

    #[test]
    fn distance_from() {
        assert_eq!(10u64.distance_from(3), Some(7));
        assert_eq!(3u64.distance_from(10), None);
        assert_eq!(5u32.distance_from(5), Some(0));
    }

    #[test]
    fn checked_next_is_the_successor() {
        assert_eq!(41u64.checked_next(), Some(42));
        assert_eq!(u64::MAX.checked_next(), None);
        assert_eq!(u32::MAX.checked_next(), None);
        assert_eq!((u32::MAX - 1).checked_next(), Some(u32::MAX));
        assert_eq!(0u32.checked_next(), Some(1));
    }

    #[test]
    fn to_f64_small_values_exact() {
        assert_eq!(123_456u64.to_f64(), 123_456.0);
        assert_eq!(u32::MAX.to_f64(), u32::MAX as f64);
    }
}
