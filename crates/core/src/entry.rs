//! Shift-Table entry representation and the narrow/wide storage encodings.
//!
//! One entry per possible model prediction: the signed drift `Δ` and the
//! local-search window length `C`. The paper observes (§3.9) that the entry
//! width can follow the model's maximum error — if every drift fits in 16
//! bits, a `(i16, u16)` entry halves the layer's footprint. The storage enum
//! below picks the narrow encoding automatically when it is lossless.

/// A single correction entry: the drift of the first key of the partition and
/// the length of the local-search window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShiftEntry {
    /// Signed drift `Δ_k`: how many records ahead (+) or behind (−) the
    /// partition's first key is relative to the prediction.
    pub delta: i64,
    /// Window length `C_k`: how many records the local search must cover.
    pub count: u64,
}

impl ShiftEntry {
    /// Create an entry.
    #[inline]
    pub fn new(delta: i64, count: u64) -> Self {
        Self { delta, count }
    }
}

/// Packed storage for the entry array, chosen at build time.
#[derive(Debug, Clone)]
pub(crate) enum EntryStorage {
    /// 4-byte entries: `(i16 delta, u16 count)` — used when every value fits.
    Narrow(Vec<(i16, u16)>),
    /// 12-byte entries: `(i64 delta, u32 count)`.
    Wide(Vec<(i64, u32)>),
}

impl EntryStorage {
    /// Pack a vector of entries, choosing the narrowest lossless encoding.
    pub fn pack(entries: &[ShiftEntry]) -> Self {
        let narrow_ok = entries.iter().all(|e| {
            e.delta >= i16::MIN as i64 && e.delta <= i16::MAX as i64 && e.count <= u16::MAX as u64
        });
        if narrow_ok {
            Self::Narrow(
                entries
                    .iter()
                    .map(|e| (e.delta as i16, e.count as u16))
                    .collect(),
            )
        } else {
            debug_assert!(
                entries.iter().all(|e| e.count <= u32::MAX as u64),
                "window lengths beyond u32 are not supported"
            );
            Self::Wide(entries.iter().map(|e| (e.delta, e.count as u32)).collect())
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len(),
            Self::Wide(v) => v.len(),
        }
    }

    /// True if there are no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch an entry. One array access — this is the "single memory lookup"
    /// the paper's layer costs.
    #[inline]
    pub fn get(&self, i: usize) -> ShiftEntry {
        match self {
            Self::Narrow(v) => {
                let (d, c) = v[i];
                ShiftEntry::new(d as i64, c as u64)
            }
            Self::Wide(v) => {
                let (d, c) = v[i];
                ShiftEntry::new(d, c as u64)
            }
        }
    }

    /// Size of the packed array in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len() * std::mem::size_of::<(i16, u16)>(),
            Self::Wide(v) => v.len() * std::mem::size_of::<(i64, u32)>(),
        }
    }

    /// True if the narrow encoding was selected.
    #[inline]
    pub fn is_narrow(&self) -> bool {
        matches!(self, Self::Narrow(_))
    }
}

/// Packed storage for midpoint-only (`Δ̄`) tables.
#[derive(Debug, Clone)]
pub(crate) enum MidpointStorage {
    /// 2-byte entries.
    Narrow(Vec<i16>),
    /// 8-byte entries.
    Wide(Vec<i64>),
}

impl MidpointStorage {
    /// Pack midpoint drifts, choosing the narrowest lossless encoding.
    pub fn pack(deltas: &[i64]) -> Self {
        let narrow_ok = deltas
            .iter()
            .all(|&d| d >= i16::MIN as i64 && d <= i16::MAX as i64);
        if narrow_ok {
            Self::Narrow(deltas.iter().map(|&d| d as i16).collect())
        } else {
            Self::Wide(deltas.to_vec())
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len(),
            Self::Wide(v) => v.len(),
        }
    }

    /// Fetch an entry.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        match self {
            Self::Narrow(v) => v[i] as i64,
            Self::Wide(v) => v[i],
        }
    }

    /// Size of the packed array in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len() * 2,
            Self::Wide(v) => v.len() * 8,
        }
    }

    /// True if the narrow encoding was selected.
    #[inline]
    pub fn is_narrow(&self) -> bool {
        matches!(self, Self::Narrow(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_encoding_is_chosen_when_lossless() {
        let entries = vec![
            ShiftEntry::new(-41, 2),
            ShiftEntry::new(14, 1),
            ShiftEntry::new(0, 65_535),
        ];
        let packed = EntryStorage::pack(&entries);
        assert!(packed.is_narrow());
        assert_eq!(packed.size_bytes(), 3 * 4);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(packed.get(i), *e);
        }
    }

    #[test]
    fn wide_encoding_is_chosen_when_values_overflow_narrow() {
        let entries = vec![ShiftEntry::new(-28_000_000, 3), ShiftEntry::new(5, 200_000)];
        let packed = EntryStorage::pack(&entries);
        assert!(!packed.is_narrow());
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(packed.get(i), *e);
        }
        assert_eq!(packed.size_bytes(), 2 * std::mem::size_of::<(i64, u32)>());
    }

    #[test]
    fn boundary_values_roundtrip() {
        let entries = vec![
            ShiftEntry::new(i16::MAX as i64, u16::MAX as u64),
            ShiftEntry::new(i16::MIN as i64, 0),
        ];
        let packed = EntryStorage::pack(&entries);
        assert!(packed.is_narrow());
        assert_eq!(packed.get(0), entries[0]);
        assert_eq!(packed.get(1), entries[1]);

        let just_over = vec![ShiftEntry::new(i16::MAX as i64 + 1, 1)];
        assert!(!EntryStorage::pack(&just_over).is_narrow());
    }

    #[test]
    fn midpoint_storage_roundtrips() {
        let small = vec![-3i64, 0, 12, 32_000];
        let packed = MidpointStorage::pack(&small);
        assert!(packed.is_narrow());
        assert_eq!(packed.size_bytes(), 8);
        for (i, &d) in small.iter().enumerate() {
            assert_eq!(packed.get(i), d);
        }

        let big = vec![1i64, -40_000_000];
        let packed = MidpointStorage::pack(&big);
        assert!(!packed.is_narrow());
        assert_eq!(packed.get(1), -40_000_000);
        assert_eq!(packed.len(), 2);
    }

    #[test]
    fn empty_storage() {
        let packed = EntryStorage::pack(&[]);
        assert!(packed.is_empty());
        assert_eq!(packed.size_bytes(), 0);
    }
}
