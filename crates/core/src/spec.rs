//! Runtime index composition: `IndexSpec` strings resolved to owned,
//! dynamically-dispatched range indexes.
//!
//! An [`IndexSpec`] pairs a CDF-model spec with a correction-layer spec,
//! using the grammar
//!
//! ```text
//! <model>[+<layer>]
//! model := im | linear | cubic | rmi:<leafs>[:linear|:cubic] | rs:<max_error> | pgm:<epsilon>
//! layer := none | r1 | s<X> | auto          (default: r1)
//! ```
//!
//! so `"rmi:256+r1"` is a 256-leaf RMI corrected by a full-resolution
//! Shift-Table and `"im+s10"` is the dummy interpolation model with a
//! midpoint layer holding one entry per 10 records. [`IndexSpec::build`]
//! trains the model, builds the layer and returns the finished index as a
//! [`DynRangeIndex`] (`Box<dyn RangeIndex<K>>`) over shared `Arc<[K]>`
//! storage — `'static + Send + Sync`, selectable from a config file at run
//! time.
//!
//! ## Persistence contract
//!
//! The `Display` form of an [`IndexSpec`] is its **canonical serialized
//! form**: `IndexSpec::parse(spec.to_string())` always round-trips to an
//! equal value, for every model and layer family. Durable systems persist
//! that string and rebuild on load (the `shift-store` crate stores it in
//! its checkpoint manifests and *retrains* the model over the recovered
//! keys), so changes here must never break parsing of previously displayed
//! specs — the round-trip property test below is that contract's guard.
//!
//! ```
//! use shift_table::spec::IndexSpec;
//! use algo_index::RangeIndex;
//!
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i * i / 64).collect();
//! let spec = IndexSpec::parse("rmi:64+r1").unwrap();
//! let index = spec.build(keys.clone()).unwrap();
//! for (i, &k) in keys.iter().enumerate().step_by(500) {
//!     let _ = i;
//!     assert_eq!(index.lower_bound(k), keys.partition_point(|&x| x < k));
//! }
//! ```

use crate::config::ShiftTableConfig;
use crate::error::BuildError;
use crate::index::{CorrectedIndex, CorrectedIndexBuilder};
use algo_index::search::DynRangeIndex;
use learned_index::model::CdfModel;
use learned_index::spec::{ModelSpec, SpecParseError};
use sosd_data::key::Key;
use std::sync::Arc;

/// A corrected index whose model was chosen at run time: the concrete type
/// behind every index [`IndexSpec::build`] produces.
pub type DynCorrectedIndex<K> = CorrectedIndex<K, Box<dyn CdfModel<K>>, Arc<[K]>>;

/// Which correction layer an [`IndexSpec`] attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerSpec {
    /// No correction layer (plain learned index).
    None,
    /// Full-resolution `<Δ, C>` range layer (the paper's R-1).
    Range,
    /// Midpoint layer with one entry per `X` records (the paper's S-X).
    Midpoint {
        /// Records per layer entry (the `X` in S-X).
        records_per_entry: usize,
    },
    /// Let the §3.9 tuning rule decide whether the range layer pays off.
    Auto,
}

impl LayerSpec {
    /// Parse a layer token: `none | r1 | s<X> | auto`.
    pub fn parse(s: &str) -> Result<Self, SpecParseError> {
        let s = s.trim();
        match s {
            "" => Err(SpecParseError::Empty),
            "none" => Ok(Self::None),
            "r1" => Ok(Self::Range),
            "auto" => Ok(Self::Auto),
            _ => {
                if let Some(x) = s.strip_prefix('s') {
                    let records_per_entry: usize =
                        x.parse().map_err(|_| SpecParseError::InvalidParameter {
                            spec: s.to_string(),
                            reason: "s<X> requires a positive integer X",
                        })?;
                    if records_per_entry == 0 {
                        return Err(SpecParseError::InvalidParameter {
                            spec: s.to_string(),
                            reason: "s<X> requires X >= 1",
                        });
                    }
                    Ok(Self::Midpoint { records_per_entry })
                } else {
                    Err(SpecParseError::UnknownLayer(s.to_string()))
                }
            }
        }
    }

    /// One spec per layer family (with a small midpoint factor) — for
    /// exhaustively exercising the spec machinery in tests.
    pub fn all_families() -> [LayerSpec; 4] {
        [
            Self::None,
            Self::Range,
            Self::Midpoint {
                records_per_entry: 10,
            },
            Self::Auto,
        ]
    }
}

impl std::fmt::Display for LayerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::None => write!(f, "none"),
            Self::Range => write!(f, "r1"),
            Self::Midpoint { records_per_entry } => write!(f, "s{records_per_entry}"),
            Self::Auto => write!(f, "auto"),
        }
    }
}

/// A complete runtime index descriptor: model plus correction layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    /// Which CDF model to train.
    pub model: ModelSpec,
    /// Which correction layer to attach.
    pub layer: LayerSpec,
}

impl IndexSpec {
    /// Compose a spec from its parts.
    pub fn new(model: ModelSpec, layer: LayerSpec) -> Self {
        Self { model, layer }
    }

    /// Parse `"<model>[+<layer>]"`; the layer defaults to `r1` (the paper's
    /// recommended configuration, §3.9) when omitted.
    pub fn parse(s: &str) -> Result<Self, SpecParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecParseError::Empty);
        }
        match s.split_once('+') {
            Some((model, layer)) => Ok(Self {
                model: ModelSpec::parse(model)?,
                layer: LayerSpec::parse(layer)?,
            }),
            None => Ok(Self {
                model: ModelSpec::parse(s)?,
                layer: LayerSpec::Range,
            }),
        }
    }

    /// Train the model and build the layer over shared key storage, returning
    /// the concrete [`DynCorrectedIndex`] (when the corrected-index-specific
    /// API — error reporting, layer toggling — is still needed).
    ///
    /// # Errors
    /// [`BuildError::UnsortedKeys`] if the keys are not sorted.
    pub fn build_corrected<K: Key>(
        &self,
        keys: impl Into<Arc<[K]>>,
    ) -> Result<DynCorrectedIndex<K>, BuildError> {
        self.build_corrected_with(keys, ShiftTableConfig::default(), 1)
    }

    /// [`IndexSpec::build_corrected`] with an explicit query-path
    /// configuration and builder thread count.
    pub fn build_corrected_with<K: Key>(
        &self,
        keys: impl Into<Arc<[K]>>,
        config: ShiftTableConfig,
        threads: usize,
    ) -> Result<DynCorrectedIndex<K>, BuildError> {
        let keys: Arc<[K]> = keys.into();
        // Validate once, before training: models fitted to unsorted data
        // would waste work, and the builder skips its own scan below.
        if let Some(position) = crate::error::first_unsorted(keys.as_ref()) {
            return Err(BuildError::UnsortedKeys { position });
        }
        Ok(self.build_corrected_prevalidated_with(keys, config, threads))
    }

    /// [`IndexSpec::build_corrected_with`] for callers that *guarantee* the
    /// key column is already sorted — a rebuild merging sorted inputs, or a
    /// shard cut from a column validated as a whole — skipping the O(n)
    /// sortedness scan. Feeding unsorted keys violates the contract and
    /// produces a silently wrong index; debug builds still assert the
    /// invariant.
    pub fn build_corrected_prevalidated_with<K: Key>(
        &self,
        keys: impl Into<Arc<[K]>>,
        config: ShiftTableConfig,
        threads: usize,
    ) -> DynCorrectedIndex<K> {
        let keys: Arc<[K]> = keys.into();
        debug_assert!(
            crate::error::first_unsorted(keys.as_ref()).is_none(),
            "prevalidated build requires sorted keys"
        );
        let model = self.model.build(keys.as_ref());
        let builder: CorrectedIndexBuilder<K, Box<dyn CdfModel<K>>, Arc<[K]>> =
            CorrectedIndex::builder(keys, model);
        let builder = match self.layer {
            LayerSpec::None => builder.without_correction(),
            LayerSpec::Range => builder.with_range_table(),
            LayerSpec::Midpoint { records_per_entry } => {
                builder.with_compact_table(records_per_entry)
            }
            LayerSpec::Auto => builder.with_auto_tuning(),
        };
        builder
            .config(config)
            .build_threads(threads)
            .build_prevalidated()
    }

    /// Train the model and build the layer over shared key storage, returning
    /// the finished index as an owned trait object.
    ///
    /// # Errors
    /// [`BuildError::UnsortedKeys`] if the keys are not sorted.
    pub fn build<K: Key>(&self, keys: impl Into<Arc<[K]>>) -> Result<DynRangeIndex<K>, BuildError> {
        Ok(Box::new(self.build_corrected(keys)?))
    }

    /// [`IndexSpec::build`] for callers that *guarantee* the key column is
    /// already sorted, skipping the O(n) sortedness scan and returning the
    /// boxed trait object directly — the hook the serving layer's rebuild,
    /// split and merge paths drive (their inputs are merges of sorted
    /// columns). The prevalidation contract of
    /// [`IndexSpec::build_corrected_prevalidated_with`] applies.
    pub fn build_dyn_prevalidated_with<K: Key>(
        &self,
        keys: impl Into<Arc<[K]>>,
        config: ShiftTableConfig,
        threads: usize,
    ) -> DynRangeIndex<K> {
        Box::new(self.build_corrected_prevalidated_with(keys, config, threads))
    }

    /// Every model-family × layer-family combination (with small default
    /// parameters) — the matrix the spec tests sweep.
    pub fn all_combinations() -> Vec<IndexSpec> {
        let mut out = Vec::new();
        for model in ModelSpec::all_families() {
            for layer in LayerSpec::all_families() {
                out.push(IndexSpec::new(model, layer));
            }
        }
        out
    }
}

impl std::fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{}", self.model, self.layer)
    }
}

impl std::str::FromStr for IndexSpec {
    type Err = SpecParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn parse_roundtrips_through_display() {
        for spec in IndexSpec::all_combinations() {
            let text = spec.to_string();
            assert_eq!(IndexSpec::parse(&text), Ok(spec), "{text}");
        }
        // The persistence contract (see the module docs): parameterised
        // forms — what a manifest on disk actually holds — must round-trip
        // too, including through surrounding whitespace.
        for text in [
            "rmi:512+r1",
            "rmi:64:cubic+s10",
            "rs:32+none",
            "pgm:16+auto",
            "im+s3",
        ] {
            let spec = IndexSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text, "display is canonical");
            assert_eq!(IndexSpec::parse(&format!(" {text} ")), Ok(spec));
        }
    }

    #[test]
    fn layer_defaults_to_r1() {
        let spec = IndexSpec::parse("rmi:256").unwrap();
        assert_eq!(spec.layer, LayerSpec::Range);
        assert_eq!(spec.to_string(), "rmi:256+r1");
        assert_eq!(IndexSpec::parse("rmi:256+r1").unwrap(), spec);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(matches!(
            IndexSpec::parse("im+fancy"),
            Err(SpecParseError::UnknownLayer(_))
        ));
        assert!(matches!(
            IndexSpec::parse("im+s0"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
        assert!(matches!(
            IndexSpec::parse("im+sx"),
            Err(SpecParseError::InvalidParameter { .. })
        ));
        assert!(matches!(
            IndexSpec::parse("quadtree+r1"),
            Err(SpecParseError::UnknownModel(_))
        ));
        assert_eq!(IndexSpec::parse(""), Err(SpecParseError::Empty));
        assert_eq!(IndexSpec::parse("im+"), Err(SpecParseError::Empty));
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn built_index_is_exact_and_owned() {
        fn assert_owned<T: Send + Sync + 'static>(_: &T) {}
        let d: Dataset<u64> = SosdName::Osmc64.generate(6_000, 17);
        let w = Workload::uniform_domain(&d, 300, 3);
        let shared = d.to_shared();
        let index = IndexSpec::parse("im+r1").unwrap().build(shared).unwrap();
        assert_owned(&index);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected, "q={q}");
        }
        assert_eq!(index.lower_bound_many(w.queries()), w.expected().to_vec());
    }

    #[test]
    fn build_rejects_unsorted_keys_before_training() {
        let err = IndexSpec::parse("rs:32+r1")
            .unwrap()
            .build(vec![9u64, 1, 5])
            .err()
            .unwrap();
        assert_eq!(err, BuildError::UnsortedKeys { position: 1 });
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn corrected_build_exposes_the_corrected_api() {
        let d: Dataset<u64> = SosdName::Face64.generate(6_000, 23);
        let index = IndexSpec::parse("im+r1")
            .unwrap()
            .build_corrected(d.to_shared())
            .unwrap();
        assert!(index.layer_enabled());
        assert!(index.correction_error().mean_abs < 100.0);
        assert_eq!(index.model().name(), "IM");
    }
}
