//! Process-wide batch-kernel statistics.
//!
//! The pipelined kernel ([`crate::kernel`]) is called from deep inside the
//! store's read path, far from anywhere a per-index statistics handle could
//! be threaded without touching every `IndexSpec::build` call site — so its
//! counters are a tiny process-global registry of relaxed atomics, gated by
//! an enable flag that costs one predicted branch per *block* (64 queries)
//! when off.
//!
//! Enablement is two-channel: [`set_enabled`] flips the global flag (the
//! store does this when its metrics are on), and
//! [`crate::ShiftTableConfig::kernel_stats`] opts a single index's queries
//! in regardless of the global flag (benches and tests use this for
//! deterministic control). Counters are cumulative for the process; readers
//! that need a rate or a fraction take two snapshots and difference them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static BLOCKS: AtomicU64 = AtomicU64::new(0);
static LANES: AtomicU64 = AtomicU64::new(0);
static WIDE_LANES: AtomicU64 = AtomicU64::new(0);
static WAVE_LEVELS: AtomicU64 = AtomicU64::new(0);

/// Turn the global kernel-stat collection on or off.
pub fn set_enabled(on: bool) {
    // lint: ordering(Relaxed) enable flag — readers only gate statistics, no data is published through it
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is global kernel-stat collection on?
#[inline]
pub fn enabled() -> bool {
    // lint: ordering(Relaxed) enable flag — readers only gate statistics, no data is published through it
    ENABLED.load(Ordering::Relaxed)
}

/// Record one pipelined-kernel invocation: `blocks` amortization blocks
/// covering `lanes` queries, of which `wide_lanes` resolved through the
/// wavefront search using `wave_levels` probe levels in total.
#[inline]
pub(crate) fn record(blocks: u64, lanes: u64, wide_lanes: u64, wave_levels: u64) {
    // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
    BLOCKS.fetch_add(blocks, Ordering::Relaxed);
    // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
    LANES.fetch_add(lanes, Ordering::Relaxed);
    // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
    WIDE_LANES.fetch_add(wide_lanes, Ordering::Relaxed);
    // lint: ordering(Relaxed) statistics counter — no reader synchronises through it
    WAVE_LEVELS.fetch_add(wave_levels, Ordering::Relaxed);
}

/// A point-in-time copy of the cumulative kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStatsSnapshot {
    /// Amortization blocks processed by the range-mode pipelined kernel.
    pub blocks: u64,
    /// Queries (lanes) those blocks covered.
    pub lanes: u64,
    /// Lanes whose corrected window was wide enough for the wavefront
    /// search. `wide_lanes as f64 / lanes as f64` is the wide-lane fraction.
    pub wide_lanes: u64,
    /// Total iterated-interpolation probe levels the wavefront search ran.
    /// `wave_levels as f64 / blocks-with-wide-lanes` approximates levels per
    /// block; per-lane cost is bounded by it.
    pub wave_levels: u64,
}

impl KernelStatsSnapshot {
    /// Fraction of lanes that took the wavefront path (0 when idle).
    pub fn wide_lane_fraction(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            self.wide_lanes as f64 / self.lanes as f64
        }
    }
}

/// Read the cumulative counters.
pub fn snapshot() -> KernelStatsSnapshot {
    KernelStatsSnapshot {
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        blocks: BLOCKS.load(Ordering::Relaxed),
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        lanes: LANES.load(Ordering::Relaxed),
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        wide_lanes: WIDE_LANES.load(Ordering::Relaxed),
        // lint: ordering(Relaxed) statistics readout — staleness is acceptable by contract
        wave_levels: WAVE_LEVELS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_fraction_divides() {
        // Global state: other tests may also record; assert deltas.
        let before = snapshot();
        record(2, 128, 16, 10);
        let after = snapshot();
        assert_eq!(after.blocks - before.blocks, 2);
        assert_eq!(after.lanes - before.lanes, 128);
        assert_eq!(after.wide_lanes - before.wide_lanes, 16);
        assert_eq!(after.wave_levels - before.wave_levels, 10);
        let s = KernelStatsSnapshot {
            blocks: 1,
            lanes: 100,
            wide_lanes: 25,
            wave_levels: 7,
        };
        assert_eq!(s.wide_lane_fraction(), 0.25);
        assert_eq!(KernelStatsSnapshot::default().wide_lane_fraction(), 0.0);
    }

    #[test]
    fn enable_flag_toggles() {
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(was);
    }
}
