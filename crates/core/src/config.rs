//! Configuration knobs of the Shift-Table layer and its query path.

/// Tunable thresholds used when building and querying a corrected index.
///
/// The defaults are the values the paper uses in its evaluation:
/// a local search window below 8 keys is scanned linearly instead of
/// binary-searched (§3.8), the layer is skipped when the uncorrected error is
/// already below 10 records, and it is also skipped when correction does not
/// shrink the error by at least 10× (§4.1's tuning procedure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftTableConfig {
    /// Local-search windows smaller than this are scanned linearly;
    /// larger windows use branchless binary search (Algorithm 1, line 5).
    pub linear_to_binary_threshold: usize,
    /// Do not attach the layer if the model's mean absolute error is already
    /// below this many records (§4.1: "less than a threshold (10 records)").
    pub min_error_to_enable: f64,
    /// Do not attach the layer unless it reduces the mean error by at least
    /// this factor (§4.1: "does not decrease by a factor of 10").
    pub min_improvement_factor: f64,
}

impl Default for ShiftTableConfig {
    fn default() -> Self {
        Self {
            linear_to_binary_threshold: 8,
            min_error_to_enable: 10.0,
            min_improvement_factor: 10.0,
        }
    }
}

impl ShiftTableConfig {
    /// Override the linear/binary local-search threshold.
    pub fn with_linear_to_binary_threshold(mut self, threshold: usize) -> Self {
        self.linear_to_binary_threshold = threshold.max(1);
        self
    }

    /// Override the minimum uncorrected error required to enable the layer.
    pub fn with_min_error_to_enable(mut self, records: f64) -> Self {
        self.min_error_to_enable = records.max(0.0);
        self
    }

    /// Override the minimum error-improvement factor required to enable the
    /// layer.
    pub fn with_min_improvement_factor(mut self, factor: f64) -> Self {
        self.min_improvement_factor = factor.max(1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ShiftTableConfig::default();
        assert_eq!(c.linear_to_binary_threshold, 8);
        assert_eq!(c.min_error_to_enable, 10.0);
        assert_eq!(c.min_improvement_factor, 10.0);
    }

    #[test]
    fn builders_clamp_nonsense_values() {
        let c = ShiftTableConfig::default()
            .with_linear_to_binary_threshold(0)
            .with_min_error_to_enable(-5.0)
            .with_min_improvement_factor(0.1);
        assert_eq!(c.linear_to_binary_threshold, 1);
        assert_eq!(c.min_error_to_enable, 0.0);
        assert_eq!(c.min_improvement_factor, 1.0);
    }
}
