//! Configuration knobs of the Shift-Table layer and its query path.

use crate::kernel::{DEFAULT_BATCH_BLOCK, DEFAULT_WAVE_DEPTH, MAX_BATCH_BLOCK};

/// Tunable thresholds used when building and querying a corrected index.
///
/// The defaults are the values the paper uses in its evaluation:
/// a local search window below 8 keys is scanned linearly instead of
/// binary-searched (§3.8), the layer is skipped when the uncorrected error is
/// already below 10 records, and it is also skipped when correction does not
/// shrink the error by at least 10× (§4.1's tuning procedure).
///
/// The batch-kernel knobs (`batch_block`, `wave_depth`) control the pipelined
/// [`crate::kernel`]: the defaults (64-query blocks, 8-lookup waves) are
/// tuned for one core of a commodity x86 box; see the `lookup_kernel` bench
/// sweep for how to retune them on wider machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftTableConfig {
    /// Local-search windows smaller than this are scanned linearly;
    /// larger windows use branchless binary search (Algorithm 1, line 5).
    pub linear_to_binary_threshold: usize,
    /// Do not attach the layer if the model's mean absolute error is already
    /// below this many records (§4.1: "less than a threshold (10 records)").
    pub min_error_to_enable: f64,
    /// Do not attach the layer unless it reduces the mean error by at least
    /// this factor (§4.1: "does not decrease by a factor of 10").
    pub min_improvement_factor: f64,
    /// Queries per amortization block in the batch kernel: model prediction
    /// and layer correction run as tight per-block loops whose stage state
    /// lives in stack buffers. Clamped to `1..=`[`MAX_BATCH_BLOCK`]
    /// (the stage buffers are fixed-capacity arrays). Default 64.
    pub batch_block: usize,
    /// Lookups per pipeline wave inside a block: the kernel touches the key
    /// cache lines of wave `i + 1` while it resolves the local searches of
    /// wave `i`, so the next wave's DRAM latency overlaps the current wave's
    /// compute. Clamped to `1..=batch_block` at the kernel. Default 8.
    pub wave_depth: usize,
    /// Record batch-kernel statistics (blocks, lanes, wide-lane counts,
    /// wavefront probe levels) into the process-global [`crate::stats`]
    /// registry for queries through this config, regardless of the global
    /// [`crate::stats::set_enabled`] flag. Default off: the hot path then
    /// pays one predicted branch per block and nothing else.
    pub kernel_stats: bool,
}

impl Default for ShiftTableConfig {
    fn default() -> Self {
        Self {
            linear_to_binary_threshold: 8,
            min_error_to_enable: 10.0,
            min_improvement_factor: 10.0,
            batch_block: DEFAULT_BATCH_BLOCK,
            wave_depth: DEFAULT_WAVE_DEPTH,
            kernel_stats: false,
        }
    }
}

impl ShiftTableConfig {
    /// Override the linear/binary local-search threshold.
    pub fn with_linear_to_binary_threshold(mut self, threshold: usize) -> Self {
        self.linear_to_binary_threshold = threshold.max(1);
        self
    }

    /// Override the minimum uncorrected error required to enable the layer.
    pub fn with_min_error_to_enable(mut self, records: f64) -> Self {
        self.min_error_to_enable = records.max(0.0);
        self
    }

    /// Override the minimum error-improvement factor required to enable the
    /// layer.
    pub fn with_min_improvement_factor(mut self, factor: f64) -> Self {
        self.min_improvement_factor = factor.max(1.0);
        self
    }

    /// Override the batch-kernel block size (clamped to the stage-buffer
    /// capacity [`MAX_BATCH_BLOCK`]).
    pub fn with_batch_block(mut self, block: usize) -> Self {
        self.batch_block = block.clamp(1, MAX_BATCH_BLOCK);
        self
    }

    /// Override the batch-kernel wave depth (clamped to the block size at
    /// query time; a depth of `batch_block` disables pipelining within the
    /// block, a depth of 1 interleaves touch/resolve per lookup).
    pub fn with_wave_depth(mut self, depth: usize) -> Self {
        self.wave_depth = depth.clamp(1, MAX_BATCH_BLOCK);
        self
    }

    /// Opt this config's batch-kernel queries into the process-global
    /// statistics registry ([`crate::stats`]).
    pub fn with_kernel_stats(mut self, on: bool) -> Self {
        self.kernel_stats = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ShiftTableConfig::default();
        assert_eq!(c.linear_to_binary_threshold, 8);
        assert_eq!(c.min_error_to_enable, 10.0);
        assert_eq!(c.min_improvement_factor, 10.0);
        // Kernel knobs keep the historical stage-block size of 64.
        assert_eq!(c.batch_block, 64);
        assert_eq!(c.wave_depth, 8);
    }

    #[test]
    fn builders_clamp_nonsense_values() {
        let c = ShiftTableConfig::default()
            .with_linear_to_binary_threshold(0)
            .with_min_error_to_enable(-5.0)
            .with_min_improvement_factor(0.1)
            .with_batch_block(0)
            .with_wave_depth(0);
        assert_eq!(c.linear_to_binary_threshold, 1);
        assert_eq!(c.min_error_to_enable, 0.0);
        assert_eq!(c.min_improvement_factor, 1.0);
        assert_eq!(c.batch_block, 1);
        assert_eq!(c.wave_depth, 1);

        let c = ShiftTableConfig::default()
            .with_batch_block(100_000)
            .with_wave_depth(100_000);
        assert_eq!(c.batch_block, MAX_BATCH_BLOCK);
        assert_eq!(c.wave_depth, MAX_BATCH_BLOCK);
    }
}
