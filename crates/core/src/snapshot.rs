//! The [`SnapshotRead`] trait: point-in-time, repeatable read views over
//! updatable indexes.
//!
//! [`algo_index::RangeIndex`] describes *what* a range index answers; it says
//! nothing about *when* the answer is true. For a static index the question
//! never arises, but an updatable structure (the `shift-store` serving
//! layer) answers every call against whatever state it holds at that
//! instant, so two calls — or the two probes inside one `range` — may
//! straddle a concurrent write. `SnapshotRead` closes that gap: it is
//! implemented by stores that can hand out an **owned, immutable view**
//! pinned to one version of the data, on which every [`RangeIndex`] read is
//! exactly repeatable no matter how the underlying store moves on.
//!
//! The trait is deliberately tiny so any updatable index can adopt it: the
//! view is just another `RangeIndex` (it drops into every benchmark harness
//! and oracle the static indexes use), plus the version it is pinned at.

use algo_index::search::RangeIndex;
use sosd_data::key::Key;

/// An updatable index that can pin an immutable, repeatable read view.
///
/// Laws implementors must uphold:
///
/// 1. **Repeatability** — every read on one view returns the same answer
///    forever, regardless of concurrent writes to `self`.
/// 2. **Self-consistency** — all reads on one view observe the same set of
///    writes (a multi-key or ranged read never straddles a write).
/// 3. **Monotonicity** — versions of successively taken views never
///    decrease, and a view's reads reflect exactly the writes its version
///    covers.
pub trait SnapshotRead<K: Key> {
    /// The pinned view: an owned, immutable [`RangeIndex`] over one version
    /// of the data.
    type Snapshot: RangeIndex<K>;

    /// Pin the current state. Acquisition must not block concurrent
    /// writers indefinitely, and the returned view must stay valid for as
    /// long as the caller holds it.
    fn snapshot(&self) -> Self::Snapshot;
}
