//! The compressed midpoint Shift-Table (the paper's S-X configurations).
//!
//! Instead of a `<Δ, C>` pair per prediction, the compact layer stores a
//! single averaged drift `Δ̄` per partition, with `M = N / X` partitions
//! (§3.4, Eq. 7). Correction adds the partition's `Δ̄` to the prediction and
//! hands the result to an *unbounded* local search (exponential search),
//! because no window can be guaranteed. Halving the entry and merging
//! partitions trades memory for accuracy — the trade-off Figure 9 sweeps.

use crate::build;
use crate::correction::{Correction, SearchHint};
use crate::entry::MidpointStorage;
use learned_index::model::CdfModel;
use sosd_data::key::Key;

/// Midpoint-mode Shift-Table with `M ≤ N` entries.
#[derive(Debug, Clone)]
pub struct CompactShiftTable {
    deltas: MidpointStorage,
    m: usize,
    n: usize,
    /// RMS residual `corrected − true` over the (sampled) build keys,
    /// recorded at build time so query-time consumers (the probe-count
    /// proxy, the tuning advisor) never have to probe the key array.
    rms_residual: f64,
}

impl CompactShiftTable {
    /// Build an S-X layer: one entry per `records_per_entry` records
    /// (`X = 1` gives the paper's S-1, `X = 100` gives S-100, ...).
    pub fn build<K: Key, M: CdfModel<K> + ?Sized>(
        model: &M,
        keys: &[K],
        records_per_entry: usize,
    ) -> Self {
        let n = keys.len();
        let x = records_per_entry.max(1);
        let m = n.div_ceil(x).max(1);
        Self::with_entry_count(model, keys, m)
    }

    /// Build with an explicit number of entries `m`.
    pub fn with_entry_count<K: Key, M: CdfModel<K> + ?Sized>(
        model: &M,
        keys: &[K],
        m: usize,
    ) -> Self {
        let m = m.max(1);
        let (deltas, rms_residual) = build::compute_midpoint_deltas_and_residual(model, keys, m, 1);
        Self {
            deltas: MidpointStorage::pack(&deltas),
            m,
            n: keys.len(),
            rms_residual,
        }
    }

    /// Sampling-based construction (§3.4): only every `sample_step`-th key is
    /// used to estimate the drifts, reducing build time to
    /// `O(S · cost(F_θ) + M)` at the cost of accuracy.
    pub fn build_from_sample<K: Key, M: CdfModel<K> + ?Sized>(
        model: &M,
        keys: &[K],
        m: usize,
        sample_step: usize,
    ) -> Self {
        let m = m.max(1);
        let sample_step = sample_step.max(1);
        // Residual measured over the same sample, preserving the O(S) build.
        let (deltas, rms_residual) =
            build::compute_midpoint_deltas_and_residual(model, keys, m, sample_step);
        Self {
            deltas: MidpointStorage::pack(&deltas),
            m,
            n: keys.len(),
            rms_residual,
        }
    }

    /// Number of entries (`M`).
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// True if the layer has no entries (never: `M ≥ 1`), kept for API
    /// symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deltas.len() == 0
    }

    /// The compression factor `X ≈ N / M`.
    pub fn records_per_entry(&self) -> usize {
        if self.m == 0 {
            0
        } else {
            self.n.div_ceil(self.m)
        }
    }

    /// True if the narrow 16-bit encoding was selected.
    pub fn is_narrow(&self) -> bool {
        self.deltas.is_narrow()
    }

    /// Root-mean-square residual `corrected − true position` over the keys
    /// the layer was built from (§3.5: drifts spread ≈ uniformly over a
    /// partition of cardinality `C`, giving an RMS of ≈ `C/√12`). Derived
    /// from the single build pass's drift moments — no extra model sweep —
    /// and recorded on the layer; the midpoint analogue of
    /// [`crate::table::ShiftTable::expected_error`].
    #[inline]
    pub fn expected_error(&self) -> f64 {
        self.rms_residual
    }

    /// The stored midpoint drift of a partition.
    #[inline]
    pub fn delta(&self, partition: usize) -> i64 {
        if self.deltas.len() == 0 {
            0
        } else {
            self.deltas.get(partition.min(self.deltas.len() - 1))
        }
    }

    /// Corrected position for a prediction (before local search), clamped to
    /// the valid record range.
    #[inline]
    pub fn corrected_position(&self, prediction: usize) -> usize {
        if self.n == 0 {
            return 0;
        }
        let partition = build::partition_of(prediction, self.m, self.n);
        let corrected = prediction as i64 + self.delta(partition);
        corrected.clamp(0, self.n as i64 - 1) as usize
    }
}

impl Correction for CompactShiftTable {
    #[inline]
    fn correct(&self, prediction: usize) -> SearchHint {
        SearchHint::unbounded(self.corrected_position(prediction))
    }

    fn size_bytes(&self) -> usize {
        self.deltas.size_bytes()
    }

    fn entry_count(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        "Shift-Table(S-X)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use learned_index::linear::InterpolationModel;
    use sosd_data::prelude::*;

    /// Empirical mean absolute error of corrected predictions over all keys.
    fn mean_corrected_error(
        table: &CompactShiftTable,
        model: &InterpolationModel,
        d: &Dataset<u64>,
    ) -> f64 {
        let keys = d.as_slice();
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut last = None;
        for (i, &k) in keys.iter().enumerate() {
            if last == Some(k) {
                continue;
            }
            last = Some(k);
            let corrected =
                table.corrected_position(learned_index::CdfModel::<u64>::predict_clamped(model, k));
            sum += (corrected as f64 - i as f64).abs();
            count += 1;
        }
        sum / count as f64
    }

    #[test]
    fn paper_table1_example() {
        // Table 1 of the paper: N = 100 keys in [0, 999], model ⌊x/10⌋,
        // M = 30 partitions. Keys 769..785 sit at positions 35..39 and are
        // all assigned to partition ⌊0.03·x⌋ = 23 with an average drift of
        // −40, correcting e.g. key 782 (prediction 78) to 38.
        struct DivTen;
        impl CdfModel<u64> for DivTen {
            fn predict(&self, key: u64) -> usize {
                (key / 10) as usize
            }
            fn key_count(&self) -> usize {
                100
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "div10"
            }
        }
        let mut keys: Vec<u64> = Vec::new();
        for i in 0..34u64 {
            keys.push(i * 20); // positions 0..33
        }
        keys.extend_from_slice(&[752, 769, 770, 771, 782, 785]); // positions 34..39
        for i in 0..60u64 {
            keys.push(820 + i * 2); // positions 40..99
        }
        assert_eq!(keys.len(), 100);
        assert!(keys.is_sorted());
        let table = CompactShiftTable::with_entry_count(&DivTen, &keys, 30);
        assert_eq!(table.len(), 30);
        // Partition of prediction 77 (= ⌊771/10⌋): 77·30/100 = 23.
        // Keys in partition 23 (predictions 76..79): 769, 770, 771, 782, 785
        // with drifts −41, −41, −40, −40, −39 → mean −40 (matches Table 1's
        // Δ̄³⁰₂₃ = −40, our rounding towards zero gives −40 as well).
        assert_eq!(table.delta(23), -40, "Δ̄ for partition 23");
        // Correction of key 782 (prediction 78): 78 − 40 = 38 = true position.
        assert_eq!(table.corrected_position(78), 38);
        // Correction of key 771 (prediction 77): 77 − 40 = 37 = true position.
        assert_eq!(table.corrected_position(77), 37);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn s1_layer_reduces_the_error_of_a_dummy_model_dramatically() {
        // Figure 6's qualitative claim on OSM-like data.
        let d: Dataset<u64> = SosdName::Osmc64.generate(100_000, 1);
        let model = InterpolationModel::build(&d);
        let uncorrected = learned_index::ModelErrorStats::compute(&model, &d).mean_abs;
        let table = CompactShiftTable::build(&model, d.as_slice(), 1);
        let corrected = mean_corrected_error(&table, &model, &d);
        assert!(
            corrected * 100.0 < uncorrected,
            "S-1 should reduce the error by orders of magnitude: {uncorrected} -> {corrected}"
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn larger_compression_factor_means_smaller_layer_and_larger_error() {
        // The Figure 9 trade-off.
        let d: Dataset<u64> = SosdName::Face64.generate(50_000, 2);
        let model = InterpolationModel::build(&d);
        let s1 = CompactShiftTable::build(&model, d.as_slice(), 1);
        let s100 = CompactShiftTable::build(&model, d.as_slice(), 100);
        let s1000 = CompactShiftTable::build(&model, d.as_slice(), 1000);
        assert!(Correction::size_bytes(&s1) > Correction::size_bytes(&s100));
        assert!(Correction::size_bytes(&s100) > Correction::size_bytes(&s1000));
        let e1 = mean_corrected_error(&s1, &model, &d);
        let e100 = mean_corrected_error(&s100, &model, &d);
        let e1000 = mean_corrected_error(&s1000, &model, &d);
        assert!(
            e1 <= e100,
            "S-1 ({e1}) should not be worse than S-100 ({e100})"
        );
        assert!(
            e100 <= e1000,
            "S-100 ({e100}) should not be worse than S-1000 ({e1000})"
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn s1_footprint_is_half_of_r1() {
        // §4.3: "the memory footprint of S-1 is half the size of R-1" (when
        // both use their narrow encodings).
        let d: Dataset<u64> = SosdName::Uspr64.generate(20_000, 3);
        let model = InterpolationModel::build(&d);
        let r1 = crate::table::ShiftTable::build(&model, d.as_slice());
        let s1 = CompactShiftTable::build(&model, d.as_slice(), 1);
        if r1.is_narrow() && s1.is_narrow() {
            assert_eq!(Correction::size_bytes(&s1) * 2, Correction::size_bytes(&r1));
        } else {
            assert!(Correction::size_bytes(&s1) < Correction::size_bytes(&r1));
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn sample_built_layer_is_usable() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(50_000, 4);
        let model = InterpolationModel::build(&d);
        let full = CompactShiftTable::with_entry_count(&model, d.as_slice(), 5_000);
        let sampled = CompactShiftTable::build_from_sample(&model, d.as_slice(), 5_000, 32);
        let e_full = mean_corrected_error(&full, &model, &d);
        let e_sampled = mean_corrected_error(&sampled, &model, &d);
        assert!(
            e_sampled < 20.0 * e_full.max(1.0),
            "sampled layer error {e_sampled} should stay in the same ballpark as {e_full}"
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn expected_error_is_recorded_at_build_time() {
        let d: Dataset<u64> = SosdName::Face64.generate(20_000, 6);
        let model = InterpolationModel::build(&d);
        let t = CompactShiftTable::build(&model, d.as_slice(), 1);
        let empirical = mean_corrected_error(&t, &model, &d);
        assert!(t.expected_error() > 0.0);
        // The stored statistic is an RMS over all sampled keys while the
        // empirical reference is a deduped mean-abs, so they agree in
        // magnitude (RMS ≥ mean, within a small factor), not to the digit.
        assert!(
            t.expected_error() >= 0.5 * empirical && t.expected_error() <= 5.0 * empirical.max(1.0),
            "stored {} vs empirical {empirical}",
            t.expected_error()
        );
        // Coarser layers must report larger residuals.
        let t100 = CompactShiftTable::build(&model, d.as_slice(), 100);
        assert!(t100.expected_error() >= t.expected_error());

        let empty: Vec<u64> = vec![];
        let em = InterpolationModel::from_sorted_keys(&empty);
        assert_eq!(
            CompactShiftTable::build(&em, &empty, 10).expected_error(),
            0.0
        );
    }

    #[test]
    fn degenerate_inputs() {
        let keys: Vec<u64> = vec![];
        let model = InterpolationModel::from_sorted_keys(&keys);
        let t = CompactShiftTable::build(&model, &keys, 10);
        assert_eq!(t.corrected_position(5), 0);
        assert_eq!(t.correct(5), SearchHint::unbounded(0));

        let keys = vec![42u64];
        let model = InterpolationModel::from_sorted_keys(&keys);
        let t = CompactShiftTable::build(&model, &keys, 1);
        assert_eq!(t.corrected_position(0), 0);
        assert_eq!(t.records_per_entry(), 1);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn corrected_position_is_always_in_range() {
        let d: Dataset<u64> = SosdName::Amzn64.generate(10_000, 7);
        let model = InterpolationModel::build(&d);
        let t = CompactShiftTable::build(&model, d.as_slice(), 10);
        for pred in [0usize, 1, 500, 9_999, 100_000, usize::MAX] {
            assert!(t.corrected_position(pred) < d.len());
        }
    }
}
