//! Last-mile ("local") search routines.
//!
//! After the model (and optionally the Shift-Table) has produced a position
//! hint, the true lower bound is located by searching the sorted key array
//! around that hint (Figure 1a). Three routines are provided, matching the
//! paper's discussion:
//!
//! * [`linear_in_window`] — forward linear scan inside a known window; best
//!   when the window is only a few keys (Algorithm 1 uses it below the
//!   `linear_to_binary_threshold`),
//! * [`binary_in_window`] — branchless binary search inside a known window;
//!   best for larger bounded windows,
//! * [`exponential_around`] — galloping search from an unbounded hint; used
//!   when only a corrected *position* (midpoint mode) is known, not a window.
//!
//! All three return lower-bound positions over the whole array and are
//! correct for any window/hint: if the true position lies outside the given
//! window, the window variants return the window boundary, which the caller
//! ([`crate::index::CorrectedIndex`]) detects and repairs.

use sosd_data::key::Key;

/// Forward linear scan of `keys[start..start + len]`, returning the first
/// position with key `>= q`, or `start + len` if every key in the window is
/// smaller. `start + len` is clamped to the array length.
#[inline]
pub fn linear_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let mut i = start;
    while i < end && keys[i] < q {
        i += 1;
    }
    i
}

/// Branchless binary search of `keys[start..start + len]`, returning the
/// first position with key `>= q`, or `start + len` if every key in the
/// window is smaller. `start + len` is clamped to the array length.
#[inline]
pub fn binary_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let mut base = start;
    let mut remaining = end - start;
    while remaining > 1 {
        let half = remaining / 2;
        let mid = base + half - 1;
        if keys[mid] < q {
            base = mid + 1;
            remaining -= half;
        } else {
            remaining = half;
        }
    }
    if remaining == 1 && base < end && keys[base] < q {
        base + 1
    } else {
        base
    }
}

/// Exponential (galloping) search from an unbounded position hint: doubles
/// the step until the lower bound is bracketed, then binary-searches the
/// bracket. Cost is `O(log |hint − result|)`.
#[inline]
pub fn exponential_around<K: Key>(keys: &[K], hint: usize, q: K) -> usize {
    let n = keys.len();
    if n == 0 {
        return 0;
    }
    let hint = hint.min(n - 1);
    if keys[hint] < q {
        // Gallop right.
        let mut step = 1usize;
        let mut prev = hint;
        loop {
            let next = match prev.checked_add(step) {
                Some(i) if i < n => i,
                _ => return binary_in_window(keys, prev + 1, n - prev - 1, q),
            };
            if keys[next] >= q {
                return binary_in_window(keys, prev + 1, next - prev, q);
            }
            prev = next;
            step *= 2;
        }
    } else {
        // Gallop left.
        let mut step = 1usize;
        let mut prev = hint;
        loop {
            if prev == 0 {
                return 0;
            }
            let next = prev.saturating_sub(step);
            if keys[next] < q {
                return binary_in_window(keys, next + 1, prev - next, q);
            }
            if next == 0 {
                return binary_in_window(keys, 0, prev, q);
            }
            prev = next;
            step *= 2;
        }
    }
}

/// Number of probes (array touches) a bounded search of a window of `len`
/// records performs; used by the cost model and the cache-miss proxy.
#[inline]
pub fn window_probe_count(len: usize, linear_threshold: usize) -> usize {
    if len <= 1 {
        1
    } else if len < linear_threshold {
        // Linear scan touches on average half the window but stays within
        // one or two cache lines.
        len.div_ceil(2).max(1)
    } else {
        (usize::BITS - (len - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    fn reference(keys: &[u64], q: u64) -> usize {
        keys.partition_point(|&k| k < q)
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn window_searches_agree_with_reference_when_window_covers_target() {
        let d: Dataset<u64> = SosdName::Face64.generate(5_000, 1);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 500, 3);
        for (q, expected) in w.iter() {
            // A window comfortably containing the target.
            let start = expected.saturating_sub(20);
            let len = 40.min(keys.len() - start);
            assert_eq!(linear_in_window(keys, start, len, q), expected);
            assert_eq!(binary_in_window(keys, start, len, q), expected);
        }
    }

    #[test]
    fn window_searches_clamp_when_target_is_outside() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 10).collect();
        // Target (lower bound of 995 -> index 100) is to the right of the window.
        assert_eq!(linear_in_window(&keys, 10, 5, 995), 15);
        assert_eq!(binary_in_window(&keys, 10, 5, 995), 15);
        // Target (index 0) is to the left of the window.
        assert_eq!(linear_in_window(&keys, 10, 5, 0), 10);
        assert_eq!(binary_in_window(&keys, 10, 5, 0), 10);
        // Window beyond the end of the array.
        assert_eq!(linear_in_window(&keys, 98, 50, 2_000), 100);
        assert_eq!(binary_in_window(&keys, 98, 50, 2_000), 100);
        // Degenerate zero-length window.
        assert_eq!(linear_in_window(&keys, 7, 0, 42), 7);
        assert_eq!(binary_in_window(&keys, 7, 0, 42), 7);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn exponential_matches_reference_from_any_hint() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(5_000, 5);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 300, 7);
        for (q, expected) in w.iter() {
            for hint in [0usize, 1, 17, 2_500, 4_999, 10_000] {
                assert_eq!(
                    exponential_around(keys, hint, q),
                    expected,
                    "q={q} hint={hint}"
                );
            }
        }
    }

    #[test]
    fn exponential_handles_empty_and_boundaries() {
        let empty: Vec<u64> = vec![];
        assert_eq!(exponential_around(&empty, 0, 9), 0);
        let keys = vec![5u64, 10, 15];
        assert_eq!(exponential_around(&keys, 0, 1), 0);
        assert_eq!(exponential_around(&keys, 2, 1), 0);
        assert_eq!(exponential_around(&keys, 0, 99), 3);
        assert_eq!(exponential_around(&keys, 2, 99), 3);
    }

    #[test]
    fn duplicates_return_first_occurrence() {
        let keys = vec![1u64, 4, 4, 4, 4, 9];
        for hint in 0..keys.len() {
            assert_eq!(exponential_around(&keys, hint, 4), 1);
        }
        assert_eq!(linear_in_window(&keys, 0, 6, 4), 1);
        assert_eq!(binary_in_window(&keys, 0, 6, 4), 1);
    }

    #[test]
    fn probe_count_model_is_monotone() {
        let t = 8;
        assert_eq!(window_probe_count(1, t), 1);
        assert!(window_probe_count(4, t) <= window_probe_count(64, t));
        assert!(window_probe_count(64, t) <= window_probe_count(4096, t));
        assert_eq!(window_probe_count(1024, t), 10);
    }

    #[test]
    fn exhaustive_small_windows_match_reference() {
        let keys = vec![2u64, 4, 4, 6, 8, 8, 8, 10];
        for q in 0..=12u64 {
            let expected = reference(&keys, q);
            assert_eq!(linear_in_window(&keys, 0, keys.len(), q), expected, "q={q}");
            assert_eq!(binary_in_window(&keys, 0, keys.len(), q), expected, "q={q}");
            for hint in 0..keys.len() {
                assert_eq!(
                    exponential_around(&keys, hint, q),
                    expected,
                    "q={q} hint={hint}"
                );
            }
        }
    }
}
