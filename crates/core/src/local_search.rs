//! Last-mile ("local") search routines.
//!
//! After the model (and optionally the Shift-Table) has produced a position
//! hint, the true lower bound is located by searching the sorted key array
//! around that hint (Figure 1a). The routines match the paper's discussion:
//!
//! * [`linear_in_window`] — forward linear scan inside a known window; best
//!   when the window is only a few keys (Algorithm 1 uses it below the
//!   `linear_to_binary_threshold`),
//! * [`binary_in_window`] — binary search inside a known window; best for
//!   larger bounded windows,
//! * [`exponential_around`] — galloping search from an unbounded hint; used
//!   when only a corrected *position* (midpoint mode) is known, not a window.
//!
//! Three branch-free variants, whose loop structure is independent of the
//! data, round out the toolbox (and served as stepping stones for the batch
//! kernel's wavefront — see below):
//!
//! * [`branchless_count_in_window`] — the linear variant: the lower bound in
//!   a sorted window is `start + |{k in window : k < q}|`, and the count is a
//!   pure reduction LLVM autovectorizes (with a manual 4-wide unroll),
//! * [`branchless_in_window`] — the binary variant: the classic conditional-
//!   move formulation (`base += (keys[mid] < q) * half`) whose trip count
//!   depends only on the window length,
//! * [`interpolated_in_window`] — one interpolation probe splits the window
//!   with a branch-free select, then [`branchless_in_window`] finishes the
//!   surviving half. Interpolation is a *hint*, never trusted: the result is
//!   exact for any key distribution.
//!
//! The batch kernel's wavefront ([`crate::kernel`]) generalizes the
//! interpolated probe: it iterates interpolation level by level across every
//! wide lane of a block (boundary keys cached from prior probes, every
//! eighth level halving as a convergence guard), then finishes each lane
//! with [`linear_in_window`] once the bracket is a few cache lines wide —
//! measured block-wide, the early-exit scan beats both branch-free finishes
//! because its compares are sequential and predictable.
//!
//! All routines return lower-bound positions over the whole array and are
//! correct for any window/hint: if the true position lies outside the given
//! window, the window variants return the window boundary, which the caller
//! ([`crate::index::CorrectedIndex`]) detects and repairs.

use sosd_data::key::Key;

/// Forward linear scan of `keys[start..start + len]`, returning the first
/// position with key `>= q`, or `start + len` if every key in the window is
/// smaller. `start + len` is clamped to the array length.
#[inline]
pub fn linear_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let mut i = start;
    while i < end && keys[i] < q {
        i += 1;
    }
    i
}

/// Branchless-count linear search of `keys[start..start + len]`: because the
/// window is sorted, the lower bound is `start` plus the number of window
/// keys smaller than `q`. The count is a data-independent reduction — no
/// early exit, no branch to mispredict — written with a manual 4-wide unroll
/// over [`slice::chunks_exact`] so LLVM vectorizes the comparison loop.
/// Same contract as [`linear_in_window`] and always the same result.
#[inline]
pub fn branchless_count_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let window = &keys[start..end];
    let mut below = 0usize;
    let mut chunks = window.chunks_exact(4);
    for c in &mut chunks {
        below +=
            (c[0] < q) as usize + (c[1] < q) as usize + (c[2] < q) as usize + (c[3] < q) as usize;
    }
    for &k in chunks.remainder() {
        below += (k < q) as usize;
    }
    start + below
}

/// Binary search of `keys[start..start + len]`, returning the first position
/// with key `>= q`, or `start + len` if every key in the window is smaller.
/// `start + len` is clamped to the array length.
#[inline]
pub fn binary_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let mut base = start;
    let mut remaining = end - start;
    while remaining > 1 {
        let half = remaining / 2;
        let mid = base + half - 1;
        if keys[mid] < q {
            base = mid + 1;
            remaining -= half;
        } else {
            remaining = half;
        }
    }
    if remaining == 1 && base < end && keys[base] < q {
        base + 1
    } else {
        base
    }
}

/// Branch-free binary search of `keys[start..start + len]` — same contract
/// and result as [`binary_in_window`], but the window always shrinks by
/// `half` regardless of the comparison outcome (`base` advances by a masked
/// `half`, a conditional move), so the loop trip count is a function of the
/// window length alone. That makes consecutive searches in a pipelined wave
/// uniform: no data-dependent branch separates one lookup's loads from the
/// next lookup's.
#[inline]
pub fn branchless_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let mut base = start;
    let mut remaining = end - start;
    while remaining > 1 {
        let half = remaining / 2;
        // Conditional-move idiom: keep the lower half or skip past it.
        base += ((keys[base + half - 1] < q) as usize) * half;
        remaining -= half;
    }
    if remaining == 1 {
        base + (keys[base] < q) as usize
    } else {
        base
    }
}

/// Interpolated search of `keys[start..start + len]` — same contract and
/// result as [`binary_in_window`]. One interpolation probe estimates where
/// `q` falls between the window's first and last key and splits the window
/// there with a branch-free select; [`branchless_in_window`] then finishes
/// the surviving part. On near-linear windows (the common case after a
/// Shift-Table correction) the probe lands within a cache line of the
/// answer, halving the comparison count; on adversarial windows it merely
/// degrades to the branch-free binary search — the result is exact either
/// way, because the probe only narrows the bracket, never decides it.
#[inline]
pub fn interpolated_in_window<K: Key>(keys: &[K], start: usize, len: usize, q: K) -> usize {
    let start = start.min(keys.len());
    let end = start.saturating_add(len).min(keys.len());
    let n = end - start;
    if n <= 1 {
        return if n == 1 && keys[start] < q {
            start + 1
        } else {
            start
        };
    }
    let lo = keys[start].to_f64();
    let hi = keys[end - 1].to_f64();
    let span = hi - lo;
    let (sub_start, sub_len) = if span > 0.0 {
        let frac = ((q.to_f64() - lo) / span).clamp(0.0, 1.0);
        let g = start + ((frac * (n - 1) as f64) as usize).min(n - 1);
        // Branch-free select of the surviving sub-window: if keys[g] < q the
        // answer is in (g, end], otherwise in [start, g].
        let below = (keys[g] < q) as usize;
        (
            start + below * (g + 1 - start),
            below * (end - g - 1) + (1 - below) * (g + 1 - start),
        )
    } else {
        // Constant window (duplicate run or f64-indistinguishable keys):
        // nothing to interpolate on.
        (start, n)
    };
    branchless_in_window(keys, sub_start, sub_len, q)
}

/// Exponential (galloping) search from an unbounded position hint: doubles
/// the step until the lower bound is bracketed, then binary-searches the
/// bracket. Cost is `O(log |hint − result|)`.
///
/// The bracketing probes are not repeated: once the gallop has compared
/// `keys[b]` against `q`, position `b` is excluded from the window handed to
/// [`binary_in_window`], so each boundary key is probed exactly once.
#[inline]
pub fn exponential_around<K: Key>(keys: &[K], hint: usize, q: K) -> usize {
    let n = keys.len();
    if n == 0 {
        return 0;
    }
    let hint = hint.min(n - 1);
    if keys[hint] < q {
        // Gallop right.
        let mut step = 1usize;
        let mut prev = hint;
        loop {
            let next = match prev.checked_add(step) {
                Some(i) if i < n => i,
                _ => return binary_in_window(keys, prev + 1, n - prev - 1, q),
            };
            if keys[next] >= q {
                // `keys[next] >= q` is already known: exclude `next` from the
                // bracket (the search returns `next` when the rest of the
                // bracket is smaller) instead of re-probing it.
                return binary_in_window(keys, prev + 1, next - prev - 1, q);
            }
            prev = next;
            step *= 2;
        }
    } else {
        // Gallop left.
        let mut step = 1usize;
        let mut prev = hint;
        loop {
            if prev == 0 {
                return 0;
            }
            let next = prev.saturating_sub(step);
            if keys[next] < q {
                // `keys[prev] >= q` is already known: exclude `prev`.
                return binary_in_window(keys, next + 1, prev - next - 1, q);
            }
            if next == 0 {
                // `keys[0] >= q` (the branch above did not take), so position
                // 0 is the lower bound — no further search needed.
                return 0;
            }
            prev = next;
            step *= 2;
        }
    }
}

/// Number of probes (array touches) a bounded search of a window of `len`
/// records performs; used by the cost model and the cache-miss proxy.
#[inline]
pub fn window_probe_count(len: usize, linear_threshold: usize) -> usize {
    if len <= 1 {
        1
    } else if len < linear_threshold {
        // Linear scan touches on average half the window but stays within
        // one or two cache lines.
        len.div_ceil(2).max(1)
    } else {
        (usize::BITS - (len - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    fn reference(keys: &[u64], q: u64) -> usize {
        keys.partition_point(|&k| k < q)
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn window_searches_agree_with_reference_when_window_covers_target() {
        let d: Dataset<u64> = SosdName::Face64.generate(5_000, 1);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 500, 3);
        for (q, expected) in w.iter() {
            // A window comfortably containing the target.
            let start = expected.saturating_sub(20);
            let len = 40.min(keys.len() - start);
            assert_eq!(linear_in_window(keys, start, len, q), expected);
            assert_eq!(binary_in_window(keys, start, len, q), expected);
            assert_eq!(branchless_count_in_window(keys, start, len, q), expected);
            assert_eq!(branchless_in_window(keys, start, len, q), expected);
            assert_eq!(interpolated_in_window(keys, start, len, q), expected);
        }
    }

    #[test]
    fn window_searches_clamp_when_target_is_outside() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 10).collect();
        let all = [
            linear_in_window as fn(&[u64], usize, usize, u64) -> usize,
            binary_in_window,
            branchless_count_in_window,
            branchless_in_window,
            interpolated_in_window,
        ];
        for search in all {
            // Target (lower bound of 995 -> index 100) is right of the window.
            assert_eq!(search(&keys, 10, 5, 995), 15);
            // Target (index 0) is to the left of the window.
            assert_eq!(search(&keys, 10, 5, 0), 10);
            // Window beyond the end of the array.
            assert_eq!(search(&keys, 98, 50, 2_000), 100);
            // Degenerate zero-length window.
            assert_eq!(search(&keys, 7, 0, 42), 7);
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn exponential_matches_reference_from_any_hint() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(5_000, 5);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 300, 7);
        for (q, expected) in w.iter() {
            for hint in [0usize, 1, 17, 2_500, 4_999, 10_000] {
                assert_eq!(
                    exponential_around(keys, hint, q),
                    expected,
                    "q={q} hint={hint}"
                );
            }
        }
    }

    #[test]
    fn exponential_handles_empty_and_boundaries() {
        let empty: Vec<u64> = vec![];
        assert_eq!(exponential_around(&empty, 0, 9), 0);
        let keys = vec![5u64, 10, 15];
        assert_eq!(exponential_around(&keys, 0, 1), 0);
        assert_eq!(exponential_around(&keys, 2, 1), 0);
        assert_eq!(exponential_around(&keys, 0, 99), 3);
        assert_eq!(exponential_around(&keys, 2, 99), 3);
    }

    #[test]
    fn duplicates_return_first_occurrence() {
        let keys = vec![1u64, 4, 4, 4, 4, 9];
        for hint in 0..keys.len() {
            assert_eq!(exponential_around(&keys, hint, 4), 1);
        }
        assert_eq!(linear_in_window(&keys, 0, 6, 4), 1);
        assert_eq!(binary_in_window(&keys, 0, 6, 4), 1);
        assert_eq!(branchless_count_in_window(&keys, 0, 6, 4), 1);
        assert_eq!(branchless_in_window(&keys, 0, 6, 4), 1);
        assert_eq!(interpolated_in_window(&keys, 0, 6, 4), 1);
    }

    #[test]
    fn probe_count_model_is_monotone() {
        let t = 8;
        assert_eq!(window_probe_count(1, t), 1);
        assert!(window_probe_count(4, t) <= window_probe_count(64, t));
        assert!(window_probe_count(64, t) <= window_probe_count(4096, t));
        assert_eq!(window_probe_count(1024, t), 10);
    }

    #[test]
    fn exhaustive_small_windows_match_reference() {
        let keys = vec![2u64, 4, 4, 6, 8, 8, 8, 10];
        for q in 0..=12u64 {
            let expected = reference(&keys, q);
            assert_eq!(linear_in_window(&keys, 0, keys.len(), q), expected, "q={q}");
            assert_eq!(binary_in_window(&keys, 0, keys.len(), q), expected, "q={q}");
            for hint in 0..keys.len() {
                assert_eq!(
                    exponential_around(&keys, hint, q),
                    expected,
                    "q={q} hint={hint}"
                );
            }
        }
    }

    #[test]
    fn branch_free_variants_equal_binary_on_every_subwindow() {
        // Exhaustive (start, len, q) sweep over a duplicate-heavy array: the
        // three branch-free routines must return exactly what the reference
        // window search returns for *every* window, including windows that
        // miss the target, zero-length windows and windows past the end.
        let keys = vec![2u64, 4, 4, 6, 8, 8, 8, 10, 10, 13];
        for q in 0..=15u64 {
            for start in 0..=keys.len() + 1 {
                for len in 0..=keys.len() + 2 {
                    let expected = binary_in_window(&keys, start, len, q);
                    assert_eq!(
                        branchless_in_window(&keys, start, len, q),
                        expected,
                        "branchless q={q} start={start} len={len}"
                    );
                    assert_eq!(
                        branchless_count_in_window(&keys, start, len, q),
                        expected,
                        "count q={q} start={start} len={len}"
                    );
                    assert_eq!(
                        interpolated_in_window(&keys, start, len, q),
                        expected,
                        "interpolated q={q} start={start} len={len}"
                    );
                }
            }
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn branch_free_variants_match_reference_on_skewed_data() {
        // Heavy-tailed gaps stress the interpolation probe: it lands far from
        // the answer, and correctness must not depend on probe quality.
        let d: Dataset<u64> = SosdName::Osmc64.generate(5_000, 9);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 400, 11);
        for (q, expected) in w.iter() {
            for (off, len) in [(0usize, keys.len()), (50, 200), (3, 9), (0, 1)] {
                let start = expected.saturating_sub(off);
                let want = binary_in_window(keys, start, len, q);
                assert_eq!(branchless_in_window(keys, start, len, q), want);
                assert_eq!(branchless_count_in_window(keys, start, len, q), want);
                assert_eq!(interpolated_in_window(keys, start, len, q), want);
            }
        }
    }

    /// A `u64` wrapper whose comparisons are counted, for probe-accounting
    /// regression tests.
    #[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
    struct CountedKey(u64);

    thread_local! {
        static COMPARES: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    }

    impl PartialOrd for CountedKey {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for CountedKey {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            COMPARES.with(|c| c.set(c.get() + 1));
            self.0.cmp(&other.0)
        }
    }

    impl std::fmt::Display for CountedKey {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl Key for CountedKey {
        const BITS: u32 = 64;
        const MIN_KEY: Self = CountedKey(u64::MIN);
        const MAX_KEY: Self = CountedKey(u64::MAX);
        fn to_u64(self) -> u64 {
            self.0
        }
        fn from_u64_saturating(v: u64) -> Self {
            CountedKey(v)
        }
    }

    fn compares_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
        COMPARES.with(|c| c.set(0));
        let r = f();
        (r, COMPARES.with(|c| c.get()))
    }

    /// The pre-fix galloping search: its bracket windows include the boundary
    /// position the gallop already probed, so the binary phase re-compares a
    /// key whose ordering against `q` is known.
    fn exponential_around_with_reprobe<K: Key>(keys: &[K], hint: usize, q: K) -> usize {
        let n = keys.len();
        if n == 0 {
            return 0;
        }
        let hint = hint.min(n - 1);
        if keys[hint] < q {
            let mut step = 1usize;
            let mut prev = hint;
            loop {
                let next = match prev.checked_add(step) {
                    Some(i) if i < n => i,
                    _ => return binary_in_window(keys, prev + 1, n - prev - 1, q),
                };
                if keys[next] >= q {
                    return binary_in_window(keys, prev + 1, next - prev, q);
                }
                prev = next;
                step *= 2;
            }
        } else {
            let mut step = 1usize;
            let mut prev = hint;
            loop {
                if prev == 0 {
                    return 0;
                }
                let next = prev.saturating_sub(step);
                if keys[next] < q {
                    return binary_in_window(keys, next + 1, prev - next, q);
                }
                if next == 0 {
                    return binary_in_window(keys, 0, prev, q);
                }
                prev = next;
                step *= 2;
            }
        }
    }

    #[test]
    fn galloping_brackets_skip_the_already_probed_boundary() {
        // Regression for the boundary re-probe micro-fix: the fixed gallop
        // must return the same position as the re-probing variant everywhere
        // while performing strictly fewer key comparisons in aggregate.
        let keys: Vec<CountedKey> = (0..4_096u64).map(|i| CountedKey(i * 3)).collect();
        let mut total_new = 0usize;
        let mut total_old = 0usize;
        for hint in [0usize, 1, 7, 100, 2_048, 4_095, 9_999] {
            for raw in [0u64, 1, 3, 300, 301, 3_000, 6_144, 6_145, 12_285, 20_000] {
                let q = CountedKey(raw);
                let expected = keys.partition_point(|&k| k < q);
                let (got_new, n_new) = compares_during(|| exponential_around(&keys, hint, q));
                let (got_old, n_old) =
                    compares_during(|| exponential_around_with_reprobe(&keys, hint, q));
                assert_eq!(got_new, expected, "hint={hint} q={raw}");
                assert_eq!(got_old, expected, "hint={hint} q={raw}");
                // The shrunken bracket can shift the binary search onto a
                // slightly different halving path, so allow per-case jitter;
                // the aggregate below must still come out ahead.
                assert!(
                    n_new <= n_old + 1,
                    "hint={hint} q={raw}: {n_new} vs {n_old} compares"
                );
                total_new += n_new;
                total_old += n_old;
            }
        }
        assert!(
            total_new < total_old,
            "boundary exclusion must save comparisons: {total_new} vs {total_old}"
        );

        // The `keys[0] >= q` left-gallop exit returns without any binary
        // phase at all: gallop comparisons only (hint probe + log2 steps).
        let (pos, n) = compares_during(|| exponential_around(&keys, 4_095, CountedKey(0)));
        assert_eq!(pos, 0);
        assert!(
            n <= 14,
            "left exit should be gallop-only, took {n} compares"
        );
    }

    #[test]
    fn duplicate_runs_at_gallop_brackets_stay_exact() {
        // Duplicates sitting exactly on a gallop boundary are the case where
        // an off-by-one in the shrunken bracket would surface: the first
        // occurrence must still be found from every hint.
        let mut keys: Vec<u64> = vec![0, 1, 2];
        keys.extend(std::iter::repeat_n(50u64, 37));
        keys.extend([60, 61, 62, 63]);
        for hint in 0..keys.len() + 3 {
            for q in [0u64, 1, 3, 49, 50, 51, 59, 60, 64, 100] {
                let expected = reference(&keys, q);
                assert_eq!(
                    exponential_around(&keys, hint, q),
                    expected,
                    "q={q} hint={hint}"
                );
            }
        }
    }
}
