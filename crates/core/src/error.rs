//! Error measurement for corrected predictions (§3.5).
//!
//! Two views are provided: the *analytic* expectation of Eq. 8 (available
//! directly from a range-mode layer without touching the data again, exposed
//! as [`crate::table::ShiftTable::expected_error`]) and the *empirical*
//! statistics of corrected predictions over the indexed keys, which work for
//! any [`Correction`] and are what the Figure 6 / Figure 9 error plots use.

use crate::correction::Correction;
use learned_index::model::CdfModel;
use sosd_data::key::Key;

/// Why an index could not be built.
///
/// Construction validates its input instead of `debug_assert!`-ing it: feeding
/// unsorted keys to a release build used to silently produce a wrong index,
/// now it is a hard error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The key column is not sorted in non-decreasing order.
    UnsortedKeys {
        /// Index of the first key that is smaller than its predecessor.
        position: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsortedKeys { position } => write!(
                f,
                "keys are not sorted: keys[{position}] is smaller than keys[{}]",
                position - 1
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Locate the first out-of-order position in `keys`, if any.
pub(crate) fn first_unsorted<K: Key>(keys: &[K]) -> Option<usize> {
    keys.windows(2).position(|w| w[0] > w[1]).map(|i| i + 1)
}

/// Empirical error statistics of corrected predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionErrorStats {
    /// Number of distinct keys evaluated.
    pub count: usize,
    /// Mean absolute error in records after correction.
    pub mean_abs: f64,
    /// Median absolute error in records after correction.
    pub median_abs: f64,
    /// Maximum absolute error in records after correction.
    pub max_abs: u64,
    /// Mean `log2(1 + |error|)` after correction.
    pub mean_log2: f64,
}

impl CorrectionErrorStats {
    /// Measure the error of `correction ∘ model` over every distinct key.
    ///
    /// For range-mode corrections the "corrected prediction" is the start of
    /// the search window (the first record the local search touches); for
    /// midpoint corrections it is the corrected position itself.
    pub fn compute<K: Key, M, C>(model: &M, correction: &C, keys: &[K]) -> Self
    where
        M: CdfModel<K> + ?Sized,
        C: Correction + ?Sized,
    {
        let mut abs_errors: Vec<f64> = Vec::new();
        let mut sum_abs = 0.0;
        let mut sum_log2 = 0.0;
        let mut max_abs = 0u64;
        let mut last: Option<K> = None;
        for (i, &k) in keys.iter().enumerate() {
            if last == Some(k) {
                continue;
            }
            last = Some(k);
            let hint = correction.correct(model.predict_clamped(k));
            let err = (hint.start as f64 - i as f64).abs();
            sum_abs += err;
            sum_log2 += (1.0 + err).log2();
            max_abs = max_abs.max(err.round() as u64);
            abs_errors.push(err);
        }
        let count = abs_errors.len();
        if count == 0 {
            return Self {
                count: 0,
                mean_abs: 0.0,
                median_abs: 0.0,
                max_abs: 0,
                mean_log2: 0.0,
            };
        }
        abs_errors.sort_by(|a, b| a.total_cmp(b));
        Self {
            count,
            mean_abs: sum_abs / count as f64,
            median_abs: abs_errors[count / 2],
            max_abs,
            mean_log2: sum_log2 / count as f64,
        }
    }

    /// Per-key signed error series `(position, corrected_prediction − position)`
    /// — the data behind Figure 6b.
    pub fn error_series<K: Key, M, C>(model: &M, correction: &C, keys: &[K]) -> Vec<(usize, i64)>
    where
        M: CdfModel<K> + ?Sized,
        C: Correction + ?Sized,
    {
        let mut out = Vec::with_capacity(keys.len());
        let mut last: Option<K> = None;
        for (i, &k) in keys.iter().enumerate() {
            if last == Some(k) {
                continue;
            }
            last = Some(k);
            let hint = correction.correct(model.predict_clamped(k));
            out.push((i, hint.start as i64 - i as i64));
        }
        out
    }
}

impl std::fmt::Display for CorrectionErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrected: mean |e| = {:.1}, median |e| = {:.1}, max |e| = {}, log2 e = {:.2}",
            self.mean_abs, self.median_abs, self.max_abs, self.mean_log2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactShiftTable;
    use crate::table::ShiftTable;
    use learned_index::linear::InterpolationModel;
    use learned_index::ModelErrorStats;
    use sosd_data::prelude::*;

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn range_mode_correction_error_is_bounded_by_window_lengths() {
        let d: Dataset<u64> = SosdName::Face64.generate(30_000, 1);
        let model = InterpolationModel::build(&d);
        let table = ShiftTable::build(&model, d.as_slice());
        let stats = CorrectionErrorStats::compute(&model, &table, d.as_slice());
        let max_window = table.window_lengths().max().unwrap_or(0);
        assert!(
            stats.max_abs <= max_window,
            "corrected error {} cannot exceed the largest window {}",
            stats.max_abs,
            max_window
        );
        assert!(stats.count > 0);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn figure6_shape_shift_table_crushes_the_dummy_model_error() {
        // Figure 6: on OSM data the raw linear model averages millions of
        // records of error (28M at 200M keys); the Shift-Table brings it down
        // to a few hundred at most. At our default scale the ratio — not the
        // absolute number — is the reproducible claim.
        let d: Dataset<u64> = SosdName::Osmc64.generate(100_000, 1);
        let model = InterpolationModel::build(&d);
        let before = ModelErrorStats::compute(&model, &d).mean_abs;
        let table = ShiftTable::build(&model, d.as_slice());
        let after = CorrectionErrorStats::compute(&model, &table, d.as_slice()).mean_abs;
        assert!(
            before > 100.0 * after.max(0.1),
            "error must drop by orders of magnitude: {before} -> {after}"
        );
    }

    #[test]
    fn midpoint_error_is_roughly_quarter_of_window() {
        // §3.5: with midpoint correction the average error is ≈ C_k / 4 for
        // partitions of cardinality C_k. Use a model that lumps every key
        // into windows of 8.
        struct Coarse(usize);
        impl learned_index::CdfModel<u64> for Coarse {
            fn predict(&self, key: u64) -> usize {
                ((key as usize) / 8) * 8
            }
            fn key_count(&self) -> usize {
                self.0
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "coarse"
            }
        }
        let n = 8_000usize;
        let keys: Vec<u64> = (0..n as u64).collect();
        let model = Coarse(n);
        let s1 = CompactShiftTable::build(&model, &keys, 1);
        let stats = CorrectionErrorStats::compute(&model, &s1, &keys);
        // Each partition has 8 keys; the expected |error| of midpoint
        // correction is ≈ 8/4 = 2.
        assert!(
            (stats.mean_abs - 2.0).abs() < 0.6,
            "mean error {} should be ≈ C/4 = 2",
            stats.mean_abs
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn error_series_matches_stats() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(5_000, 3);
        let model = InterpolationModel::build(&d);
        let table = ShiftTable::build(&model, d.as_slice());
        let series = CorrectionErrorStats::error_series(&model, &table, d.as_slice());
        let stats = CorrectionErrorStats::compute(&model, &table, d.as_slice());
        assert_eq!(series.len(), stats.count);
        let mean = series.iter().map(|(_, e)| e.abs() as f64).sum::<f64>() / series.len() as f64;
        assert!((mean - stats.mean_abs).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let keys: Vec<u64> = vec![];
        let model = InterpolationModel::from_sorted_keys(&keys);
        let table = ShiftTable::build(&model, &keys);
        let stats = CorrectionErrorStats::compute(&model, &table, &keys);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_abs, 0.0);
        assert!(CorrectionErrorStats::error_series(&model, &table, &keys).is_empty());
    }

    #[test]
    fn build_error_reports_the_offending_position() {
        assert_eq!(super::first_unsorted(&[1u64, 2, 3]), None);
        assert_eq!(super::first_unsorted(&[3u64, 2, 3]), Some(1));
        assert_eq!(super::first_unsorted(&[1u64, 1, 0]), Some(2));
        assert_eq!(super::first_unsorted::<u64>(&[]), None);
        let e = BuildError::UnsortedKeys { position: 7 };
        assert!(e.to_string().contains("keys[7]"));
        assert!(e.to_string().contains("keys[6]"));
    }

    #[test]
    fn display_formatting() {
        let d: Dataset<u64> = SosdName::Uden64.generate(1_000, 1);
        let model = InterpolationModel::build(&d);
        let table = ShiftTable::build(&model, d.as_slice());
        let text = CorrectionErrorStats::compute(&model, &table, d.as_slice()).to_string();
        assert!(text.contains("corrected"));
    }
}
