//! # Shift-Table: model correction for learned range indexes
//!
//! This crate implements the primary contribution of *"Shift-Table: A
//! Low-latency Learned Index for Range Queries using Model Correction"*
//! (Hadian & Heinis, EDBT 2021): an algorithmic layer that sits after a
//! learned CDF model and corrects its prediction with a single array lookup,
//! eliminating the micro-level error that compact models cannot learn on
//! real-world key distributions.
//!
//! ## How it works
//!
//! A learned model predicts a position `k = ⌊N·F_θ(x)⌋` for a query `x`; the
//! true position is `N·F(x)`. The signed difference is the *drift* of the
//! model at `x`. The Shift-Table is an array with one entry per possible
//! prediction value that records, for all keys predicted at `k`,
//!
//! * `Δ_k` — how far ahead (or behind) the first such key really is, and
//! * `C_k` — how many positions the local search must cover,
//!
//! so the query path becomes: predict → one Shift-Table lookup → bounded
//! local search of `C_k` records (§3, Algorithm 1).
//!
//! ## Crate layout
//!
//! * [`ShiftTable`] — the full-resolution `<Δ, C>` layer (the paper's R-1
//!   configuration, Algorithm 2),
//! * [`CompactShiftTable`] — the compressed midpoint layer with one `Δ̄`
//!   entry per `X` records (the S-X configurations, §3.4),
//! * [`CorrectedIndex`] — a complete range index assembled from any
//!   [`learned_index::CdfModel`], an optional correction layer and the local
//!   search routines (Algorithm 1), implementing
//!   [`algo_index::RangeIndex`]. The index is generic over its key storage:
//!   the default `Arc<[K]>` makes it owned (`'static + Send + Sync`), while
//!   `&[K]` keeps a zero-copy borrowed path,
//! * [`spec`] — runtime composition: parse `"rmi:256+r1"`-style
//!   [`spec::IndexSpec`] strings and build them into owned
//!   `Box<dyn RangeIndex<K>>` trait objects,
//! * [`snapshot`] — the [`SnapshotRead`] trait updatable stores implement
//!   to hand out point-in-time, repeatable [`algo_index::RangeIndex`]
//!   views (the `shift-store` serving layer is the canonical implementor),
//! * [`cost`] — the hardware cost model `L(s)` and the tuning rules of
//!   §3.7/§3.9 (should the layer be enabled? which local search?),
//! * [`error`] — construction errors ([`BuildError`]), the error estimates of
//!   §3.5 (Eq. 8) and empirical error measurement,
//! * [`build`] — sequential and parallel (scoped-thread) builders.
//!
//! ## Batch kernel pipeline
//!
//! Batched lookups ([`algo_index::RangeIndex::lower_bound_batch`]) run
//! through the software-pipelined kernel in [`kernel`]: each block of
//! [`ShiftTableConfig::batch_block`] queries is predicted and corrected in
//! stage loops (so the independent model/layer loads overlap in the memory
//! system), and the local searches split by corrected window size:
//! cache-line-sized windows resolve with early-exit scans (behind a
//! [`ShiftTableConfig::wave_depth`] lookahead touch when the block also
//! holds wide windows), and wide windows resolve breadth-first across the
//! whole block — one iterated-interpolation probe level of independent
//! loads per pass (block-wide memory-level parallelism instead of one
//! lane's serial compare chain). The touch
//! stage is plain safe Rust (bounds-checked reads into a
//! [`std::hint::black_box`] sink — a prefetch without intrinsics); the
//! off-by-default `prefetch` cargo feature swaps it for `_mm_prefetch` on
//! x86_64, which is the only `unsafe` in the crate (audited, and the crate
//! root escalates from `forbid` to `deny` only under that feature). See the
//! [`kernel`] module docs for the wave structure and the tail-truncation
//! invariant its reused stage buffers rely on.
//!
//! ## Example: owned index, built at run time
//!
//! ```
//! use shift_table::prelude::*;
//! use learned_index::prelude::*;
//! use sosd_data::prelude::*;
//! use algo_index::RangeIndex;
//!
//! // A hard, real-world-like dataset and the paper's dummy IM model.
//! let data: Dataset<u64> = SosdName::Osmc64.generate(100_000, 42);
//! let reference: Vec<usize> = data.as_slice().iter().map(|&k| data.lower_bound(k)).collect();
//! let model = InterpolationModel::build(&data);
//!
//! // The index owns its keys (shared `Arc<[u64]>` storage), so it is
//! // 'static + Send + Sync. IM alone is hopeless on this data; IM + a
//! // Shift-Table is exact up to the duplicate-run length.
//! let corrected = CorrectedIndex::owned_builder(data.to_shared(), model)
//!     .with_range_table()
//!     .build()
//!     .expect("keys are sorted");
//!
//! for (&q, &expected) in data.as_slice().iter().zip(&reference).step_by(1000) {
//!     assert_eq!(corrected.lower_bound(q), expected);
//! }
//!
//! // The same index is also constructible from a spec string at run time:
//! let dynamic = IndexSpec::parse("im+r1").unwrap().build(data.to_shared()).unwrap();
//! assert_eq!(dynamic.lower_bound(data.key_at(500)), corrected.lower_bound(data.key_at(500)));
//! ```

// The default build is 100% safe Rust. The opt-in `prefetch` feature uses
// `core::arch` prefetch intrinsics in the batch kernel's touch stage, so it
// relaxes the crate-level `forbid` to `deny` + per-site audited
// `#[allow(unsafe_code)]` with `// SAFETY:` comments (see `kernel.rs`).
#![cfg_attr(not(feature = "prefetch"), forbid(unsafe_code))]
#![cfg_attr(feature = "prefetch", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod build;
pub mod compact;
pub mod config;
pub mod correction;
pub mod cost;
pub mod entry;
pub mod error;
pub mod index;
pub mod kernel;
pub mod local_search;
pub mod snapshot;
pub mod spec;
pub mod stats;
pub mod table;

pub use compact::CompactShiftTable;
pub use config::ShiftTableConfig;
pub use correction::{Correction, SearchHint};
pub use cost::{LatencyModel, TuningAdvisor, TuningDecision};
pub use entry::ShiftEntry;
pub use error::{BuildError, CorrectionErrorStats};
pub use index::{BorrowedCorrectedIndex, CorrectedIndex, CorrectedIndexBuilder, CorrectionLayer};
pub use snapshot::SnapshotRead;
pub use spec::{DynCorrectedIndex, IndexSpec, LayerSpec};
pub use table::ShiftTable;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::compact::CompactShiftTable;
    pub use crate::config::ShiftTableConfig;
    pub use crate::correction::{Correction, SearchHint};
    pub use crate::cost::{LatencyModel, TuningAdvisor, TuningDecision};
    pub use crate::error::{BuildError, CorrectionErrorStats};
    pub use crate::index::{
        BorrowedCorrectedIndex, CorrectedIndex, CorrectedIndexBuilder, CorrectionLayer,
    };
    pub use crate::snapshot::SnapshotRead;
    pub use crate::spec::{DynCorrectedIndex, IndexSpec, LayerSpec};
    pub use crate::table::ShiftTable;
}
