//! The [`Correction`] abstraction: anything that can refine a model
//! prediction into a local-search hint with one lookup.

/// Where the local search should look after correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchHint {
    /// Position the local search starts from.
    pub start: usize,
    /// Guaranteed window length containing the result, when the correction
    /// layer can provide one (`<Δ, C>` range mode). `None` means the hint is
    /// a bare position (midpoint mode) and an unbounded search such as
    /// exponential search must be used (§3.4/§3.8).
    pub window: Option<usize>,
}

impl SearchHint {
    /// A hint with a guaranteed window.
    #[inline]
    pub fn bounded(start: usize, window: usize) -> Self {
        Self {
            start,
            window: Some(window),
        }
    }

    /// A bare position hint without a window.
    #[inline]
    pub fn unbounded(start: usize) -> Self {
        Self {
            start,
            window: None,
        }
    }
}

/// A correction layer: maps a model prediction to a search hint with a single
/// array lookup.
pub trait Correction: Send + Sync {
    /// Correct a (clamped) model prediction.
    fn correct(&self, prediction: usize) -> SearchHint;

    /// Memory footprint of the layer in bytes.
    fn size_bytes(&self) -> usize;

    /// Number of entries in the layer (the paper's `M`).
    fn entry_count(&self) -> usize;

    /// Display name used in reports (e.g. `"Shift-Table(R-1)"`).
    fn name(&self) -> &'static str;
}

impl<T: Correction + ?Sized> Correction for &T {
    fn correct(&self, prediction: usize) -> SearchHint {
        (**self).correct(prediction)
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn entry_count(&self) -> usize {
        (**self).entry_count()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: Correction + ?Sized> Correction for Box<T> {
    fn correct(&self, prediction: usize) -> SearchHint {
        (**self).correct(prediction)
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn entry_count(&self) -> usize {
        (**self).entry_count()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_constructors() {
        let b = SearchHint::bounded(10, 4);
        assert_eq!(b.start, 10);
        assert_eq!(b.window, Some(4));
        let u = SearchHint::unbounded(7);
        assert_eq!(u.start, 7);
        assert_eq!(u.window, None);
    }

    struct Fixed;
    impl Correction for Fixed {
        fn correct(&self, prediction: usize) -> SearchHint {
            SearchHint::bounded(prediction + 1, 2)
        }
        fn size_bytes(&self) -> usize {
            4
        }
        fn entry_count(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn trait_forwarding_through_ref_and_box() {
        let f = Fixed;
        let r: &dyn Correction = &f;
        assert_eq!(r.correct(3).start, 4);
        assert_eq!(r.size_bytes(), 4);
        let b: Box<dyn Correction> = Box::new(Fixed);
        assert_eq!(b.correct(0), SearchHint::bounded(1, 2));
        assert_eq!(b.name(), "fixed");
        assert_eq!(b.entry_count(), 1);
    }
}
