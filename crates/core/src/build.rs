//! Builders for the Shift-Table layers (Algorithm 2 and its variants).
//!
//! The sequential builder is a single pass over the sorted keys plus a
//! backward pass over the layer (the paper's `O(N · F_θ + M)` complexity).
//! A scoped-thread parallel builder splits the key array into contiguous
//! chunks — valid because for a monotone model the predictions of a sorted
//! chunk cover a contiguous range of partitions, so per-chunk partial layers
//! can be merged with `min`/`sum` at the seams (the parallelisation the paper
//! suggests for expensive models in §3.3).

use crate::entry::ShiftEntry;
use learned_index::model::CdfModel;
use sosd_data::key::Key;

/// Sentinel used while accumulating minima.
const UNSET: i64 = i64::MAX;

/// Compute the raw `<Δ, C>` entries of a full-resolution (`M = N`) range-mode
/// Shift-Table, *including* the pseudo-entries for empty partitions
/// (Algorithm 2 lines 3–15).
pub(crate) fn compute_range_entries<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    keys: &[K],
) -> Vec<ShiftEntry> {
    let n = keys.len();
    let mut entries = vec![ShiftEntry::new(UNSET, 0); n];
    accumulate_range(model, keys, 0, n, &mut entries);
    fill_empty_partitions(&mut entries, n);
    entries
}

/// Accumulate drift minima and cardinalities for `keys[lo..hi]` into
/// `entries` (which spans all `n` partitions). `lo` must either be 0 or start
/// a new distinct key run (the caller aligns chunk boundaries).
fn accumulate_range<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    keys: &[K],
    lo: usize,
    hi: usize,
    entries: &mut [ShiftEntry],
) {
    let mut first_occurrence = lo;
    for i in lo..hi {
        if i > lo && keys[i] == keys[i - 1] {
            // duplicate: the CDF target stays at the first occurrence (§3.2)
        } else {
            first_occurrence = i;
        }
        let prediction = model.predict_clamped(keys[i]);
        let drift = first_occurrence as i64 - prediction as i64;
        let e = &mut entries[prediction];
        e.delta = e.delta.min(drift);
        e.count += 1;
    }
}

/// Backward pass: give empty partitions pseudo-entries that point at the
/// search region of the first non-empty partition to their right (§3.1).
/// Trailing empty partitions (nothing to their right) point at the very last
/// record.
fn fill_empty_partitions(entries: &mut [ShiftEntry], n: usize) {
    if n == 0 {
        return;
    }
    let last = entries.len() - 1;
    if entries[last].count == 0 {
        entries[last] = ShiftEntry::new(n as i64 - 1 - last as i64, 1);
    } else if entries[last].delta == UNSET {
        entries[last].delta = 0;
    }
    for k in (0..last).rev() {
        if entries[k].count == 0 {
            // Same absolute region as the partition to the right: that
            // partition's window starts at (k+1) + Δ_{k+1}; expressed
            // relative to k this is Δ_k = Δ_{k+1} + 1.
            entries[k] = ShiftEntry::new(entries[k + 1].delta + 1, entries[k + 1].count);
        }
    }
}

/// Parallel variant of [`compute_range_entries`] using `threads` scoped
/// worker threads. Falls back to the sequential builder for non-monotonic
/// models, tiny inputs or `threads <= 1`.
pub(crate) fn compute_range_entries_parallel<K: Key, M: CdfModel<K> + Sync + ?Sized>(
    model: &M,
    keys: &[K],
    threads: usize,
) -> Vec<ShiftEntry> {
    let n = keys.len();
    if threads <= 1 || n < 4096 || !model.is_monotonic() {
        return compute_range_entries(model, keys);
    }
    // Chunk boundaries aligned so a duplicate run never spans two chunks
    // (the first-occurrence position must be computable inside the chunk).
    let mut bounds = vec![0usize];
    for t in 1..threads {
        let mut b = n * t / threads;
        while b < n && b > 0 && keys[b] == keys[b - 1] {
            b += 1;
        }
        // lint: allow(panic) bounds starts with one element and only grows; last() cannot fail
        if b > *bounds.last().unwrap() && b < n {
            bounds.push(b);
        }
    }
    bounds.push(n);

    // Each worker fills its own partial layer; partials are merged with
    // min/sum which is associative, so seams are handled for free.
    let mut partials: Vec<Vec<ShiftEntry>> = Vec::with_capacity(bounds.len() - 1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            handles.push(scope.spawn(move || {
                let mut local = vec![ShiftEntry::new(UNSET, 0); n];
                accumulate_range(model, keys, lo, hi, &mut local);
                local
            }));
        }
        for h in handles {
            // lint: allow(panic) join fails only when the child panicked; re-raising preserves the failure
            partials.push(h.join().expect("shift-table build worker panicked"));
        }
    });

    // Reduce in place into the first partial instead of allocating a fresh
    // n-entry accumulator — one full-layer allocation saved per build, which
    // the serving layer's rebuild path hits on every epoch swap.
    let mut partials = partials.into_iter();
    // lint: allow(panic) the chunking above yields at least one chunk for a non-empty layer
    let mut entries = partials.next().expect("at least one build chunk");
    for partial in partials {
        for (e, p) in entries.iter_mut().zip(partial) {
            if p.count > 0 {
                e.delta = e.delta.min(p.delta);
                e.count += p.count;
            }
        }
    }
    fill_empty_partitions(&mut entries, n);
    entries
}

/// Compute the midpoint drifts `Δ̄` of a compact (S-X) layer with `m`
/// partitions over every `sample_step`-th key (§3.4; `sample_step = 1` uses
/// every key, larger values implement the sampling-based construction),
/// plus the root-mean-square residual `sqrt(E[(drift − Δ̄)²])` of the
/// sampled keys — derived from the per-partition drift moments accumulated
/// by the same single pass, so the layer's build-time error statistic costs
/// no extra model evaluation.
pub(crate) fn compute_midpoint_deltas_and_residual<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    keys: &[K],
    m: usize,
    sample_step: usize,
) -> (Vec<i64>, f64) {
    let n = keys.len();
    let m = m.max(1);
    let sample_step = sample_step.max(1);
    let mut sums = vec![0i128; m];
    let mut sums_sq = vec![0.0f64; m];
    let mut counts = vec![0u64; m];
    if n > 0 {
        let mut first_occurrence = 0usize;
        for i in 0..n {
            if i > 0 && keys[i] == keys[i - 1] {
                // keep first_occurrence
            } else {
                first_occurrence = i;
            }
            if i % sample_step != 0 {
                continue;
            }
            let prediction = model.predict_clamped(keys[i]);
            let partition = partition_of(prediction, m, n);
            let drift = first_occurrence as i128 - prediction as i128;
            sums[partition] += drift;
            sums_sq[partition] += (drift as f64) * (drift as f64);
            counts[partition] += 1;
        }
    }
    let mut deltas = vec![i64::MAX; m];
    for k in 0..m {
        if counts[k] > 0 {
            deltas[k] = (sums[k] / counts[k] as i128) as i64;
        }
    }
    // RMS residual from the moments: E[(x − Δ̄)²] = E[x²] − 2Δ̄E[x] + Δ̄²
    // per populated partition, weighted by partition cardinality.
    let mut residual_sq = 0.0f64;
    let mut total = 0u64;
    for k in 0..m {
        if counts[k] > 0 {
            let c = counts[k] as f64;
            let d = deltas[k] as f64;
            residual_sq += sums_sq[k] - 2.0 * d * (sums[k] as f64) + c * d * d;
            total += counts[k];
        }
    }
    let residual = if total == 0 {
        0.0
    } else {
        (residual_sq.max(0.0) / total as f64).sqrt()
    };
    // Empty partitions copy the nearest populated neighbour (right first,
    // matching the range-mode backward fill, then left for trailing gaps).
    let mut next: i64 = 0;
    let mut have_next = false;
    for k in (0..m).rev() {
        if deltas[k] != i64::MAX {
            next = deltas[k];
            have_next = true;
        } else if have_next {
            deltas[k] = next;
        }
    }
    let mut prev: i64 = 0;
    for d in deltas.iter_mut() {
        if *d == i64::MAX {
            *d = prev;
        } else {
            prev = *d;
        }
    }
    (deltas, residual)
}

/// Map a prediction (on the `[0, n)` record scale) to a partition index on
/// the `[0, m)` layer scale.
#[inline]
pub(crate) fn partition_of(prediction: usize, m: usize, n: usize) -> usize {
    if n == 0 || m == 0 {
        return 0;
    }
    (((prediction as u128) * (m as u128)) / (n as u128)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use learned_index::linear::InterpolationModel;
    use sosd_data::prelude::*;

    #[test]
    fn paper_figure5_example() {
        // Figure 5: 100 records in [0, 999], model F_θ(x) = x / 1000, so the
        // prediction for key x is ⌊x / 10⌋. The running example says that for
        // key 771 (position 37) the correction is Δ₇₇ = −41 with a window of
        // length 2 covering [36, 37].
        struct DivTen;
        impl CdfModel<u64> for DivTen {
            fn predict(&self, key: u64) -> usize {
                (key / 10) as usize
            }
            fn key_count(&self) -> usize {
                100
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "div10"
            }
        }
        // Reconstruct the visible portion of the figure's data: positions
        // 35..=39 hold keys 769, 770, 771, 782, 785.
        let mut keys: Vec<u64> = Vec::new();
        // 35 smaller keys packed below 769 (their exact values only matter in
        // that they are < 700 so they do not share partitions with the keys
        // of interest).
        for i in 0..35u64 {
            keys.push(i * 20); // 0, 20, ..., 680
        }
        keys.extend_from_slice(&[769, 770, 771, 782, 785]);
        // Fill the remaining 60 positions with keys ≥ 830.
        for i in 0..60u64 {
            keys.push(830 + i * 2);
        }
        assert_eq!(keys.len(), 100);
        assert!(keys.is_sorted());

        let entries = compute_range_entries(&DivTen, &keys);
        // Partition 77 receives keys 770, 771 and 779-ish? -> in our data 770
        // and 771 (positions 36, 37): Δ = 36 - 77 = -41, C = 2.
        assert_eq!(entries[77].delta, -41);
        assert_eq!(entries[77].count, 2);
        // Partition 76 receives key 769 (position 35): Δ = 35 - 76 = -41.
        assert_eq!(entries[76].delta, -41);
        assert_eq!(entries[76].count, 1);
        // Partition 78 receives keys 782 and 785 (positions 38, 39).
        assert_eq!(entries[78].delta, -40);
        assert_eq!(entries[78].count, 2);
    }

    #[test]
    fn empty_partition_backfill_points_at_next_region() {
        // Keys 0, 30: with F_θ(x) = x/10 over n=2 records... construct
        // directly: use a model predicting key/10 over 4 records with keys
        // clustered so partitions 1 and 2 are empty.
        struct Quarter;
        impl CdfModel<u64> for Quarter {
            fn predict(&self, key: u64) -> usize {
                (key / 10) as usize
            }
            fn key_count(&self) -> usize {
                4
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "quarter"
            }
        }
        let keys = vec![1u64, 2, 3, 35];
        // Predictions: 0,0,0,3 → partitions 1 and 2 empty.
        let entries = compute_range_entries(&Quarter, &keys);
        assert_eq!(entries[0], ShiftEntry::new(0, 3));
        assert_eq!(entries[3], ShiftEntry::new(0, 1));
        // Pseudo-entries: partition 2 mirrors partition 3 shifted by one,
        // partition 1 mirrors partition 2 shifted by one.
        assert_eq!(entries[2], ShiftEntry::new(1, 1));
        assert_eq!(entries[1], ShiftEntry::new(2, 1));
        // They all resolve to the same absolute window start (position 3).
        assert_eq!(2 + entries[2].delta, 3);
        assert_eq!(1 + entries[1].delta, 3);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn windows_always_contain_the_true_position() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(20_000, 3);
            let model = InterpolationModel::build(&d);
            let entries = compute_range_entries(&model, d.as_slice());
            let keys = d.as_slice();
            let mut first_occurrence = 0usize;
            for (i, &k) in keys.iter().enumerate() {
                if i > 0 && keys[i - 1] == k {
                    // duplicate
                } else {
                    first_occurrence = i;
                }
                let pred = model.predict_clamped(k);
                let e = entries[pred];
                let start = pred as i64 + e.delta;
                assert!(
                    start <= first_occurrence as i64
                        && (first_occurrence as i64) < start + e.count as i64,
                    "{name}: key {k} pos {first_occurrence} outside window [{start}, {})",
                    start + e.count as i64
                );
            }
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn parallel_build_matches_sequential() {
        for name in [SosdName::Face64, SosdName::Wiki64, SosdName::Logn64] {
            let d: Dataset<u64> = name.generate(30_000, 9);
            let model = InterpolationModel::build(&d);
            let seq = compute_range_entries(&model, d.as_slice());
            for threads in [2usize, 3, 8] {
                let par = compute_range_entries_parallel(&model, d.as_slice(), threads);
                assert_eq!(seq, par, "{name} with {threads} threads");
            }
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn parallel_build_is_equivalent_on_every_generator_and_thread_count() {
        // The chunk-boundary audit as a property: `build_parallel ≡ build`
        // over every SOSD generator, with 1 thread (sequential fallback), 2
        // threads (one seam) and 7 threads (seams at non-power-of-two,
        // non-divisor offsets). n exceeds the 4096-key fallback threshold so
        // the scoped-thread path actually runs.
        let n = 6_000;
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(n, 13);
            let model = InterpolationModel::build(&d);
            let seq = compute_range_entries(&model, d.as_slice());
            for threads in [1usize, 2, 7] {
                let par = compute_range_entries_parallel(&model, d.as_slice(), threads);
                assert_eq!(seq, par, "{name} with {threads} threads");
            }
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn parallel_build_never_splits_a_duplicate_run() {
        use sosd_data::rng::SplitMix64;
        // Duplicate-heavy key columns whose run boundaries land on (and far
        // past) the naive n·t/threads chunk offsets: the boundary-alignment
        // loop must push every seam to the start of a fresh run, or the
        // per-chunk first-occurrence tracking diverges from the serial build.
        let mut rng = SplitMix64::new(0xD095);
        let mut keys: Vec<u64> = Vec::new();
        while keys.len() < 10_000 {
            let v = rng.next_below(500);
            let run = 1 + rng.next_below(900) as usize;
            keys.extend(std::iter::repeat_n(v, run));
        }
        keys.sort_unstable();
        let model = InterpolationModel::from_sorted_keys(&keys);
        let seq = compute_range_entries(&model, &keys);
        for threads in [2usize, 3, 7, 16] {
            let par = compute_range_entries_parallel(&model, &keys, threads);
            assert_eq!(seq, par, "duplicate-heavy with {threads} threads");
        }

        // Degenerate: one run covering almost the whole column — every chunk
        // boundary collapses into the run's end.
        let mut keys = vec![7u64; 9_000];
        keys.splice(0..0, [1u64, 2, 3]);
        keys.extend([9u64, 10]);
        let model = InterpolationModel::from_sorted_keys(&keys);
        let seq = compute_range_entries(&model, &keys);
        for threads in [2usize, 7] {
            let par = compute_range_entries_parallel(&model, &keys, threads);
            assert_eq!(seq, par, "mega-run with {threads} threads");
        }
    }

    #[test]
    fn parallel_build_falls_back_for_tiny_input() {
        let d: Dataset<u64> = SosdName::Uden64.generate(100, 1);
        let model = InterpolationModel::build(&d);
        let seq = compute_range_entries(&model, d.as_slice());
        let par = compute_range_entries_parallel(&model, d.as_slice(), 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn midpoint_deltas_average_the_drift() {
        // Model that always predicts position 0 over 10 keys: drifts are
        // 0..9, the midpoint over one partition is their mean = 4.
        struct Zero;
        impl CdfModel<u64> for Zero {
            fn predict(&self, _key: u64) -> usize {
                0
            }
            fn key_count(&self) -> usize {
                10
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "zero"
            }
        }
        let keys: Vec<u64> = (0..10u64).collect();
        let (deltas, residual) = compute_midpoint_deltas_and_residual(&Zero, &keys, 1, 1);
        assert_eq!(deltas, vec![4]);
        // Drifts 0..=9 around Δ̄ = 4: residuals −4..=5, RMS = sqrt(8.5).
        assert!(
            (residual - 8.5f64.sqrt()).abs() < 1e-9,
            "residual {residual}"
        );
    }

    #[test]
    fn midpoint_empty_partitions_copy_neighbours() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 3).collect();
        let d = Dataset::from_keys("d", keys);
        let model = InterpolationModel::build(&d);
        let (deltas, _) = compute_midpoint_deltas_and_residual(&model, d.as_slice(), 400, 1);
        assert_eq!(deltas.len(), 400);
        assert!(deltas.iter().all(|&d| d != i64::MAX));
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn sampling_build_is_close_to_full_build() {
        let d: Dataset<u64> = SosdName::Face64.generate(50_000, 5);
        let model = InterpolationModel::build(&d);
        let full = compute_midpoint_deltas_and_residual(&model, d.as_slice(), 1000, 1).0;
        let sampled = compute_midpoint_deltas_and_residual(&model, d.as_slice(), 1000, 16).0;
        let mut diffs = 0usize;
        for (f, s) in full.iter().zip(sampled.iter()) {
            if (f - s).abs() > 200 {
                diffs += 1;
            }
        }
        assert!(
            diffs < full.len() / 10,
            "sampled layer diverges from the full layer in {diffs}/{} partitions",
            full.len()
        );
    }

    #[test]
    fn partition_of_maps_edges_correctly() {
        assert_eq!(partition_of(0, 10, 100), 0);
        assert_eq!(partition_of(99, 10, 100), 9);
        assert_eq!(partition_of(50, 10, 100), 5);
        assert_eq!(partition_of(0, 10, 0), 0);
        assert_eq!(partition_of(5, 0, 100), 0);
    }

    #[test]
    fn empty_keys_produce_empty_layers() {
        let d: Dataset<u64> = Dataset::from_keys("e", vec![]);
        let model = InterpolationModel::build(&d);
        assert!(compute_range_entries(&model, d.as_slice()).is_empty());
        let (deltas, residual) = compute_midpoint_deltas_and_residual(&model, d.as_slice(), 4, 1);
        assert_eq!(deltas, vec![0, 0, 0, 0]);
        assert_eq!(residual, 0.0);
    }
}
