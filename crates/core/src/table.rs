//! The full-resolution range-mode Shift-Table (the paper's R-1 layer).
//!
//! One `<Δ_k, C_k>` entry per possible model prediction (`M = N`): a query's
//! prediction `k` is corrected to the window
//! `[k + Δ_k, k + Δ_k + C_k − 1]`, which is guaranteed to contain the lower
//! bound of every indexed key predicted at `k` (and, for valid monotone
//! models, to contain-or-abut the lower bound of non-indexed queries, §3.1).

use crate::build;
use crate::correction::{Correction, SearchHint};
use crate::entry::{EntryStorage, ShiftEntry};
use learned_index::model::CdfModel;
use sosd_data::key::Key;

/// Range-mode Shift-Table: `<Δ, C>` pairs, one per prediction value.
#[derive(Debug, Clone)]
pub struct ShiftTable {
    entries: EntryStorage,
    n: usize,
}

impl ShiftTable {
    /// Build the layer for `model` over the sorted `keys` (Algorithm 2).
    ///
    /// Complexity: `O(N · cost(F_θ) + N)` — one model execution per key and
    /// one backward pass over the layer.
    pub fn build<K: Key, M: CdfModel<K> + ?Sized>(model: &M, keys: &[K]) -> Self {
        let entries = build::compute_range_entries(model, keys);
        Self::from_entries(entries, keys.len())
    }

    /// Build the layer in parallel with `threads` scoped worker threads.
    /// Falls back to the sequential build for non-monotone models or small
    /// inputs.
    pub fn build_parallel<K: Key, M: CdfModel<K> + Sync + ?Sized>(
        model: &M,
        keys: &[K],
        threads: usize,
    ) -> Self {
        let entries = build::compute_range_entries_parallel(model, keys, threads);
        Self::from_entries(entries, keys.len())
    }

    /// Assemble a layer from precomputed entries (used by the builders and by
    /// tests that construct layers directly).
    pub fn from_entries(entries: Vec<ShiftEntry>, n: usize) -> Self {
        debug_assert_eq!(entries.len(), n, "range mode requires M == N");
        Self {
            entries: EntryStorage::pack(&entries),
            n,
        }
    }

    /// Number of keys (== number of entries, `M = N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the layer has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetch the entry for prediction `k` (clamped into range).
    #[inline]
    pub fn entry(&self, k: usize) -> ShiftEntry {
        if self.entries.is_empty() {
            return ShiftEntry::default();
        }
        self.entries.get(k.min(self.entries.len() - 1))
    }

    /// True if the narrow `(i16, u16)` encoding was selected (§3.9).
    pub fn is_narrow(&self) -> bool {
        self.entries.is_narrow()
    }

    /// Iterate over the window lengths `C_k` (used by the cost model and by
    /// the Eq. 8 error estimate).
    pub fn window_lengths(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.entries.len()).map(move |k| self.entries.get(k).count)
    }

    /// Iterate over the `<Δ_k, C_k>` entries.
    pub fn entries(&self) -> impl Iterator<Item = ShiftEntry> + '_ {
        (0..self.entries.len()).map(move |k| self.entries.get(k))
    }

    /// The expected prediction error after correction under a
    /// uniformly-from-the-keys query distribution (Eq. 8):
    /// `ē = (1 / 2N) · Σ_k C_k²`.
    pub fn expected_error(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let sum_sq: f64 = self.window_lengths().map(|c| (c as f64) * (c as f64)).sum();
        sum_sq / (2.0 * self.n as f64)
    }
}

impl Correction for ShiftTable {
    #[inline]
    fn correct(&self, prediction: usize) -> SearchHint {
        if self.entries.is_empty() {
            return SearchHint::bounded(0, 0);
        }
        let k = prediction.min(self.entries.len() - 1);
        let e = self.entries.get(k);
        let start = (k as i64 + e.delta).clamp(0, self.n as i64) as usize;
        let window = (e.count as usize).min(self.n - start.min(self.n));
        SearchHint::bounded(start, window)
    }

    fn size_bytes(&self) -> usize {
        self.entries.size_bytes()
    }

    fn entry_count(&self) -> usize {
        self.entries.len()
    }

    fn name(&self) -> &'static str {
        "Shift-Table(R-1)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use learned_index::linear::InterpolationModel;
    use sosd_data::prelude::*;

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn corrected_windows_cover_every_indexed_key() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(10_000, 21);
            let model = InterpolationModel::build(&d);
            let table = ShiftTable::build(&model, d.as_slice());
            assert_eq!(table.len(), d.len());
            for (i, &k) in d.as_slice().iter().enumerate() {
                let target = d.lower_bound(k);
                let _ = i;
                let hint = table.correct(model.predict_clamped(k));
                let w = hint.window.unwrap();
                assert!(
                    hint.start <= target && target < hint.start + w.max(1),
                    "{name}: key {k} target {target} outside window [{}, {})",
                    hint.start,
                    hint.start + w
                );
            }
        }
    }

    #[test]
    fn expected_error_matches_hand_computation() {
        // Construct entries directly: windows of length 1, 3 and 2 over 6 keys.
        let entries = vec![
            ShiftEntry::new(0, 1),
            ShiftEntry::new(0, 3),
            ShiftEntry::new(0, 2),
            ShiftEntry::new(0, 0),
            ShiftEntry::new(0, 0),
            ShiftEntry::new(0, 0),
        ];
        let table = ShiftTable::from_entries(entries, 6);
        // Eq. 8: (1² + 3² + 2²) / (2 · 6) = 14 / 12.
        assert!((table.expected_error() - 14.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_model_yields_unit_windows_and_tiny_error() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 7).collect();
        let d = Dataset::from_keys("lin", keys);
        let model = InterpolationModel::build(&d);
        let table = ShiftTable::build(&model, d.as_slice());
        assert!(table.expected_error() <= 1.0);
        assert!(table.window_lengths().all(|c| c <= 2));
        // A perfect model on small data also packs into the narrow encoding.
        assert!(table.is_narrow());
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn wide_encoding_used_for_huge_drift() {
        // A model with an enormous bias forces i64 deltas.
        struct AlwaysZero(usize);
        impl CdfModel<u64> for AlwaysZero {
            fn predict(&self, _key: u64) -> usize {
                0
            }
            fn key_count(&self) -> usize {
                self.0
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "zero"
            }
        }
        let n = 100_000;
        let keys: Vec<u64> = (0..n as u64).collect();
        let table = ShiftTable::build(&AlwaysZero(n), &keys);
        assert!(!table.is_narrow(), "drift up to n-1 cannot fit in i16");
        // All keys predicted at 0: window covers everything.
        let hint = table.correct(0);
        assert_eq!(hint.start, 0);
        assert_eq!(hint.window, Some(n));
    }

    #[test]
    fn correct_clamps_out_of_range_predictions() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(1_000, 2);
        let model = InterpolationModel::build(&d);
        let table = ShiftTable::build(&model, d.as_slice());
        let hint = table.correct(usize::MAX);
        assert!(hint.start <= d.len());
        assert!(hint.start + hint.window.unwrap() <= d.len());
    }

    #[test]
    fn empty_table() {
        let keys: Vec<u64> = vec![];
        let model = InterpolationModel::from_sorted_keys(&keys);
        let table = ShiftTable::build(&model, &keys);
        assert!(table.is_empty());
        assert_eq!(table.correct(5), SearchHint::bounded(0, 0));
        assert_eq!(table.expected_error(), 0.0);
        assert_eq!(Correction::size_bytes(&table), 0);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn size_bytes_reflects_encoding() {
        let d: Dataset<u64> = SosdName::Uden64.generate(10_000, 1);
        let model = InterpolationModel::build(&d);
        let table = ShiftTable::build(&model, d.as_slice());
        let expected = if table.is_narrow() { 4 } else { 12 } * d.len();
        assert_eq!(Correction::size_bytes(&table), expected);
        assert_eq!(table.entry_count(), d.len());
    }
}
