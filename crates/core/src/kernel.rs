//! # Batch kernel pipeline
//!
//! The software-pipelined batch lower-bound kernel behind
//! [`crate::index::CorrectedIndex`]'s `lower_bound_batch`.
//!
//! ## Wave structure
//!
//! A batch is cut into blocks of [`ShiftTableConfig::batch_block`] queries
//! (default [`DEFAULT_BATCH_BLOCK`]). Within a block the lookup is split into
//! stages, and each stage runs as its own tight loop so its memory traffic is
//! issued back-to-back instead of interleaved with unrelated work:
//!
//! 1. **Predict** — one model execution per query; model parameters stay hot
//!    in registers/L1 across the whole block.
//! 2. **Correct** — one Shift-Table slot load per prediction; the slots are
//!    independent, so the block's layer loads all overlap in the memory
//!    system (memory-level parallelism) instead of serializing.
//! 3. **Small windows** — lookups whose corrected window is below the
//!    linear/binary threshold (a cache line or two) resolve with an
//!    early-exit linear scan. A block with no wide window — detected for
//!    free during the correct stage — takes a fast path with no lane lists
//!    at all; mixed blocks scan behind a [`ShiftTableConfig::wave_depth`]
//!    lookahead touch that pulls wave `i + 1`'s lines while wave `i`
//!    compares.
//! 4. **Wavefront, large windows** — lookups with wide windows would each
//!    serialize dependent loads down a binary-search chain, so they resolve
//!    *breadth-first across the block*: a bracket-init pass loads every wide
//!    lane's boundary keys back-to-back, then each level advances every
//!    surviving lane by one iterated-interpolation probe (cached boundary
//!    keys make the interpolant free; a lane whose probe shrank its bracket
//!    by less than a quarter bisects on its next level instead, so
//!    interpolation-hostile data still converges in `O(log w)` levels
//!    without taxing the lanes where interpolation is working). A
//!    level's loads are independent across lanes, so the block extracts
//!    memory-level parallelism that a lane-at-a-time search cannot. Lanes
//!    leave the wavefront at [`WAVEFRONT_FINISH`] wide and finish with an
//!    early-exit scan from a line the probes already warmed. Both paths end
//!    with the §3.8 repair gallop when the window missed (non-monotone model
//!    or far out-of-range query).
//!
//! ## Why the touch stage is safe-Rust prefetch
//!
//! The default build issues no intrinsics: the touch stage performs ordinary
//! bounds-checked reads (`keys[first] < q`) whose results accumulate into a
//! counter fed to [`std::hint::black_box`] once per block. The loads are real
//! (the black-box sink keeps them from being dead-code-eliminated), they
//! carry no side effects, and their values are never used for an answer — so
//! they behave exactly like a prefetch, in 100% safe code. With the
//! off-by-default `prefetch` cargo feature (x86_64 only) the same helper
//! issues `_mm_prefetch` intrinsics instead; that is the only `unsafe` in the
//! crate and is audited at the call site.
//!
//! ## Tail-truncation invariant
//!
//! Stage state lives in fixed-capacity stack buffers
//! (`[_; MAX_BATCH_BLOCK]`) reused across blocks, so entries past the current
//! chunk length still hold values from the *previous* block. Every stage loop
//! is therefore truncated to the chunk length up front — no loop may iterate
//! the full buffer, or it would consume a stale prediction/hint and silently
//! return a wrong position. (Regression-tested in `index.rs` and here.)
//!
//! The stage-blocked predecessors of the pipelined kernel (`*_blocked`) are
//! kept verbatim: they are the benchmark baseline the acceptance criterion
//! compares against and the differential-test oracle.

use crate::compact::CompactShiftTable;
use crate::config::ShiftTableConfig;
use crate::correction::{Correction, SearchHint};
use crate::local_search::{binary_in_window, exponential_around, linear_in_window};
use crate::table::ShiftTable;
use learned_index::model::CdfModel;
use sosd_data::key::Key;

/// Default queries per amortization block (the historical `BATCH_BLOCK`).
pub const DEFAULT_BATCH_BLOCK: usize = 64;

/// Capacity of the kernel's stack stage buffers; `batch_block` is clamped to
/// this at query time.
pub const MAX_BATCH_BLOCK: usize = 128;

/// Default lookups per pipeline wave: deep enough that the touch stage runs
/// a cache-miss latency ahead of the resolve stage, small enough that the
/// touched lines are still resident when their wave resolves.
pub const DEFAULT_WAVE_DEPTH: usize = 8;

/// Bracket width at which the wavefront search stops probing and hands the
/// lane to an early-exit scan: six cache lines of `u64` keys. Below this
/// width a probe saves at most a couple of sequential, prefetch-friendly
/// lines while adding a level of bookkeeping to every surviving lane —
/// measured across the SOSD sweep, 48 beat both 16 and 64.
pub const WAVEFRONT_FINISH: usize = 48;

/// Is `pos` the lower bound of `q` in `keys`?
#[inline]
pub(crate) fn is_lower_bound<K: Key>(keys: &[K], pos: usize, q: K) -> bool {
    let n = keys.len();
    (pos == n || keys[pos] >= q) && (pos == 0 || keys[pos - 1] < q)
}

/// Touch the first and last key of a predicted window — the safe-Rust
/// prefetch described in the module docs. Returns a value that must flow
/// into a [`std::hint::black_box`] sink so the loads are not elided.
#[cfg(not(all(feature = "prefetch", target_arch = "x86_64")))]
#[inline]
fn touch_span<K: Key>(keys: &[K], start: usize, window: usize, q: K) -> usize {
    let n = keys.len();
    debug_assert!(n > 0, "kernel entry points guard the empty-key case");
    let first = start.min(n - 1);
    let last = (start + window.saturating_sub(1)).min(n - 1);
    (keys[first] < q) as usize + (keys[last] < q) as usize
}

/// Touch via `_mm_prefetch` (the `prefetch` feature's x86_64 fast path): the
/// same window endpoints are hinted into L1 without executing a comparison.
#[cfg(all(feature = "prefetch", target_arch = "x86_64"))]
#[allow(unsafe_code)]
#[inline]
fn touch_span<K: Key>(keys: &[K], start: usize, window: usize, _q: K) -> usize {
    use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    let n = keys.len();
    debug_assert!(n > 0, "kernel entry points guard the empty-key case");
    let first = start.min(n - 1);
    let last = (start + window.saturating_sub(1)).min(n - 1);
    // SAFETY: `first` and `last` are clamped to `n - 1` above, so both
    // pointers lie inside the `keys` allocation; `_mm_prefetch` is a pure
    // cache hint that performs no memory access and cannot fault.
    unsafe {
        _mm_prefetch::<_MM_HINT_T0>(keys.as_ptr().add(first).cast::<i8>());
        _mm_prefetch::<_MM_HINT_T0>(keys.as_ptr().add(last).cast::<i8>());
    }
    0
}

/// Touch helper for a range-mode hint (window endpoints).
#[inline]
fn touch_hint<K: Key>(keys: &[K], hint: SearchHint, q: K) -> usize {
    touch_span(keys, hint.start, hint.window.unwrap_or(1).max(1), q)
}

/// Validate a resolved position and fall back to the §3.8 repair gallop when
/// the window missed (non-monotone model or far out-of-range query).
#[inline]
fn repair<K: Key>(keys: &[K], pos: usize, q: K) -> usize {
    if is_lower_bound(keys, pos, q) {
        pos
    } else {
        exponential_around(keys, pos.min(keys.len() - 1), q)
    }
}

/// The clamped `(block, wave)` pair for a config.
#[inline]
fn block_and_wave(config: &ShiftTableConfig) -> (usize, usize) {
    let block = config.batch_block.clamp(1, MAX_BATCH_BLOCK);
    let wave = config.wave_depth.clamp(1, block);
    (block, wave)
}

/// Pipelined batch lower bounds through a range-mode (`<Δ, C>`) layer.
pub(crate) fn run_range<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    table: &ShiftTable,
    keys: &[K],
    config: &ShiftTableConfig,
    queries: &[K],
    out: &mut [usize],
) {
    if keys.is_empty() {
        out.fill(0);
        return;
    }
    let (block, wave) = block_and_wave(config);
    let threshold = config.linear_to_binary_threshold;
    // Kernel statistics: plain local accumulators in the loop, one set of
    // relaxed atomic adds at the end — and only when someone is listening
    // (the gate is a predicted branch per call when stats are off).
    let stats_on = config.kernel_stats || crate::stats::enabled();
    let (mut st_blocks, mut st_wide, mut st_levels) = (0u64, 0u64, 0u64);
    let mut predictions = [0usize; MAX_BATCH_BLOCK];
    let mut hints = [SearchHint::unbounded(0); MAX_BATCH_BLOCK];
    // Lane lists and wavefront state, indexed by cohort slot.
    let mut small = [0usize; MAX_BATCH_BLOCK];
    let mut big = [0usize; MAX_BATCH_BLOCK];
    let mut blo = [0usize; MAX_BATCH_BLOCK];
    let mut bhi = [0usize; MAX_BATCH_BLOCK];
    let mut klo = [0.0f64; MAX_BATCH_BLOCK];
    let mut khi = [0.0f64; MAX_BATCH_BLOCK];
    let mut act = [0usize; MAX_BATCH_BLOCK];
    // Per-lane adaptive-bisection flag: set when the lane's last
    // interpolation probe shrank its bracket by less than a quarter, making
    // the *next* level bisect instead (see the probe loop below).
    let mut bis = [false; MAX_BATCH_BLOCK];
    let mut touched = 0usize;
    for (qs, os) in queries.chunks(block).zip(out.chunks_mut(block)) {
        // Tail-truncation invariant (module docs): every stage loop runs
        // over `..len` of the reused stage buffers.
        let len = qs.len();
        let predictions = &mut predictions[..len];
        let hints = &mut hints[..len];
        let os = &mut os[..len];
        // Stage 1: predict the whole block.
        for (p, &q) in predictions.iter_mut().zip(qs.iter()) {
            *p = model.predict_clamped(q);
        }
        // Stage 2: correct the whole block — independent layer-slot loads,
        // issued back-to-back. Piggyback a count of wide windows so an
        // all-small block (the common case on well-modelled data) can skip
        // the lane-split stage entirely.
        let mut wide = 0usize;
        for (h, &p) in hints.iter_mut().zip(predictions.iter()) {
            let hint = table.correct(p);
            wide += (hint.window.unwrap_or(0).max(1) >= threshold) as usize;
            *h = hint;
        }
        // Stage 3: split the block by window size. Small windows fit a cache
        // line or two and resolve with an early-exit scan behind a touch
        // wave; large windows go through the block-wide wavefront search.
        let cutoff = threshold.max(WAVEFRONT_FINISH);
        let (mut ns, mut nb) = (0usize, 0usize);
        if wide > 0 {
            for (i, h) in hints.iter().enumerate() {
                if h.window.unwrap_or(0).max(1) < threshold {
                    small[ns] = i;
                    ns += 1;
                } else {
                    big[nb] = i;
                    nb += 1;
                }
            }
        }
        // Small lanes. A block with no wide windows resolves in lane order
        // with no list indirection — each lane is one or two independent
        // loads, which the core overlaps on its own. Mixed blocks go through
        // the small-lane list behind a `wave_depth` lookahead touch: while
        // lane `j` resolves, lane `j + wave`'s window lines are requested,
        // so the scan finds them already in flight.
        if wide == 0 {
            for (i, (&q, o)) in qs.iter().zip(os.iter_mut()).enumerate() {
                let window = hints[i].window.unwrap_or(0).max(1);
                let pos = linear_in_window(keys, hints[i].start, window, q);
                *o = repair(keys, pos, q);
            }
        } else {
            for j in 0..ns {
                if let Some(&t) = small[..ns].get(j + wave) {
                    touched += touch_hint(keys, hints[t], qs[t]);
                }
                let i = small[j];
                let window = hints[i].window.unwrap_or(0).max(1);
                let pos = linear_in_window(keys, hints[i].start, window, qs[i]);
                os[i] = repair(keys, pos, qs[i]);
            }
        }
        // Big lanes, level 0: bracket every lane's window and cache its
        // boundary keys — the two end loads of each lane issue back-to-back
        // across the block. The bracket invariant is `partition_point`'s:
        // every index below `blo` holds a key `< q`, every index at or above
        // `bhi` a key `>= q`, so the answer stays in `[blo, bhi]`.
        let mut active = 0usize;
        for (b, &i) in big.iter().enumerate().take(nb) {
            let start = hints[i].start.min(keys.len());
            let end = start
                .saturating_add(hints[i].window.unwrap_or(0).max(1))
                .min(keys.len());
            blo[b] = start;
            bhi[b] = end;
            if end - start > cutoff {
                // Probing lane: cache the boundary keys interpolation needs.
                klo[b] = keys[start].to_f64();
                khi[b] = keys[end - 1].to_f64();
                bis[b] = false;
                act[active] = b;
                active += 1;
            } else {
                // Scan-only lane: the bracket is already narrow enough for
                // the finish scan. Touch its first and expected-middle lines
                // instead of the boundary keys — the end key would never be
                // used, while the scan's own lines are now in flight.
                touched += touch_span(keys, start, (end - start) / 2 + 1, qs[i]);
            }
        }
        // Big lanes, probe levels: breadth-first iterated interpolation.
        // Each pass advances *every* wide bracket by one probe — exactly one
        // new key load per lane per level, so a level's loads are
        // independent and overlap in the memory system instead of
        // serializing down one lane's compare chain. Interpolation probes
        // collapse a smooth bracket in O(log log w) levels where binary
        // needs O(log w); each lane *adapts* per level — a probe that shrank
        // its bracket by less than a quarter flags the lane to bisect on its
        // next level (after which it tries interpolating again), so
        // interpolation-hostile windows (edge-hugging probes on clustered
        // keys) alternate probe/halve and still finish in O(log w) levels,
        // while well-modelled lanes in the same block never pay a blind
        // scheduled halving.
        // The cached boundary keys come from prior probes, so interpolation
        // never costs an extra load. The active list compacts each level, so
        // finished lanes cost nothing.
        let mut level = 0usize;
        while active > 0 {
            let mut kept = 0usize;
            for s in 0..active {
                let b = act[s];
                let (lo, hi) = (blo[b], bhi[b]);
                let q = qs[big[b]];
                let span = khi[b] - klo[b];
                let g = if bis[b] || span <= 0.0 {
                    lo + (hi - lo) / 2
                } else {
                    let frac = ((q.to_f64() - klo[b]) / span).clamp(0.0, 1.0);
                    (lo + (frac * (hi - 1 - lo) as f64) as usize).min(hi - 1)
                };
                let kg = keys[g];
                if kg < q {
                    blo[b] = g + 1;
                    klo[b] = kg.to_f64();
                } else {
                    bhi[b] = g;
                    khi[b] = kg.to_f64();
                }
                let new_w = bhi[b] - blo[b];
                // A bisection shrinks by half, so this resets to false and
                // the lane alternates back to interpolation next level.
                bis[b] = 4 * new_w > 3 * (hi - lo);
                if new_w > cutoff {
                    act[kept] = b;
                    kept += 1;
                }
            }
            active = kept;
            level += 1;
        }
        // Big lanes, finish: the surviving bracket starts at a line a probe
        // already pulled — an early-exit forward scan (sequential,
        // speculation- and prefetch-friendly compares) beats the serial
        // conditional-move chain a binary finish would pay. Validate/repair
        // closes the contract.
        for (b, &i) in big.iter().enumerate().take(nb) {
            let pos = linear_in_window(keys, blo[b], bhi[b] - blo[b], qs[i]);
            os[i] = repair(keys, pos, qs[i]);
        }
        if stats_on {
            st_blocks += 1;
            st_wide += nb as u64;
            st_levels += level as u64;
        }
    }
    if stats_on {
        crate::stats::record(st_blocks, queries.len() as u64, st_wide, st_levels);
    }
    std::hint::black_box(touched);
}

/// Pipelined batch lower bounds through a midpoint (compact) layer: the
/// corrected positions seed galloping searches, with the position's cache
/// line touched one wave ahead.
pub(crate) fn run_midpoint<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    table: &CompactShiftTable,
    keys: &[K],
    config: &ShiftTableConfig,
    queries: &[K],
    out: &mut [usize],
) {
    if keys.is_empty() {
        out.fill(0);
        return;
    }
    let (block, wave) = block_and_wave(config);
    let mut starts = [0usize; MAX_BATCH_BLOCK];
    let mut touched = 0usize;
    for (qs, os) in queries.chunks(block).zip(out.chunks_mut(block)) {
        let len = qs.len();
        let starts = &mut starts[..len];
        let os = &mut os[..len];
        for (p, &q) in starts.iter_mut().zip(qs.iter()) {
            *p = model.predict_clamped(q);
        }
        for p in starts.iter_mut() {
            *p = table.correct(*p).start;
        }
        for i in 0..wave.min(len) {
            touched += touch_span(keys, starts[i], 1, qs[i]);
        }
        let mut lo = 0usize;
        while lo < len {
            let hi = (lo + wave).min(len);
            let next_hi = (hi + wave).min(len);
            for i in hi..next_hi {
                touched += touch_span(keys, starts[i], 1, qs[i]);
            }
            for i in lo..hi {
                os[i] = exponential_around(keys, starts[i], qs[i]);
            }
            lo = hi;
        }
    }
    std::hint::black_box(touched);
}

/// Pipelined batch lower bounds from raw model predictions (no layer, or the
/// layer disabled at run time).
pub(crate) fn run_raw<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    keys: &[K],
    config: &ShiftTableConfig,
    queries: &[K],
    out: &mut [usize],
) {
    if keys.is_empty() {
        out.fill(0);
        return;
    }
    let (block, wave) = block_and_wave(config);
    let mut predictions = [0usize; MAX_BATCH_BLOCK];
    let mut touched = 0usize;
    for (qs, os) in queries.chunks(block).zip(out.chunks_mut(block)) {
        let len = qs.len();
        let predictions = &mut predictions[..len];
        let os = &mut os[..len];
        for (p, &q) in predictions.iter_mut().zip(qs.iter()) {
            *p = model.predict_clamped(q);
        }
        for i in 0..wave.min(len) {
            touched += touch_span(keys, predictions[i], 1, qs[i]);
        }
        let mut lo = 0usize;
        while lo < len {
            let hi = (lo + wave).min(len);
            let next_hi = (hi + wave).min(len);
            for i in hi..next_hi {
                touched += touch_span(keys, predictions[i], 1, qs[i]);
            }
            for i in lo..hi {
                os[i] = exponential_around(keys, predictions[i], qs[i]);
            }
            lo = hi;
        }
    }
    std::hint::black_box(touched);
}

/// One range-mode lookup exactly as the pre-kernel scalar path performs it:
/// branchy bounded search, then the repair gallop.
#[inline]
fn resolve_range_blocked<K: Key>(
    keys: &[K],
    hint: SearchHint,
    q: K,
    config: &ShiftTableConfig,
) -> usize {
    let window = hint.window.unwrap_or(0).max(1);
    let pos = if window < config.linear_to_binary_threshold {
        linear_in_window(keys, hint.start, window, q)
    } else {
        binary_in_window(keys, hint.start, window, q)
    };
    if is_lower_bound(keys, pos, q) {
        pos
    } else {
        exponential_around(keys, pos.min(keys.len() - 1), q)
    }
}

/// The pre-pipeline stage-blocked range path, kept verbatim as the benchmark
/// baseline and differential-test oracle.
pub(crate) fn run_range_blocked<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    table: &ShiftTable,
    keys: &[K],
    config: &ShiftTableConfig,
    queries: &[K],
    out: &mut [usize],
) {
    if keys.is_empty() {
        out.fill(0);
        return;
    }
    let mut predictions = [0usize; DEFAULT_BATCH_BLOCK];
    let mut hints = [SearchHint::unbounded(0); DEFAULT_BATCH_BLOCK];
    for (qs, os) in queries
        .chunks(DEFAULT_BATCH_BLOCK)
        .zip(out.chunks_mut(DEFAULT_BATCH_BLOCK))
    {
        let predictions = &mut predictions[..qs.len()];
        let hints = &mut hints[..qs.len()];
        for (p, &q) in predictions.iter_mut().zip(qs.iter()) {
            *p = model.predict_clamped(q);
        }
        for (h, &p) in hints.iter_mut().zip(predictions.iter()) {
            *h = table.correct(p);
        }
        for ((o, &q), &h) in os.iter_mut().zip(qs.iter()).zip(hints.iter()) {
            *o = resolve_range_blocked(keys, h, q, config);
        }
    }
}

/// The pre-pipeline stage-blocked midpoint path (baseline/oracle twin of
/// [`run_midpoint`]).
pub(crate) fn run_midpoint_blocked<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    table: &CompactShiftTable,
    keys: &[K],
    queries: &[K],
    out: &mut [usize],
) {
    if keys.is_empty() {
        out.fill(0);
        return;
    }
    let mut predictions = [0usize; DEFAULT_BATCH_BLOCK];
    for (qs, os) in queries
        .chunks(DEFAULT_BATCH_BLOCK)
        .zip(out.chunks_mut(DEFAULT_BATCH_BLOCK))
    {
        let predictions = &mut predictions[..qs.len()];
        for (p, &q) in predictions.iter_mut().zip(qs.iter()) {
            *p = model.predict_clamped(q);
        }
        for p in predictions.iter_mut() {
            *p = table.correct(*p).start;
        }
        for ((o, &q), &start) in os.iter_mut().zip(qs.iter()).zip(predictions.iter()) {
            *o = exponential_around(keys, start, q);
        }
    }
}

/// The pre-pipeline stage-blocked raw-model path (baseline/oracle twin of
/// [`run_raw`]).
pub(crate) fn run_raw_blocked<K: Key, M: CdfModel<K> + ?Sized>(
    model: &M,
    keys: &[K],
    queries: &[K],
    out: &mut [usize],
) {
    if keys.is_empty() {
        out.fill(0);
        return;
    }
    let mut predictions = [0usize; DEFAULT_BATCH_BLOCK];
    for (qs, os) in queries
        .chunks(DEFAULT_BATCH_BLOCK)
        .zip(out.chunks_mut(DEFAULT_BATCH_BLOCK))
    {
        let predictions = &mut predictions[..qs.len()];
        for (p, &q) in predictions.iter_mut().zip(qs.iter()) {
            *p = model.predict_clamped(q);
        }
        for ((o, &q), &p) in os.iter_mut().zip(qs.iter()).zip(predictions.iter()) {
            *o = exponential_around(keys, p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use learned_index::linear::InterpolationModel;
    use sosd_data::prelude::*;

    /// Run every kernel path and its blocked twin over `queries` and assert
    /// all of them match `partition_point`.
    fn assert_all_paths(keys: &[u64], queries: &[u64], config: &ShiftTableConfig) {
        let expected: Vec<usize> = queries
            .iter()
            .map(|&q| keys.partition_point(|&k| k < q))
            .collect();
        let model = InterpolationModel::from_sorted_keys(keys);
        let table = ShiftTable::build(&model, keys);
        let compact = CompactShiftTable::build(&model, keys, 4);
        let mut out = vec![usize::MAX; queries.len()];

        run_range(&model, &table, keys, config, queries, &mut out);
        assert_eq!(out, expected, "run_range block={}", config.batch_block);
        out.fill(usize::MAX);
        run_range_blocked(&model, &table, keys, config, queries, &mut out);
        assert_eq!(out, expected, "run_range_blocked");
        out.fill(usize::MAX);
        run_midpoint(&model, &compact, keys, config, queries, &mut out);
        assert_eq!(out, expected, "run_midpoint block={}", config.batch_block);
        out.fill(usize::MAX);
        run_midpoint_blocked(&model, &compact, keys, queries, &mut out);
        assert_eq!(out, expected, "run_midpoint_blocked");
        out.fill(usize::MAX);
        run_raw(&model, keys, config, queries, &mut out);
        assert_eq!(out, expected, "run_raw block={}", config.batch_block);
        out.fill(usize::MAX);
        run_raw_blocked(&model, keys, queries, &mut out);
        assert_eq!(out, expected, "run_raw_blocked");
    }

    fn block_wave_grid() -> Vec<ShiftTableConfig> {
        let mut configs = Vec::new();
        for block in [1usize, 2, 7, 63, 64, 65, MAX_BATCH_BLOCK, 100_000] {
            for wave in [1usize, 3, 8, 64, 100_000] {
                configs.push(
                    ShiftTableConfig::default()
                        .with_batch_block(block)
                        .with_wave_depth(wave),
                );
            }
        }
        configs
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn every_block_wave_combination_matches_reference() {
        let d: Dataset<u64> = SosdName::Face64.generate(4_000, 17);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 3 * DEFAULT_BATCH_BLOCK + 19, 23);
        for config in block_wave_grid() {
            assert_all_paths(keys, w.queries(), &config);
        }
    }

    #[test]
    fn adversarial_shapes_match_reference() {
        let config = ShiftTableConfig::default();
        // Empty keys.
        let mut out = vec![9usize; 3];
        let empty: Vec<u64> = vec![];
        let model = InterpolationModel::from_sorted_keys(&empty);
        let table = ShiftTable::build(&model, &empty);
        run_range(&model, &table, &empty, &config, &[1, 2, 3], &mut out);
        assert_eq!(out, vec![0, 0, 0]);

        // Single key, duplicate runs, and swing queries across block tails.
        let single = vec![7u64];
        assert_all_paths(&single, &[6, 7, 8], &config);

        let mut dups: Vec<u64> = Vec::new();
        for v in 0..150u64 {
            dups.extend(std::iter::repeat_n(v * 3, 1 + (v % 13) as usize));
        }
        let mut rng = SplitMix64::new(0x51D3);
        let queries: Vec<u64> = (0..2 * DEFAULT_BATCH_BLOCK + 11)
            .map(|i| {
                if i % 2 == 0 {
                    dups[rng.next_below(dups.len() as u64) as usize]
                } else {
                    rng.next_below(500)
                }
            })
            .collect();
        for config in block_wave_grid() {
            assert_all_paths(&dups, &queries, &config);
        }

        // Empty query slice is a no-op.
        let model = InterpolationModel::from_sorted_keys(&dups);
        let table = ShiftTable::build(&model, &dups);
        run_range(&model, &table, &dups, &config, &[], &mut []);
    }

    #[test]
    fn kernel_stats_record_lanes_and_blocks_when_opted_in() {
        let d: Dataset<u64> = SosdName::Logn64.generate(10_000, 7);
        let keys = d.as_slice();
        let model = InterpolationModel::from_sorted_keys(keys);
        let table = ShiftTable::build(&model, keys);
        let w = Workload::uniform_domain(&d, 1_000, 5);
        let mut out = vec![0usize; w.len()];

        let off = crate::stats::snapshot();
        let config = ShiftTableConfig::default();
        run_range(&model, &table, keys, &config, w.queries(), &mut out);
        // Other tests may run concurrently with global stats enabled, so
        // only the opted-in delta below is asserted exactly.
        let config = ShiftTableConfig::default().with_kernel_stats(true);
        let before = crate::stats::snapshot();
        run_range(&model, &table, keys, &config, w.queries(), &mut out);
        let after = crate::stats::snapshot();
        assert!(after.lanes - before.lanes >= 1_000);
        assert!(after.blocks - before.blocks >= 1_000_u64.div_ceil(64));
        assert!(after.wide_lanes >= off.wide_lanes);
    }

    #[test]
    fn non_monotone_model_windows_are_repaired() {
        // A zig-zag model produces windows that miss; the repair gallop must
        // keep every path exact through the pipeline.
        struct ZigZag(usize);
        impl CdfModel<u64> for ZigZag {
            fn predict(&self, key: u64) -> usize {
                let n = self.0;
                let k = key as usize % n;
                if k.is_multiple_of(2) {
                    n - 1 - k
                } else {
                    k
                }
            }
            fn key_count(&self) -> usize {
                self.0
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "zigzag"
            }
        }
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * 5).collect();
        let model = ZigZag(keys.len());
        let table = ShiftTable::build(&model, &keys);
        let queries: Vec<u64> = (0..321u64).map(|i| i * 17 % 5_200).collect();
        let expected: Vec<usize> = queries
            .iter()
            .map(|&q| keys.partition_point(|&k| k < q))
            .collect();
        let mut out = vec![0usize; queries.len()];
        for config in [
            ShiftTableConfig::default(),
            ShiftTableConfig::default().with_wave_depth(1),
            ShiftTableConfig::default()
                .with_batch_block(5)
                .with_wave_depth(2),
        ] {
            run_range(&model, &table, &keys, &config, &queries, &mut out);
            assert_eq!(out, expected);
            run_raw(&model, &keys, &config, &queries, &mut out);
            assert_eq!(out, expected);
        }
    }
}
