//! [`CorrectedIndex`]: a complete range index assembled from a learned CDF
//! model, an optional Shift-Table layer and the last-mile search routines —
//! the query path of Algorithm 1.
//!
//! The index is generic over its key storage `S: AsRef<[K]>`:
//!
//! * the default `Arc<[K]>` makes the index **owned** — `'static`, `Send`
//!   and `Sync`, shareable across threads and buildable from a config at run
//!   time (see [`crate::spec::IndexSpec`]),
//! * a borrowed `&[K]` keeps the zero-copy construction path that the
//!   benchmark harness uses to build many indexes over one key column.

use crate::compact::CompactShiftTable;
use crate::config::ShiftTableConfig;
use crate::correction::{Correction, SearchHint};
use crate::cost::{TuningAdvisor, TuningDecision};
use crate::error::{first_unsorted, BuildError, CorrectionErrorStats};
use crate::kernel;
use crate::local_search::{binary_in_window, exponential_around, linear_in_window};
use crate::table::ShiftTable;
use algo_index::search::RangeIndex;
use learned_index::model::CdfModel;
use learned_index::ModelErrorStats;
use sosd_data::key::Key;
use std::marker::PhantomData;
use std::sync::{Arc, OnceLock};

/// Which correction layer (if any) the index carries.
#[derive(Debug, Clone)]
pub enum CorrectionLayer {
    /// No correction: the model's prediction is searched with exponential
    /// search (a plain learned index).
    None,
    /// Full-resolution `<Δ, C>` range layer (R-1).
    Range(ShiftTable),
    /// Compressed midpoint layer (S-X).
    Midpoint(CompactShiftTable),
}

impl CorrectionLayer {
    /// Memory footprint of the layer in bytes (0 for `None`).
    pub fn size_bytes(&self) -> usize {
        match self {
            Self::None => 0,
            Self::Range(t) => Correction::size_bytes(t),
            Self::Midpoint(t) => Correction::size_bytes(t),
        }
    }

    /// True when a layer is present.
    pub fn is_some(&self) -> bool {
        !matches!(self, Self::None)
    }
}

/// Builder for [`CorrectedIndex`], generic over the key storage `S`.
pub struct CorrectedIndexBuilder<K: Key, M: CdfModel<K>, S: AsRef<[K]> + Send + Sync> {
    keys: S,
    model: M,
    layer: LayerChoice,
    config: ShiftTableConfig,
    build_threads: usize,
    _key: PhantomData<fn(K) -> K>,
}

/// Which layer the builder should construct.
enum LayerChoice {
    None,
    Range,
    Midpoint { records_per_entry: usize },
    Auto,
}

impl<K: Key, M: CdfModel<K>, S: AsRef<[K]> + Send + Sync> CorrectedIndexBuilder<K, M, S> {
    fn new(keys: S, model: M) -> Self {
        Self {
            keys,
            model,
            layer: LayerChoice::None,
            config: ShiftTableConfig::default(),
            build_threads: 1,
            _key: PhantomData,
        }
    }

    /// Attach a full-resolution `<Δ, C>` range layer (the paper's R-1 and the
    /// recommended default, §3.9).
    pub fn with_range_table(mut self) -> Self {
        self.layer = LayerChoice::Range;
        self
    }

    /// Attach a compressed midpoint layer with one entry per
    /// `records_per_entry` records (the paper's S-X).
    pub fn with_compact_table(mut self, records_per_entry: usize) -> Self {
        self.layer = LayerChoice::Midpoint {
            records_per_entry: records_per_entry.max(1),
        };
        self
    }

    /// Use the model alone (no correction layer).
    pub fn without_correction(mut self) -> Self {
        self.layer = LayerChoice::None;
        self
    }

    /// Let the §3.9 tuning procedure decide: build a range layer, compare the
    /// model error before/after and keep the layer only if it pays off.
    pub fn with_auto_tuning(mut self) -> Self {
        self.layer = LayerChoice::Auto;
        self
    }

    /// Override the query-path configuration.
    pub fn config(mut self, config: ShiftTableConfig) -> Self {
        self.config = config;
        self
    }

    /// Build the layer with this many scoped worker threads.
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads.max(1);
        self
    }

    /// Build the corrected index, validating that the keys are sorted.
    ///
    /// # Errors
    /// Returns [`BuildError::UnsortedKeys`] if the key column is not in
    /// non-decreasing order (the layer invariants — and every query — would
    /// be silently wrong otherwise).
    pub fn build(self) -> Result<CorrectedIndex<K, M, S>, BuildError> {
        if let Some(position) = first_unsorted(self.keys.as_ref()) {
            return Err(BuildError::UnsortedKeys { position });
        }
        Ok(self.build_prevalidated())
    }

    /// Build without re-running the sortedness scan — for callers (e.g.
    /// [`crate::spec::IndexSpec`]) that already validated the key column.
    pub(crate) fn build_prevalidated(self) -> CorrectedIndex<K, M, S> {
        let keys = self.keys.as_ref();
        // The raw-model error statistic backs the probe-count proxy whenever
        // no correction layer serves the query. It is computed lazily on
        // first use (and cached) so builds never pay an extra per-key model
        // sweep for a value most indexes never read — the store's write path
        // re-enters this builder on every shard rebuild. The `Auto` path
        // needs the statistic for its tuning decision anyway, so it seeds the
        // cache for free.
        let model_expected_error = OnceLock::new();
        let layer = match self.layer {
            LayerChoice::None => CorrectionLayer::None,
            LayerChoice::Range => {
                CorrectionLayer::Range(build_range_table(&self.model, keys, self.build_threads))
            }
            LayerChoice::Midpoint { records_per_entry } => CorrectionLayer::Midpoint(
                CompactShiftTable::build(&self.model, keys, records_per_entry),
            ),
            LayerChoice::Auto => {
                let table = build_range_table(&self.model, keys, self.build_threads);
                let before = ModelErrorStats::mean_abs_on_keys(&self.model, keys);
                let _ = model_expected_error.set(before);
                let advisor = TuningAdvisor::with(Default::default(), self.config);
                match advisor.decide(before, table.expected_error()) {
                    TuningDecision::ModelWithShiftTable => CorrectionLayer::Range(table),
                    TuningDecision::ModelAlone => CorrectionLayer::None,
                }
            }
        };
        CorrectedIndex {
            keys: self.keys,
            model: self.model,
            layer,
            enabled: true,
            config: self.config,
            model_expected_error,
            _key: PhantomData,
        }
    }
}

fn build_range_table<K: Key, M: CdfModel<K>>(model: &M, keys: &[K], threads: usize) -> ShiftTable {
    if threads > 1 && model.is_monotonic() {
        ShiftTable::build_parallel(model, keys, threads)
    } else {
        ShiftTable::build(model, keys)
    }
}

/// A learned range index with (optional) Shift-Table correction.
///
/// Implements [`RangeIndex`], so it is directly comparable with every
/// algorithmic baseline in the `algo-index` crate — and, with the default
/// `Arc<[K]>` storage, is `'static + Send + Sync`, so it can be boxed into a
/// [`algo_index::DynRangeIndex`] and shared across threads.
pub struct CorrectedIndex<K: Key, M: CdfModel<K>, S: AsRef<[K]> + Send + Sync = Arc<[K]>> {
    keys: S,
    model: M,
    layer: CorrectionLayer,
    /// §3.9: the layer is optional and can be switched off at run time with
    /// zero cost; when disabled the model's raw prediction is used.
    enabled: bool,
    config: ShiftTableConfig,
    /// Mean absolute error of the raw model over the indexed keys — the
    /// drift statistic `probe_estimate` uses instead of probing the key
    /// array. Computed once, lazily, on the first estimate that needs it
    /// (the `Auto` build seeds it as a by-product of its tuning decision).
    model_expected_error: OnceLock<f64>,
    _key: PhantomData<fn(K) -> K>,
}

/// A corrected index borrowing its key column — the zero-copy construction
/// path used when many indexes are built over one resident key array.
pub type BorrowedCorrectedIndex<'a, K, M> = CorrectedIndex<K, M, &'a [K]>;

impl<K: Key, M: CdfModel<K>, S: AsRef<[K]> + Send + Sync> CorrectedIndex<K, M, S> {
    /// Start building a corrected index over sorted `keys` with `model`.
    ///
    /// `keys` may be any storage the index can read a sorted slice from: a
    /// borrowed `&[K]` (zero copy, index borrows), `Arc<[K]>` / `Vec<K>`
    /// (owned, `'static` index). Sortedness is validated by
    /// [`CorrectedIndexBuilder::build`].
    pub fn builder(keys: S, model: M) -> CorrectedIndexBuilder<K, M, S> {
        CorrectedIndexBuilder::new(keys, model)
    }

    /// The sorted key column the index searches over.
    #[inline]
    pub fn keys(&self) -> &[K] {
        self.keys.as_ref()
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The correction layer.
    pub fn layer(&self) -> &CorrectionLayer {
        &self.layer
    }

    /// The query-path configuration.
    pub fn config(&self) -> &ShiftTableConfig {
        &self.config
    }

    /// Enable or disable the correction layer at run time (§3.9). Disabling
    /// does not free the layer; it is simply bypassed.
    pub fn set_layer_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if a layer is present and enabled.
    pub fn layer_enabled(&self) -> bool {
        self.enabled && self.layer.is_some()
    }

    /// The model's uncorrected (clamped) prediction for a key.
    pub fn predict_uncorrected(&self, q: K) -> usize {
        self.model.predict_clamped(q)
    }

    /// The corrected position hint for a key (window start for range mode).
    pub fn predict_corrected(&self, q: K) -> usize {
        let pred = self.model.predict_clamped(q);
        if !self.enabled {
            return pred;
        }
        match &self.layer {
            CorrectionLayer::None => pred,
            CorrectionLayer::Range(t) => t.correct(pred).start,
            CorrectionLayer::Midpoint(t) => t.correct(pred).start,
        }
    }

    /// Empirical error statistics of the corrected predictions.
    pub fn correction_error(&self) -> CorrectionErrorStats {
        let keys = self.keys.as_ref();
        match &self.layer {
            CorrectionLayer::Range(t) => CorrectionErrorStats::compute(&self.model, t, keys),
            CorrectionLayer::Midpoint(t) => CorrectionErrorStats::compute(&self.model, t, keys),
            CorrectionLayer::None => {
                // The "correction" is the identity: measure the raw model.
                struct Identity;
                impl Correction for Identity {
                    fn correct(&self, prediction: usize) -> SearchHint {
                        SearchHint::unbounded(prediction)
                    }
                    fn size_bytes(&self) -> usize {
                        0
                    }
                    fn entry_count(&self) -> usize {
                        0
                    }
                    fn name(&self) -> &'static str {
                        "identity"
                    }
                }
                CorrectionErrorStats::compute(&self.model, &Identity, keys)
            }
        }
    }

    /// Expected number of key-array probes a lookup for `q` performs (used by
    /// the harness as a cache-miss proxy without timing).
    ///
    /// # Contract
    /// Per call, the estimate never probes the key array: it is derived from
    /// the model prediction plus cached drift/error statistics — the
    /// guaranteed window length for the range layer, the RMS residual the
    /// midpoint layer records at build time, and (for the uncorrected path)
    /// the model's mean absolute error, computed once on first use and
    /// cached. (A proxy that located the true position per estimate would
    /// perturb the very cache behaviour it stands in for, and would cost a
    /// full lookup each call.)
    pub fn probe_estimate(&self, q: K) -> usize {
        match (&self.layer, self.enabled) {
            // Only the range layer needs the query's prediction (to fetch
            // its per-partition window); the other arms are distributional.
            (CorrectionLayer::Range(t), true) => {
                let hint = t.correct(self.model.predict_clamped(q));
                1 + crate::local_search::window_probe_count(
                    hint.window.unwrap_or(1).max(1),
                    self.config.linear_to_binary_threshold,
                )
            }
            (CorrectionLayer::Midpoint(t), true) => {
                // Exponential search from the corrected position: the RMS
                // residual the layer recorded at build time stands in for
                // the (unknown) distance to the true position.
                let distance = (t.expected_error().ceil() as usize).max(1);
                1 + 2 * (usize::BITS - distance.leading_zeros()) as usize
            }
            _ => {
                // Raw model prediction: the model's mean absolute error is
                // the expected galloping distance (computed once, cached).
                let expected = *self.model_expected_error.get_or_init(|| {
                    ModelErrorStats::mean_abs_on_keys(&self.model, self.keys.as_ref())
                });
                let distance = (expected.ceil() as usize).max(1);
                2 * (usize::BITS - distance.leading_zeros()) as usize
            }
        }
    }

    /// Algorithm 1 from a range-mode hint: bounded local search, with the
    /// §3.8 repair path when the window missed (non-monotone model or far
    /// out-of-range query).
    #[inline]
    fn search_range_hint(&self, keys: &[K], hint: SearchHint, q: K) -> usize {
        let n = keys.len();
        let window = hint.window.unwrap_or(0).max(1);
        let pos = if window < self.config.linear_to_binary_threshold {
            linear_in_window(keys, hint.start, window, q)
        } else {
            binary_in_window(keys, hint.start, window, q)
        };
        if kernel::is_lower_bound(keys, pos, q) {
            pos
        } else {
            exponential_around(keys, pos.min(n - 1), q)
        }
    }

    /// Batched lookups through the pre-pipeline **stage-blocked** loops: the
    /// predict/correct/search stages run as per-block loops, but each local
    /// search resolves serially with branchy routines. Kept as the benchmark
    /// baseline the pipelined kernel is measured against and as a
    /// differential-test oracle; production callers use
    /// [`RangeIndex::lower_bound_batch`], which routes through
    /// [`crate::kernel`].
    ///
    /// # Panics
    /// Panics if `queries` and `out` have different lengths.
    pub fn lower_bound_batch_blocked(&self, queries: &[K], out: &mut [usize]) {
        // lint: allow(panic) API contract: unequal lengths would silently write predictions to wrong slots
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch_blocked requires queries and out of equal length"
        );
        let keys = self.keys.as_ref();
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(table), true) => {
                kernel::run_range_blocked(&self.model, table, keys, &self.config, queries, out)
            }
            (CorrectionLayer::Midpoint(table), true) => {
                kernel::run_midpoint_blocked(&self.model, table, keys, queries, out)
            }
            _ => kernel::run_raw_blocked(&self.model, keys, queries, out),
        }
    }
}

impl<K: Key, M: CdfModel<K>> CorrectedIndex<K, M, Arc<[K]>> {
    /// Start building an **owned** corrected index: the key column is moved
    /// (or cheaply converted) into shared `Arc<[K]>` storage, so the finished
    /// index is `'static + Send + Sync`.
    ///
    /// Accepts anything convertible into `Arc<[K]>`: a `Vec<K>`, a boxed
    /// slice, an existing `Arc<[K]>` clone, or `Dataset::into_shared()`.
    pub fn owned_builder(
        keys: impl Into<Arc<[K]>>,
        model: M,
    ) -> CorrectedIndexBuilder<K, M, Arc<[K]>> {
        CorrectedIndexBuilder::new(keys.into(), model)
    }
}

impl<K: Key, M: CdfModel<K>, S: AsRef<[K]> + Send + Sync> RangeIndex<K>
    for CorrectedIndex<K, M, S>
{
    fn lower_bound(&self, q: K) -> usize {
        let keys = self.keys.as_ref();
        if keys.is_empty() {
            return 0;
        }
        let prediction = self.model.predict_clamped(q);
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(table), true) => {
                self.search_range_hint(keys, table.correct(prediction), q)
            }
            (CorrectionLayer::Midpoint(table), true) => {
                let start = table.correct(prediction).start;
                exponential_around(keys, start, q)
            }
            _ => exponential_around(keys, prediction, q),
        }
    }

    /// Batched lookups through the software-pipelined [`crate::kernel`]: the
    /// predict and correct stages run as per-block loops (issuing their
    /// independent loads back-to-back), and the local searches are cut into
    /// waves — the kernel touches the key cache lines of wave `i + 1` while
    /// it resolves the branch-free searches of wave `i`, so DRAM latency
    /// overlaps compute. Block size and wave depth come from
    /// [`ShiftTableConfig::batch_block`] / [`ShiftTableConfig::wave_depth`].
    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        // lint: allow(panic) API contract: unequal lengths would silently write predictions to wrong slots
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch requires queries and out of equal length"
        );
        let keys = self.keys.as_ref();
        if keys.is_empty() {
            out.fill(0);
            return;
        }
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(table), true) => {
                kernel::run_range(&self.model, table, keys, &self.config, queries, out)
            }
            (CorrectionLayer::Midpoint(table), true) => {
                kernel::run_midpoint(&self.model, table, keys, &self.config, queries, out)
            }
            _ => kernel::run_raw(&self.model, keys, &self.config, queries, out),
        }
    }

    /// Range endpoints resolved as one two-query batch through the kernel:
    /// the start probe's and end probe's stage loads overlap instead of the
    /// two lookups running strictly back-to-back.
    fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        if lo > hi || self.keys.as_ref().is_empty() {
            return 0..0;
        }
        match hi.checked_next() {
            Some(h) => {
                let queries = [lo, h];
                let mut out = [0usize; 2];
                self.lower_bound_batch(&queries, &mut out);
                out[0]..out[1].max(out[0])
            }
            // `hi` is the domain maximum: the end is the key count.
            None => self.lower_bound(lo)..self.keys.as_ref().len(),
        }
    }

    fn len(&self) -> usize {
        self.keys.as_ref().len()
    }

    fn index_size_bytes(&self) -> usize {
        self.model.size_bytes() + self.layer.size_bytes()
    }

    fn name(&self) -> &'static str {
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(_), true) => "Model+Shift-Table(R)",
            (CorrectionLayer::Midpoint(_), true) => "Model+Shift-Table(S)",
            _ => "Model",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::DEFAULT_BATCH_BLOCK as BATCH_BLOCK;
    use learned_index::prelude::*;
    use sosd_data::prelude::*;

    fn check_index<M: CdfModel<u64>, S: AsRef<[u64]> + Send + Sync>(
        d: &Dataset<u64>,
        index: &CorrectedIndex<u64, M, S>,
    ) {
        for w in [
            Workload::uniform_keys(d, 300, 1),
            Workload::uniform_domain(d, 300, 2),
            Workload::non_indexed(d, 300, 3),
        ] {
            for (q, expected) in w.iter() {
                assert_eq!(index.lower_bound(q), expected, "q={q}");
            }
            // The batched (pipelined-kernel) path must agree with the scalar
            // path everywhere — and so must the stage-blocked baseline.
            assert_eq!(
                index.lower_bound_many(w.queries()),
                w.expected().to_vec(),
                "batch mismatch"
            );
            let mut blocked = vec![0usize; w.queries().len()];
            index.lower_bound_batch_blocked(w.queries(), &mut blocked);
            assert_eq!(blocked, w.expected().to_vec(), "blocked batch mismatch");
        }
        // Out-of-range queries.
        assert_eq!(index.lower_bound(0), d.lower_bound(0));
        assert_eq!(index.lower_bound(u64::MAX), d.lower_bound(u64::MAX));
        // Ranges resolve through the batched kernel; spot-check them against
        // scalar probes.
        let keys = d.as_slice();
        for (lo, hi) in [
            (0u64, u64::MAX),
            (keys[0], keys[keys.len() / 2]),
            (keys[keys.len() / 3], keys[keys.len() / 3]),
            (u64::MAX, 0),
        ] {
            let expected = if lo > hi {
                0..0
            } else {
                let start = d.lower_bound(lo);
                let end = match hi.checked_next() {
                    Some(h) => d.lower_bound(h),
                    None => keys.len(),
                };
                start..end.max(start)
            };
            assert_eq!(index.range(lo, hi), expected, "range {lo}..={hi}");
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn im_with_range_table_is_correct_on_every_dataset() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(8_000, 41);
            let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
                .with_range_table()
                .build()
                .unwrap();
            check_index(&d, &index);
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn im_with_compact_table_is_correct_on_every_dataset() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(8_000, 43);
            for x in [1usize, 10, 100] {
                let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
                    .with_compact_table(x)
                    .build()
                    .unwrap();
                check_index(&d, &index);
            }
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn model_without_correction_is_still_correct() {
        for name in [SosdName::Osmc64, SosdName::Face64, SosdName::Logn64] {
            let d: Dataset<u64> = name.generate(8_000, 47);
            let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
                .without_correction()
                .build()
                .unwrap();
            check_index(&d, &index);
            assert_eq!(index.name(), "Model");
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn owned_index_is_static_send_sync_and_shareable() {
        fn assert_owned<T: Send + Sync + 'static>(_: &T) {}
        let d: Dataset<u64> = SosdName::Face64.generate(8_000, 11);
        let w = Workload::uniform_keys(&d, 200, 5);
        let model = InterpolationModel::build(&d);
        let shared = d.into_shared();
        let index = CorrectedIndex::owned_builder(shared.clone(), model)
            .with_range_table()
            .build()
            .unwrap();
        assert_owned(&index);

        // The owned index moves across threads and stays exact.
        let index = std::sync::Arc::new(index);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let index = std::sync::Arc::clone(&index);
                let queries = w.queries().to_vec();
                let expected = w.expected().to_vec();
                std::thread::spawn(move || {
                    for (&q, &e) in queries.iter().zip(expected.iter()) {
                        assert_eq!(index.lower_bound(q), e);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Storage is shared, not copied: the Arc has one more strong owner
        // inside the index.
        assert_eq!(std::sync::Arc::strong_count(&shared), 2);
    }

    #[test]
    fn unsorted_keys_are_rejected() {
        let keys = vec![5u64, 3, 9];
        let err = CorrectedIndex::builder(&keys[..], InterpolationModel::from_sorted_keys(&keys))
            .with_range_table()
            .build()
            .err()
            .unwrap();
        assert_eq!(err, BuildError::UnsortedKeys { position: 1 });

        let err = CorrectedIndex::owned_builder(
            vec![1u64, 2, 0],
            InterpolationModel::from_sorted_keys(&[1u64, 2, 0]),
        )
        .build()
        .err()
        .unwrap();
        assert_eq!(err, BuildError::UnsortedKeys { position: 2 });
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn works_with_radix_spline_and_rmi_models() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(10_000, 53);
        let rs = RadixSpline::builder().max_error(64).build(&d);
        let index = CorrectedIndex::builder(d.as_slice(), rs)
            .with_range_table()
            .build()
            .unwrap();
        check_index(&d, &index);

        // RMI may be non-monotone; the repair path must keep it correct.
        let rmi = RmiIndex::builder().leaf_count(64).build(&d);
        let index = CorrectedIndex::builder(d.as_slice(), rmi)
            .with_range_table()
            .build()
            .unwrap();
        check_index(&d, &index);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn parallel_build_produces_an_equivalent_index() {
        let d: Dataset<u64> = SosdName::Amzn64.generate(30_000, 59);
        let model = InterpolationModel::build(&d);
        let seq = CorrectedIndex::builder(d.as_slice(), model.clone())
            .with_range_table()
            .build()
            .unwrap();
        let par = CorrectedIndex::builder(d.as_slice(), model)
            .with_range_table()
            .build_threads(4)
            .build()
            .unwrap();
        let w = Workload::uniform_domain(&d, 500, 61);
        for (q, expected) in w.iter() {
            assert_eq!(seq.lower_bound(q), expected);
            assert_eq!(par.lower_bound(q), expected);
        }
        assert_eq!(seq.index_size_bytes(), par.index_size_bytes());
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn toggling_the_layer_preserves_correctness_and_changes_probes() {
        let d: Dataset<u64> = SosdName::Osmc64.generate(30_000, 67);
        let mut index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_range_table()
            .build()
            .unwrap();
        assert!(index.layer_enabled());
        let w = Workload::uniform_keys(&d, 200, 71);
        let probes_on: usize = w.queries().iter().map(|&q| index.probe_estimate(q)).sum();
        index.set_layer_enabled(false);
        assert!(!index.layer_enabled());
        assert_eq!(index.name(), "Model");
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected);
        }
        let probes_off: usize = w.queries().iter().map(|&q| index.probe_estimate(q)).sum();
        assert!(
            probes_on < probes_off,
            "the layer should reduce probes on hard data: {probes_on} vs {probes_off}"
        );
        index.set_layer_enabled(true);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected);
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn auto_tuning_attaches_the_layer_only_when_it_pays_off() {
        // Near-perfect model on uden → layer rejected.
        let uden: Dataset<u64> = SosdName::Uden64.generate(20_000, 73);
        let auto = CorrectedIndex::builder(uden.as_slice(), InterpolationModel::build(&uden))
            .with_auto_tuning()
            .build()
            .unwrap();
        assert!(!auto.layer_enabled(), "uden should not need the layer");
        check_index(&uden, &auto);

        // Hopeless model on face → layer attached.
        let face: Dataset<u64> = SosdName::Face64.generate(20_000, 73);
        let auto = CorrectedIndex::builder(face.as_slice(), InterpolationModel::build(&face))
            .with_auto_tuning()
            .build()
            .unwrap();
        assert!(auto.layer_enabled(), "face should enable the layer");
        check_index(&face, &auto);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn correction_error_reporting() {
        let d: Dataset<u64> = SosdName::Face64.generate(20_000, 79);
        let plain = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .without_correction()
            .build()
            .unwrap();
        let corrected = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_range_table()
            .build()
            .unwrap();
        assert!(
            corrected.correction_error().mean_abs * 10.0 < plain.correction_error().mean_abs,
            "correction must reduce the reported error"
        );
        assert!(corrected.index_size_bytes() > plain.index_size_bytes());
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let empty: Vec<u64> = vec![];
        let index =
            CorrectedIndex::builder(&empty[..], InterpolationModel::from_sorted_keys(&empty))
                .with_range_table()
                .build()
                .unwrap();
        assert_eq!(index.lower_bound(42), 0);
        assert_eq!(index.len(), 0);
        assert_eq!(index.lower_bound_many(&[1, 2, 3]), vec![0, 0, 0]);

        let one = vec![7u64];
        let index = CorrectedIndex::builder(&one[..], InterpolationModel::from_sorted_keys(&one))
            .with_range_table()
            .build()
            .unwrap();
        assert_eq!(index.lower_bound(6), 0);
        assert_eq!(index.lower_bound(7), 0);
        assert_eq!(index.lower_bound(8), 1);

        let dups = vec![5u64; 100];
        let index = CorrectedIndex::builder(&dups[..], InterpolationModel::from_sorted_keys(&dups))
            .with_range_table()
            .build()
            .unwrap();
        assert_eq!(index.lower_bound(5), 0);
        assert_eq!(index.lower_bound(6), 100);
        assert_eq!(index.lower_bound(4), 0);
    }

    #[test]
    fn batch_tail_chunks_never_consume_stale_stage_state() {
        // Regression test for the stage-blocked batch path: when
        // `queries.len() % BATCH_BLOCK != 0` the final chunk is shorter than
        // the reused stage buffers, and every stage loop must truncate to the
        // chunk length — a loop running over the full buffer would consume a
        // prediction/hint left over from the previous block. Duplicate-heavy
        // keys make any such slip visible (positions jump by the run length).
        let mut keys: Vec<u64> = Vec::new();
        for v in 0..300u64 {
            let run = 1 + (v % 11) as usize; // runs of 1..=11 duplicates
            keys.extend(std::iter::repeat_n(v * 5, run));
        }
        let dataset = Dataset::from_sorted_keys("dups", keys);
        let model = InterpolationModel::build(&dataset);
        let keys = dataset.as_slice();

        // A query stream whose values swing wildly between consecutive
        // positions, so block i's stage state is maximally wrong for block
        // i+1: stale consumption cannot cancel out.
        let mut rng = SplitMix64::new(0xBA7C);
        let queries: Vec<u64> = (0..BATCH_BLOCK * 3 + 17)
            .map(|i| {
                if i.is_multiple_of(2) {
                    keys[rng.next_below(keys.len() as u64) as usize]
                } else {
                    rng.next_below(1_600) // misses and duplicate-run interiors
                }
            })
            .collect();
        let expected: Vec<usize> = queries
            .iter()
            .map(|&q| keys.partition_point(|&k| k < q))
            .collect();

        let indexes: Vec<CorrectedIndex<u64, InterpolationModel, &[u64]>> = vec![
            CorrectedIndex::builder(keys, model.clone())
                .with_range_table()
                .build()
                .unwrap(),
            CorrectedIndex::builder(keys, model.clone())
                .with_compact_table(7)
                .build()
                .unwrap(),
            CorrectedIndex::builder(keys, model.clone())
                .without_correction()
                .build()
                .unwrap(),
        ];
        for index in &indexes {
            // Every non-multiple-of-block prefix length, including lengths
            // below, at and just past one/two blocks.
            for len in [
                1,
                2,
                BATCH_BLOCK - 1,
                BATCH_BLOCK,
                BATCH_BLOCK + 1,
                2 * BATCH_BLOCK - 3,
                2 * BATCH_BLOCK + 5,
                queries.len(),
            ] {
                let got = index.lower_bound_many(&queries[..len]);
                assert_eq!(got, expected[..len], "{} len={len}", index.name());
                let mut blocked = vec![0usize; len];
                index.lower_bound_batch_blocked(&queries[..len], &mut blocked);
                assert_eq!(
                    blocked,
                    expected[..len],
                    "{} blocked len={len}",
                    index.name()
                );
                for (&q, &e) in queries[..len].iter().zip(expected[..len].iter()) {
                    assert_eq!(index.lower_bound(q), e, "{} scalar q={q}", index.name());
                }
            }
        }
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn probe_estimate_does_not_probe_the_key_array() {
        // The cache-miss proxy must be computable from build-time statistics
        // alone. A model whose `predict` panics on non-indexed queries would
        // not catch a key-array probe, so instead assert the observable
        // contract: the estimate for a fixed layer state is a function of the
        // prediction only — two queries with equal predictions get equal
        // estimates even when their true positions are far apart (the old
        // implementation partition_point-ed the keys and reported different
        // distances).
        // A huge duplicate run in a sparse domain: the interpolation model's
        // slope is ~2.5e-9 positions per key unit, so the two queries below
        // share one prediction while their true lower bounds are 5000
        // positions apart (before vs. after the run).
        let mut keys: Vec<u64> = vec![0];
        keys.extend(std::iter::repeat_n(1_000_000_000_000u64, 5_000));
        keys.push(2_000_000_000_000);
        let d = Dataset::from_sorted_keys("run", keys);
        let model = InterpolationModel::build(&d);
        let (a, b) = (1_000_000_000_000u64, 1_000_000_000_001u64);
        assert_eq!(d.lower_bound(a), 1);
        assert_eq!(d.lower_bound(b), 5_001);

        let midpoint = CorrectedIndex::builder(d.as_slice(), model.clone())
            .with_compact_table(50)
            .build()
            .unwrap();
        assert_eq!(
            midpoint.predict_uncorrected(a),
            midpoint.predict_uncorrected(b)
        );
        assert_eq!(midpoint.probe_estimate(a), midpoint.probe_estimate(b));

        let raw = CorrectedIndex::builder(d.as_slice(), model)
            .without_correction()
            .build()
            .unwrap();
        assert_eq!(raw.predict_uncorrected(a), raw.predict_uncorrected(b));
        assert_eq!(raw.probe_estimate(a), raw.probe_estimate(b));
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn works_with_u32_keys() {
        let d: Dataset<u32> = SosdName::Face32.generate(10_000, 83);
        let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_range_table()
            .build()
            .unwrap();
        let w = Workload::uniform_domain(&d, 500, 5);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected);
        }
        assert_eq!(index.lower_bound_many(w.queries()), w.expected().to_vec());
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn adversarial_non_monotone_model_is_repaired() {
        // A deliberately broken model that zig-zags: the range-mode windows
        // may not contain the answer, the repair path must still be exact.
        struct ZigZag(usize);
        impl CdfModel<u64> for ZigZag {
            fn predict(&self, key: u64) -> usize {
                let n = self.0;
                let k = key as usize % n;
                if k.is_multiple_of(2) {
                    n - 1 - k
                } else {
                    k
                }
            }
            fn key_count(&self) -> usize {
                self.0
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "zigzag"
            }
        }
        let d: Dataset<u64> = SosdName::Uspr64.generate(5_000, 89);
        let index = CorrectedIndex::builder(d.as_slice(), ZigZag(d.len()))
            .with_range_table()
            .build()
            .unwrap();
        let w = Workload::uniform_domain(&d, 500, 7);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected, "q={q}");
        }
        assert_eq!(index.lower_bound_many(w.queries()), w.expected().to_vec());
    }
}
