//! [`CorrectedIndex`]: a complete range index assembled from a learned CDF
//! model, an optional Shift-Table layer and the last-mile search routines —
//! the query path of Algorithm 1.

use crate::compact::CompactShiftTable;
use crate::config::ShiftTableConfig;
use crate::correction::Correction;
use crate::cost::{TuningAdvisor, TuningDecision};
use crate::error::CorrectionErrorStats;
use crate::local_search::{binary_in_window, exponential_around, linear_in_window};
use crate::table::ShiftTable;
use algo_index::search::RangeIndex;
use learned_index::model::CdfModel;
use learned_index::ModelErrorStats;
use sosd_data::key::Key;

/// Which correction layer (if any) the index carries.
#[derive(Debug, Clone)]
pub enum CorrectionLayer {
    /// No correction: the model's prediction is searched with exponential
    /// search (a plain learned index).
    None,
    /// Full-resolution `<Δ, C>` range layer (R-1).
    Range(ShiftTable),
    /// Compressed midpoint layer (S-X).
    Midpoint(CompactShiftTable),
}

impl CorrectionLayer {
    /// Memory footprint of the layer in bytes (0 for `None`).
    pub fn size_bytes(&self) -> usize {
        match self {
            Self::None => 0,
            Self::Range(t) => Correction::size_bytes(t),
            Self::Midpoint(t) => Correction::size_bytes(t),
        }
    }

    /// True when a layer is present.
    pub fn is_some(&self) -> bool {
        !matches!(self, Self::None)
    }
}

/// Builder for [`CorrectedIndex`].
pub struct CorrectedIndexBuilder<'a, K: Key, M: CdfModel<K>> {
    keys: &'a [K],
    model: M,
    layer: LayerSpec,
    config: ShiftTableConfig,
    build_threads: usize,
}

/// Which layer the builder should construct.
enum LayerSpec {
    None,
    Range,
    Midpoint { records_per_entry: usize },
    Auto,
}

impl<'a, K: Key, M: CdfModel<K>> CorrectedIndexBuilder<'a, K, M> {
    fn new(keys: &'a [K], model: M) -> Self {
        Self {
            keys,
            model,
            layer: LayerSpec::None,
            config: ShiftTableConfig::default(),
            build_threads: 1,
        }
    }

    /// Attach a full-resolution `<Δ, C>` range layer (the paper's R-1 and the
    /// recommended default, §3.9).
    pub fn with_range_table(mut self) -> Self {
        self.layer = LayerSpec::Range;
        self
    }

    /// Attach a compressed midpoint layer with one entry per
    /// `records_per_entry` records (the paper's S-X).
    pub fn with_compact_table(mut self, records_per_entry: usize) -> Self {
        self.layer = LayerSpec::Midpoint {
            records_per_entry: records_per_entry.max(1),
        };
        self
    }

    /// Use the model alone (no correction layer).
    pub fn without_correction(mut self) -> Self {
        self.layer = LayerSpec::None;
        self
    }

    /// Let the §3.9 tuning procedure decide: build a range layer, compare the
    /// model error before/after and keep the layer only if it pays off.
    pub fn with_auto_tuning(mut self) -> Self {
        self.layer = LayerSpec::Auto;
        self
    }

    /// Override the query-path configuration.
    pub fn config(mut self, config: ShiftTableConfig) -> Self {
        self.config = config;
        self
    }

    /// Build the layer with this many crossbeam worker threads.
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads.max(1);
        self
    }

    /// Build the corrected index.
    pub fn build(self) -> CorrectedIndex<'a, K, M> {
        let layer = match self.layer {
            LayerSpec::None => CorrectionLayer::None,
            LayerSpec::Range => {
                CorrectionLayer::Range(self.build_range_table())
            }
            LayerSpec::Midpoint { records_per_entry } => CorrectionLayer::Midpoint(
                CompactShiftTable::build(&self.model, self.keys, records_per_entry),
            ),
            LayerSpec::Auto => {
                let table = self.build_range_table();
                let before = ModelErrorStats::compute(&self.model, &sosd_data::Dataset::from_sorted_keys("tmp", self.keys.to_vec())).mean_abs;
                let advisor = TuningAdvisor::with(Default::default(), self.config);
                match advisor.decide(before, table.expected_error()) {
                    TuningDecision::ModelWithShiftTable => CorrectionLayer::Range(table),
                    TuningDecision::ModelAlone => CorrectionLayer::None,
                }
            }
        };
        CorrectedIndex {
            keys: self.keys,
            model: self.model,
            layer,
            enabled: true,
            config: self.config,
        }
    }

    fn build_range_table(&self) -> ShiftTable {
        if self.build_threads > 1 && self.model.is_monotonic() {
            // Parallel construction requires `M: Sync`; CdfModel already
            // requires Send + Sync, so this is always available.
            ShiftTable::build_parallel(&self.model, self.keys, self.build_threads)
        } else {
            ShiftTable::build(&self.model, self.keys)
        }
    }
}

/// A learned range index with (optional) Shift-Table correction.
///
/// Implements [`RangeIndex`], so it is directly comparable with every
/// algorithmic baseline in the `algo-index` crate.
pub struct CorrectedIndex<'a, K: Key, M: CdfModel<K>> {
    keys: &'a [K],
    model: M,
    layer: CorrectionLayer,
    /// §3.9: the layer is optional and can be switched off at run time with
    /// zero cost; when disabled the model's raw prediction is used.
    enabled: bool,
    config: ShiftTableConfig,
}

impl<'a, K: Key, M: CdfModel<K>> CorrectedIndex<'a, K, M> {
    /// Start building a corrected index over `keys` (sorted) with `model`.
    pub fn builder(keys: &'a [K], model: M) -> CorrectedIndexBuilder<'a, K, M> {
        debug_assert!(keys.is_sorted());
        CorrectedIndexBuilder::new(keys, model)
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The correction layer.
    pub fn layer(&self) -> &CorrectionLayer {
        &self.layer
    }

    /// The query-path configuration.
    pub fn config(&self) -> &ShiftTableConfig {
        &self.config
    }

    /// Enable or disable the correction layer at run time (§3.9). Disabling
    /// does not free the layer; it is simply bypassed.
    pub fn set_layer_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True if a layer is present and enabled.
    pub fn layer_enabled(&self) -> bool {
        self.enabled && self.layer.is_some()
    }

    /// The model's uncorrected (clamped) prediction for a key.
    pub fn predict_uncorrected(&self, q: K) -> usize {
        self.model.predict_clamped(q)
    }

    /// The corrected position hint for a key (window start for range mode).
    pub fn predict_corrected(&self, q: K) -> usize {
        let pred = self.model.predict_clamped(q);
        if !self.enabled {
            return pred;
        }
        match &self.layer {
            CorrectionLayer::None => pred,
            CorrectionLayer::Range(t) => t.correct(pred).start,
            CorrectionLayer::Midpoint(t) => t.correct(pred).start,
        }
    }

    /// Empirical error statistics of the corrected predictions.
    pub fn correction_error(&self) -> CorrectionErrorStats {
        match &self.layer {
            CorrectionLayer::Range(t) => {
                CorrectionErrorStats::compute(&self.model, t, self.keys)
            }
            CorrectionLayer::Midpoint(t) => {
                CorrectionErrorStats::compute(&self.model, t, self.keys)
            }
            CorrectionLayer::None => {
                // The "correction" is the identity: measure the raw model.
                struct Identity;
                impl Correction for Identity {
                    fn correct(&self, prediction: usize) -> crate::correction::SearchHint {
                        crate::correction::SearchHint::unbounded(prediction)
                    }
                    fn size_bytes(&self) -> usize {
                        0
                    }
                    fn entry_count(&self) -> usize {
                        0
                    }
                    fn name(&self) -> &'static str {
                        "identity"
                    }
                }
                CorrectionErrorStats::compute(&self.model, &Identity, self.keys)
            }
        }
    }

    /// Number of key-array probes the last lookup would perform for `q`
    /// (used by the harness as a cache-miss proxy without timing).
    pub fn probe_estimate(&self, q: K) -> usize {
        let pred = self.model.predict_clamped(q);
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(t), true) => {
                let hint = t.correct(pred);
                1 + crate::local_search::window_probe_count(
                    hint.window.unwrap_or(1).max(1),
                    self.config.linear_to_binary_threshold,
                )
            }
            (CorrectionLayer::Midpoint(t), true) => {
                let start = t.correct(pred).start;
                let actual = self.keys.partition_point(|&k| k < q);
                let distance = start.abs_diff(actual).max(1);
                1 + 2 * (usize::BITS - distance.leading_zeros()) as usize
            }
            _ => {
                let actual = self.keys.partition_point(|&k| k < q);
                let distance = pred.abs_diff(actual).max(1);
                2 * (usize::BITS - distance.leading_zeros()) as usize
            }
        }
    }

    /// Is `pos` the lower bound of `q`?
    #[inline]
    fn is_lower_bound(&self, pos: usize, q: K) -> bool {
        let n = self.keys.len();
        (pos == n || self.keys[pos] >= q) && (pos == 0 || self.keys[pos - 1] < q)
    }
}

impl<K: Key, M: CdfModel<K>> RangeIndex<K> for CorrectedIndex<'_, K, M> {
    fn lower_bound(&self, q: K) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        let prediction = self.model.predict_clamped(q);
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(table), true) => {
                // Algorithm 1: correct, then bounded local search.
                let hint = table.correct(prediction);
                let window = hint.window.unwrap_or(0).max(1);
                let pos = if window < self.config.linear_to_binary_threshold {
                    linear_in_window(self.keys, hint.start, window, q)
                } else {
                    binary_in_window(self.keys, hint.start, window, q)
                };
                // §3.8: with a non-monotone model (or a query far outside the
                // key range) the window may not contain the result; detect it
                // with two comparisons and repair with exponential search.
                if self.is_lower_bound(pos, q) {
                    pos
                } else {
                    exponential_around(self.keys, pos.min(n - 1), q)
                }
            }
            (CorrectionLayer::Midpoint(table), true) => {
                let start = table.correct(prediction).start;
                exponential_around(self.keys, start, q)
            }
            _ => exponential_around(self.keys, prediction, q),
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.model.size_bytes() + self.layer.size_bytes()
    }

    fn name(&self) -> &'static str {
        match (&self.layer, self.enabled) {
            (CorrectionLayer::Range(_), true) => "Model+Shift-Table(R)",
            (CorrectionLayer::Midpoint(_), true) => "Model+Shift-Table(S)",
            _ => "Model",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use learned_index::prelude::*;
    use sosd_data::prelude::*;

    fn check_index<M: CdfModel<u64>>(d: &Dataset<u64>, index: &CorrectedIndex<'_, u64, M>) {
        for w in [
            Workload::uniform_keys(d, 300, 1),
            Workload::uniform_domain(d, 300, 2),
            Workload::non_indexed(d, 300, 3),
        ] {
            for (q, expected) in w.iter() {
                assert_eq!(index.lower_bound(q), expected, "q={q}");
            }
        }
        // Out-of-range queries.
        assert_eq!(index.lower_bound(0), d.lower_bound(0));
        assert_eq!(index.lower_bound(u64::MAX), d.lower_bound(u64::MAX));
    }

    #[test]
    fn im_with_range_table_is_correct_on_every_dataset() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(8_000, 41);
            let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
                .with_range_table()
                .build();
            check_index(&d, &index);
        }
    }

    #[test]
    fn im_with_compact_table_is_correct_on_every_dataset() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(8_000, 43);
            for x in [1usize, 10, 100] {
                let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
                    .with_compact_table(x)
                    .build();
                check_index(&d, &index);
            }
        }
    }

    #[test]
    fn model_without_correction_is_still_correct() {
        for name in [SosdName::Osmc64, SosdName::Face64, SosdName::Logn64] {
            let d: Dataset<u64> = name.generate(8_000, 47);
            let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
                .without_correction()
                .build();
            check_index(&d, &index);
            assert_eq!(index.name(), "Model");
        }
    }

    #[test]
    fn works_with_radix_spline_and_rmi_models() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(10_000, 53);
        let rs = RadixSpline::builder().max_error(64).build(&d);
        let index = CorrectedIndex::builder(d.as_slice(), rs)
            .with_range_table()
            .build();
        check_index(&d, &index);

        // RMI may be non-monotone; the repair path must keep it correct.
        let rmi = RmiIndex::builder().leaf_count(64).build(&d);
        let index = CorrectedIndex::builder(d.as_slice(), rmi)
            .with_range_table()
            .build();
        check_index(&d, &index);
    }

    #[test]
    fn parallel_build_produces_an_equivalent_index() {
        let d: Dataset<u64> = SosdName::Amzn64.generate(30_000, 59);
        let model = InterpolationModel::build(&d);
        let seq = CorrectedIndex::builder(d.as_slice(), model.clone())
            .with_range_table()
            .build();
        let par = CorrectedIndex::builder(d.as_slice(), model)
            .with_range_table()
            .build_threads(4)
            .build();
        let w = Workload::uniform_domain(&d, 500, 61);
        for (q, expected) in w.iter() {
            assert_eq!(seq.lower_bound(q), expected);
            assert_eq!(par.lower_bound(q), expected);
        }
        assert_eq!(seq.index_size_bytes(), par.index_size_bytes());
    }

    #[test]
    fn toggling_the_layer_preserves_correctness_and_changes_probes() {
        let d: Dataset<u64> = SosdName::Osmc64.generate(30_000, 67);
        let mut index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_range_table()
            .build();
        assert!(index.layer_enabled());
        let w = Workload::uniform_keys(&d, 200, 71);
        let probes_on: usize = w.queries().iter().map(|&q| index.probe_estimate(q)).sum();
        index.set_layer_enabled(false);
        assert!(!index.layer_enabled());
        assert_eq!(index.name(), "Model");
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected);
        }
        let probes_off: usize = w.queries().iter().map(|&q| index.probe_estimate(q)).sum();
        assert!(
            probes_on < probes_off,
            "the layer should reduce probes on hard data: {probes_on} vs {probes_off}"
        );
        index.set_layer_enabled(true);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected);
        }
    }

    #[test]
    fn auto_tuning_attaches_the_layer_only_when_it_pays_off() {
        // Near-perfect model on uden → layer rejected.
        let uden: Dataset<u64> = SosdName::Uden64.generate(20_000, 73);
        let auto = CorrectedIndex::builder(uden.as_slice(), InterpolationModel::build(&uden))
            .with_auto_tuning()
            .build();
        assert!(!auto.layer_enabled(), "uden should not need the layer");
        check_index(&uden, &auto);

        // Hopeless model on face → layer attached.
        let face: Dataset<u64> = SosdName::Face64.generate(20_000, 73);
        let auto = CorrectedIndex::builder(face.as_slice(), InterpolationModel::build(&face))
            .with_auto_tuning()
            .build();
        assert!(auto.layer_enabled(), "face should enable the layer");
        check_index(&face, &auto);
    }

    #[test]
    fn correction_error_reporting() {
        let d: Dataset<u64> = SosdName::Face64.generate(20_000, 79);
        let plain = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .without_correction()
            .build();
        let corrected = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_range_table()
            .build();
        assert!(
            corrected.correction_error().mean_abs * 10.0 < plain.correction_error().mean_abs,
            "correction must reduce the reported error"
        );
        assert!(corrected.index_size_bytes() > plain.index_size_bytes());
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let empty: Vec<u64> = vec![];
        let index = CorrectedIndex::builder(&empty, InterpolationModel::from_sorted_keys(&empty))
            .with_range_table()
            .build();
        assert_eq!(index.lower_bound(42), 0);
        assert_eq!(index.len(), 0);

        let one = vec![7u64];
        let index = CorrectedIndex::builder(&one, InterpolationModel::from_sorted_keys(&one))
            .with_range_table()
            .build();
        assert_eq!(index.lower_bound(6), 0);
        assert_eq!(index.lower_bound(7), 0);
        assert_eq!(index.lower_bound(8), 1);

        let dups = vec![5u64; 100];
        let index = CorrectedIndex::builder(&dups, InterpolationModel::from_sorted_keys(&dups))
            .with_range_table()
            .build();
        assert_eq!(index.lower_bound(5), 0);
        assert_eq!(index.lower_bound(6), 100);
        assert_eq!(index.lower_bound(4), 0);
    }

    #[test]
    fn works_with_u32_keys() {
        let d: Dataset<u32> = SosdName::Face32.generate(10_000, 83);
        let index = CorrectedIndex::builder(d.as_slice(), InterpolationModel::build(&d))
            .with_range_table()
            .build();
        let w = Workload::uniform_domain(&d, 500, 5);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected);
        }
    }

    #[test]
    fn adversarial_non_monotone_model_is_repaired() {
        // A deliberately broken model that zig-zags: the range-mode windows
        // may not contain the answer, the repair path must still be exact.
        struct ZigZag(usize);
        impl CdfModel<u64> for ZigZag {
            fn predict(&self, key: u64) -> usize {
                let n = self.0;
                let k = key as usize % n;
                if k.is_multiple_of(2) {
                    n - 1 - k
                } else {
                    k
                }
            }
            fn key_count(&self) -> usize {
                self.0
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn is_monotonic(&self) -> bool {
                false
            }
            fn name(&self) -> &'static str {
                "zigzag"
            }
        }
        let d: Dataset<u64> = SosdName::Uspr64.generate(5_000, 89);
        let index = CorrectedIndex::builder(d.as_slice(), ZigZag(d.len()))
            .with_range_table()
            .build();
        let w = Workload::uniform_domain(&d, 500, 7);
        for (q, expected) in w.iter() {
            assert_eq!(index.lower_bound(q), expected, "q={q}");
        }
    }
}
