//! The hardware cost model and the tuning rules (§3.7, §3.9).
//!
//! The paper models the average lookup latency of a corrected index as
//!
//! ```text
//! Latency(with layer)    = Latency(F_θ) + layer_lookup + (1/N) Σ_k C_k · L(C_k)     (Eq. 9)
//! Latency(without layer) = Latency(F_θ)                + (1/N) Σ_k C_k · L(|Δ̄_k|)   (Eq. 10)
//! ```
//!
//! where `L(s)` is the measured latency of a last-mile search over `s`
//! non-cached records — exactly the error-to-latency curve of Figure 2a.
//! [`LatencyModel`] holds that curve (either the built-in default calibrated
//! from the paper's numbers, or one measured at runtime by the benchmark
//! harness) and [`TuningAdvisor`] applies the §3.9 decision rules: skip the
//! layer when the model is already accurate, or when the layer does not buy
//! a 10× error reduction.

use crate::config::ShiftTableConfig;
use crate::table::ShiftTable;

/// Piecewise-linear (in log-error space) model of the last-mile search
/// latency `L(s)` in nanoseconds for a search window of `s` records.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// `(window_size, nanoseconds)` calibration points, sorted by window size.
    points: Vec<(f64, f64)>,
    /// Cost of one extra DRAM lookup (the Shift-Table probe), nanoseconds.
    layer_lookup_ns: f64,
}

impl Default for LatencyModel {
    /// Default curve transcribed from the paper's Figure 2a (binary local
    /// search on the SOSD Skylake setup; DRAM latency ≈ 36 ns, layer lookup
    /// ≈ 40 ns). Absolute values differ on other machines, but the *shape*
    /// (flat until ~100 records, then logarithmic growth) is what the tuning
    /// decisions depend on; the harness can re-measure it at runtime.
    fn default() -> Self {
        Self {
            points: vec![
                (1.0, 40.0),
                (10.0, 60.0),
                (100.0, 110.0),
                (1_000.0, 200.0),
                (10_000.0, 330.0),
                (100_000.0, 480.0),
                (1_000_000.0, 700.0),
                (10_000_000.0, 900.0),
            ],
            layer_lookup_ns: 40.0,
        }
    }
}

impl LatencyModel {
    /// Build a latency model from measured `(window_size, ns)` points.
    /// Points are sorted; at least one point is required.
    pub fn from_points(mut points: Vec<(f64, f64)>, layer_lookup_ns: f64) -> Self {
        // lint: allow(panic) documented API contract: a latency model without points has no meaning
        assert!(!points.is_empty(), "latency model needs at least one point");
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self {
            points,
            layer_lookup_ns,
        }
    }

    /// Cost of the extra layer lookup in nanoseconds.
    pub fn layer_lookup_ns(&self) -> f64 {
        self.layer_lookup_ns
    }

    /// `L(s)`: interpolated latency (ns) of a last-mile search over `s`
    /// records. Interpolation is linear in `log2(s)`; sizes outside the
    /// calibrated range clamp to the nearest point.
    pub fn search_latency_ns(&self, window: f64) -> f64 {
        let w = window.max(1.0);
        let first = self.points[0];
        let last = self.points[self.points.len() - 1];
        if w <= first.0 {
            return first.1;
        }
        if w >= last.0 {
            return last.1;
        }
        let idx = self.points.partition_point(|p| p.0 <= w);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        let t = (w.log2() - x0.log2()) / (x1.log2() - x0.log2());
        y0 + t * (y1 - y0)
    }

    /// Eq. 9: expected lookup latency (ns) of `model + Shift-Table`.
    pub fn latency_with_layer(&self, model_latency_ns: f64, table: &ShiftTable) -> f64 {
        let n: f64 = table.window_lengths().map(|c| c as f64).sum();
        if n == 0.0 {
            return model_latency_ns + self.layer_lookup_ns;
        }
        let weighted: f64 = table
            .window_lengths()
            .filter(|&c| c > 0)
            .map(|c| c as f64 * self.search_latency_ns(c as f64))
            .sum();
        model_latency_ns + self.layer_lookup_ns + weighted / n
    }

    /// Eq. 10: expected lookup latency (ns) of the model alone, estimated
    /// from the layer's record of the model error (`|Δ̄_k| = |Δ_k + C_k/2|`).
    pub fn latency_without_layer(&self, model_latency_ns: f64, table: &ShiftTable) -> f64 {
        let n: f64 = table.window_lengths().map(|c| c as f64).sum();
        if n == 0.0 {
            return model_latency_ns;
        }
        let weighted: f64 = table
            .entries()
            .filter(|e| e.count > 0)
            .map(|e| {
                let mid = (e.delta + e.count as i64 / 2).unsigned_abs() as f64;
                e.count as f64 * self.search_latency_ns(mid.max(1.0))
            })
            .sum();
        model_latency_ns + weighted / n
    }
}

/// The outcome of the §3.9 tuning procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningDecision {
    /// Use the learned model alone (the layer would not pay for itself).
    ModelAlone,
    /// Attach the Shift-Table layer.
    ModelWithShiftTable,
}

/// Applies the paper's tuning rules to decide whether the layer should be
/// enabled and which local search to use.
#[derive(Debug, Clone)]
pub struct TuningAdvisor {
    latency: LatencyModel,
    config: ShiftTableConfig,
}

impl TuningAdvisor {
    /// Advisor with the default latency curve and configuration.
    pub fn new() -> Self {
        Self::with(LatencyModel::default(), ShiftTableConfig::default())
    }

    /// Advisor with an explicit latency curve and configuration.
    pub fn with(latency: LatencyModel, config: ShiftTableConfig) -> Self {
        Self { latency, config }
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Decide whether to attach the layer, given the model's mean absolute
    /// error before correction and the expected error after correction
    /// (Eq. 8). Mirrors §4.1: skip when the model is already accurate
    /// (error < `min_error_to_enable`) or when correction does not improve
    /// the error by `min_improvement_factor`.
    pub fn decide(&self, error_before: f64, error_after: f64) -> TuningDecision {
        if error_before < self.config.min_error_to_enable {
            return TuningDecision::ModelAlone;
        }
        if error_after > 0.0 && error_before / error_after < self.config.min_improvement_factor {
            return TuningDecision::ModelAlone;
        }
        TuningDecision::ModelWithShiftTable
    }

    /// Decide using the full cost model (Eqs. 9/10) instead of the error
    /// heuristics: attach the layer only if its estimated latency is lower.
    pub fn decide_by_latency(&self, model_latency_ns: f64, table: &ShiftTable) -> TuningDecision {
        let with = self.latency.latency_with_layer(model_latency_ns, table);
        let without = self.latency.latency_without_layer(model_latency_ns, table);
        if with < without {
            TuningDecision::ModelWithShiftTable
        } else {
            TuningDecision::ModelAlone
        }
    }

    /// Which local search Algorithm 1 should use for a window of `window`
    /// records (§3.8): linear below the threshold, binary above.
    pub fn local_search_for_window(&self, window: usize) -> LocalSearchChoice {
        if window < self.config.linear_to_binary_threshold {
            LocalSearchChoice::Linear
        } else {
            LocalSearchChoice::Binary
        }
    }
}

impl Default for TuningAdvisor {
    fn default() -> Self {
        Self::new()
    }
}

/// Local-search algorithm selected for a bounded window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalSearchChoice {
    /// Short windows: forward linear scan.
    Linear,
    /// Longer windows: branchless binary search.
    Binary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ShiftEntry;
    use learned_index::linear::InterpolationModel;
    use learned_index::ModelErrorStats;
    use sosd_data::prelude::*;

    #[test]
    fn latency_curve_is_monotone_and_clamped() {
        let m = LatencyModel::default();
        assert_eq!(m.search_latency_ns(0.5), m.search_latency_ns(1.0));
        assert_eq!(m.search_latency_ns(1e9), m.search_latency_ns(1e7));
        let mut prev = 0.0;
        for s in [1.0, 5.0, 50.0, 500.0, 5e3, 5e4, 5e5, 5e6] {
            let l = m.search_latency_ns(s);
            assert!(l >= prev, "L({s}) = {l} must be non-decreasing");
            prev = l;
        }
    }

    #[test]
    fn interpolation_passes_through_calibration_points() {
        let m = LatencyModel::from_points(vec![(1.0, 10.0), (100.0, 50.0)], 5.0);
        assert_eq!(m.search_latency_ns(1.0), 10.0);
        assert_eq!(m.search_latency_ns(100.0), 50.0);
        let mid = m.search_latency_ns(10.0);
        assert!((mid - 30.0).abs() < 1e-9, "log-space midpoint, got {mid}");
        assert_eq!(m.layer_lookup_ns(), 5.0);
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn eq9_eq10_favour_the_layer_when_the_model_is_bad() {
        // Model with a large bias: without the layer every lookup searches a
        // huge area; with the layer every lookup searches its window only.
        let entries: Vec<ShiftEntry> = (0..1_000).map(|_| ShiftEntry::new(-500_000, 2)).collect();
        let table = ShiftTable::from_entries(entries, 1_000);
        let m = LatencyModel::default();
        let with = m.latency_with_layer(100.0, &table);
        let without = m.latency_without_layer(100.0, &table);
        assert!(
            with < without,
            "layer should win on a heavily biased model: {with} vs {without}"
        );
        let advisor = TuningAdvisor::new();
        assert_eq!(
            advisor.decide_by_latency(100.0, &table),
            TuningDecision::ModelWithShiftTable
        );
    }

    #[test]
    fn eq9_eq10_favour_the_model_alone_when_it_is_already_accurate() {
        // A near-perfect model: windows of 1, drift 0 → the layer only adds
        // its 40 ns lookup.
        let entries: Vec<ShiftEntry> = (0..1_000).map(|_| ShiftEntry::new(0, 1)).collect();
        let table = ShiftTable::from_entries(entries, 1_000);
        let m = LatencyModel::default();
        let with = m.latency_with_layer(100.0, &table);
        let without = m.latency_without_layer(100.0, &table);
        assert!(without < with);
        assert_eq!(
            TuningAdvisor::new().decide_by_latency(100.0, &table),
            TuningDecision::ModelAlone
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn heuristic_decision_rules_match_section_4_1() {
        let advisor = TuningAdvisor::new();
        // Error already below 10 records → model alone.
        assert_eq!(advisor.decide(5.0, 0.5), TuningDecision::ModelAlone);
        // Less than 10× improvement → model alone.
        assert_eq!(advisor.decide(500.0, 100.0), TuningDecision::ModelAlone);
        // Large error, large improvement → attach the layer.
        assert_eq!(
            advisor.decide(10_000.0, 3.0),
            TuningDecision::ModelWithShiftTable
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn real_dataset_decision_matches_the_papers_story() {
        // uden: the dummy model is already near-perfect → model alone.
        // face: the dummy model drifts badly, the layer fixes it → attach.
        let advisor = TuningAdvisor::new();

        let uden: Dataset<u64> = SosdName::Uden64.generate(50_000, 1);
        let model = InterpolationModel::build(&uden);
        let before = ModelErrorStats::compute(&model, &uden).mean_abs;
        let table = ShiftTable::build(&model, uden.as_slice());
        assert_eq!(
            advisor.decide(before, table.expected_error()),
            TuningDecision::ModelAlone,
            "uden64: before={before}, after={}",
            table.expected_error()
        );

        let face: Dataset<u64> = SosdName::Face64.generate(50_000, 1);
        let model = InterpolationModel::build(&face);
        let before = ModelErrorStats::compute(&model, &face).mean_abs;
        let table = ShiftTable::build(&model, face.as_slice());
        assert_eq!(
            advisor.decide(before, table.expected_error()),
            TuningDecision::ModelWithShiftTable,
            "face64: before={before}, after={}",
            table.expected_error()
        );
    }

    #[cfg_attr(miri, ignore = "dataset too large for Miri")]
    #[test]
    fn local_search_choice_uses_the_threshold() {
        let advisor = TuningAdvisor::new();
        assert_eq!(
            advisor.local_search_for_window(1),
            LocalSearchChoice::Linear
        );
        assert_eq!(
            advisor.local_search_for_window(7),
            LocalSearchChoice::Linear
        );
        assert_eq!(
            advisor.local_search_for_window(8),
            LocalSearchChoice::Binary
        );
        assert_eq!(
            advisor.local_search_for_window(10_000),
            LocalSearchChoice::Binary
        );
    }

    #[test]
    fn empty_table_latency_is_just_the_model() {
        let table = ShiftTable::from_entries(vec![], 0);
        let m = LatencyModel::default();
        assert_eq!(m.latency_without_layer(70.0, &table), 70.0);
        assert_eq!(m.latency_with_layer(70.0, &table), 70.0 + 40.0);
    }
}
