//! Interpolation search (the paper's "IS" column).
//!
//! Interpolation search repeatedly estimates the position of the query by
//! linear interpolation between the current search boundaries. On uniform
//! data it needs `O(log log n)` iterations; on skewed data it can degrade to
//! `O(n)`, which is why Table 2 reports huge or "N/A" times for IS on the
//! lognormal and Amazon datasets. The implementation keeps that behaviour
//! (no artificial fallback) but caps the pathological case with a final
//! branchless binary search once the remaining range stops shrinking
//! geometrically, mirroring practical implementations.

use crate::binary_search::BranchlessBinarySearch;
use crate::search::RangeIndex;
use sosd_data::key::Key;

/// Classic interpolation search over the sorted array.
#[derive(Debug, Clone)]
pub struct InterpolationSearchIndex<'a, K: Key> {
    keys: &'a [K],
    /// Give up on interpolation after this many probes and finish with a
    /// bounded binary search (guards the O(n) worst case on skewed data
    /// while preserving the "many probes" cost the paper observes).
    max_probes: usize,
}

impl<'a, K: Key> InterpolationSearchIndex<'a, K> {
    /// Wrap a sorted key slice with the default probe cap (4·log2(n) + 16).
    pub fn new(keys: &'a [K]) -> Self {
        debug_assert!(keys.is_sorted());
        let n = keys.len().max(2);
        Self {
            keys,
            max_probes: 4 * (usize::BITS - n.leading_zeros()) as usize + 16,
        }
    }

    /// Override the probe cap (mainly for tests).
    pub fn with_max_probes(mut self, max_probes: usize) -> Self {
        self.max_probes = max_probes.max(1);
        self
    }

    /// Number of probes performed for a query (instrumentation for reports).
    pub fn probes_for(&self, q: K) -> usize {
        let mut probes = 0usize;
        self.search_inner(q, &mut probes);
        probes
    }

    #[inline]
    fn search_inner(&self, q: K, probes: &mut usize) -> usize {
        let keys = self.keys;
        let n = keys.len();
        if n == 0 {
            return 0;
        }
        if q <= keys[0] {
            return 0;
        }
        if q > keys[n - 1] {
            return n;
        }
        let mut lo = 0usize;
        let mut hi = n - 1;
        // Invariant: keys[lo] < q <= keys[hi].
        while hi - lo > 1 {
            if *probes >= self.max_probes {
                // Finish with a bounded binary search over (lo, hi].
                return BranchlessBinarySearch::lower_bound_in(keys, lo + 1, hi - lo, q);
            }
            *probes += 1;
            // Subtract in integer space before converting to f64 so keys with
            // a large absolute offset but a small span keep full precision.
            let span = keys[hi].to_u64() - keys[lo].to_u64();
            let offset = q.to_u64().saturating_sub(keys[lo].to_u64());
            let mut pos = if span == 0 {
                (lo + hi) / 2
            } else {
                let frac = offset as f64 / span as f64;
                lo + (frac * (hi - lo) as f64) as usize
            };
            // Keep the probe strictly inside (lo, hi) so the range shrinks.
            if pos <= lo {
                pos = lo + 1;
            }
            if pos >= hi {
                pos = hi - 1;
            }
            if keys[pos] < q {
                lo = pos;
            } else {
                hi = pos;
            }
        }
        hi
    }
}

impl<K: Key> RangeIndex<K> for InterpolationSearchIndex<'_, K> {
    #[inline]
    fn lower_bound(&self, q: K) -> usize {
        let mut probes = 0usize;
        self.search_inner(q, &mut probes)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "IS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_binary_search_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 5);
            let keys = d.as_slice();
            let is = InterpolationSearchIndex::new(keys);
            for w in [
                Workload::uniform_keys(&d, 300, 1),
                Workload::uniform_domain(&d, 300, 2),
                Workload::non_indexed(&d, 300, 3),
            ] {
                for (q, expected) in w.iter() {
                    assert_eq!(is.lower_bound(q), expected, "{name} q={q}");
                }
            }
        }
    }

    #[test]
    fn edge_queries() {
        let keys = vec![10u64, 20, 20, 30];
        let is = InterpolationSearchIndex::new(&keys);
        assert_eq!(is.lower_bound(5), 0);
        assert_eq!(is.lower_bound(10), 0);
        assert_eq!(is.lower_bound(20), 1);
        assert_eq!(is.lower_bound(25), 3);
        assert_eq!(is.lower_bound(30), 3);
        assert_eq!(is.lower_bound(31), 4);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert_eq!(InterpolationSearchIndex::new(&empty).lower_bound(7), 0);
        let single = vec![5u64];
        let is = InterpolationSearchIndex::new(&single);
        assert_eq!(is.lower_bound(4), 0);
        assert_eq!(is.lower_bound(5), 0);
        assert_eq!(is.lower_bound(6), 1);
    }

    #[test]
    fn uniform_data_needs_few_probes_skewed_data_needs_many() {
        let uniform: Dataset<u64> = SosdName::Uden64.generate(100_000, 1);
        let skewed: Dataset<u64> = SosdName::Logn64.generate(100_000, 1);
        let probe_avg = |d: &Dataset<u64>| {
            let is = InterpolationSearchIndex::new(d.as_slice()).with_max_probes(10_000);
            let w = Workload::uniform_keys(d, 200, 9);
            w.queries().iter().map(|&q| is.probes_for(q)).sum::<usize>() as f64 / 200.0
        };
        let p_uniform = probe_avg(&uniform);
        let p_skewed = probe_avg(&skewed);
        assert!(
            p_uniform < 6.0,
            "uniform data should need O(log log n) probes, got {p_uniform}"
        );
        assert!(
            p_skewed > 2.0 * p_uniform,
            "skewed data ({p_skewed}) should need far more probes than uniform ({p_uniform})"
        );
    }

    #[test]
    fn probe_cap_preserves_correctness() {
        let d: Dataset<u64> = SosdName::Logn64.generate(50_000, 2);
        let is = InterpolationSearchIndex::new(d.as_slice()).with_max_probes(2);
        let w = Workload::uniform_keys(&d, 300, 5);
        for (q, expected) in w.iter() {
            assert_eq!(is.lower_bound(q), expected);
        }
    }

    #[test]
    fn all_equal_keys() {
        let keys = vec![7u64; 100];
        let is = InterpolationSearchIndex::new(&keys);
        assert_eq!(is.lower_bound(7), 0);
        assert_eq!(is.lower_bound(6), 0);
        assert_eq!(is.lower_bound(8), 100);
    }
}
