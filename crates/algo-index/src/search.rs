//! The [`RangeIndex`] trait shared by every baseline (and by the corrected
//! learned indexes in the `shift-table` crate).

use sosd_data::key::Key;

/// A read-only range index over a sorted key array.
///
/// `lower_bound(q)` returns the index of the first key `>= q`, or `len()` if
/// every key is smaller — identical to `std`'s `partition_point(|k| k < q)`
/// and to C++ `std::lower_bound`. Locating the lower bound is the only
/// operation a clustered range index needs to answer `A <= key <= B` range
/// queries; the result set is then a contiguous scan (§1).
pub trait RangeIndex<K: Key>: Send + Sync {
    /// Position of the first key `>= q` (or `len()` if none).
    fn lower_bound(&self, q: K) -> usize;

    /// Number of indexed keys.
    fn len(&self) -> usize;

    /// True if the index contains no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of the *auxiliary* structure (excluding the key array
    /// itself, which every method shares). Used for the Figure 8 size sweeps.
    fn index_size_bytes(&self) -> usize;

    /// Short display name used in reports (matches the paper's column names).
    fn name(&self) -> &'static str;

    /// Answer a full range query `lo <= key <= hi` as a half-open position
    /// range, by locating the lower bound of `lo` and scanning to the first
    /// key greater than `hi`.
    fn range(&self, lo: K, hi: K, keys: &[K]) -> std::ops::Range<usize> {
        if lo > hi || self.is_empty() {
            return 0..0;
        }
        let start = self.lower_bound(lo);
        let mut end = start;
        while end < keys.len() && keys[end] <= hi {
            end += 1;
        }
        start..end
    }
}

impl<K: Key, T: RangeIndex<K> + ?Sized> RangeIndex<K> for &T {
    fn lower_bound(&self, q: K) -> usize {
        (**self).lower_bound(q)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn index_size_bytes(&self) -> usize {
        (**self).index_size_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<K: Key, T: RangeIndex<K> + ?Sized> RangeIndex<K> for Box<T> {
    fn lower_bound(&self, q: K) -> usize {
        (**self).lower_bound(q)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn index_size_bytes(&self) -> usize {
        (**self).index_size_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary_search::BinarySearchIndex;

    #[test]
    fn range_query_default_impl() {
        let keys = vec![1u64, 3, 5, 5, 7, 9];
        let idx = BinarySearchIndex::new(&keys);
        assert_eq!(idx.range(3, 7, &keys), 1..5);
        assert_eq!(idx.range(4, 4, &keys), 2..2);
        assert_eq!(idx.range(9, 3, &keys), 0..0, "inverted range");
        assert_eq!(idx.range(0, 100, &keys), 0..6);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let keys = vec![2u64, 4, 6];
        let idx = BinarySearchIndex::new(&keys);
        let as_ref: &dyn RangeIndex<u64> = &idx;
        assert_eq!(as_ref.lower_bound(5), 2);
        assert_eq!(as_ref.len(), 3);
        assert!(!as_ref.is_empty());
        let boxed: Box<dyn RangeIndex<u64> + '_> = Box::new(&idx);
        assert_eq!(boxed.lower_bound(1), 0);
        assert_eq!(boxed.name(), "BS");
    }
}
