//! The [`RangeIndex`] trait shared by every baseline (and by the corrected
//! learned indexes in the `shift-table` crate).

use sosd_data::key::Key;

/// An owned, runtime-composable range index behind a trait object: what
/// `shift_table::spec::IndexSpec::build` hands back. The underlying index is
/// `'static + Send + Sync`, so the boxed index can be moved across threads or
/// stored behind `Arc`.
pub type DynRangeIndex<K> = Box<dyn RangeIndex<K>>;

/// A read-only range index over a sorted key array.
///
/// `lower_bound(q)` returns the index of the first key `>= q`, or `len()` if
/// every key is smaller — identical to `std`'s `partition_point(|k| k < q)`
/// and to C++ `std::lower_bound`. Locating the lower bound is the only
/// operation a clustered range index needs to answer `A <= key <= B` range
/// queries; the result set is then a contiguous scan (§1).
///
/// The trait is object safe: `Box<dyn RangeIndex<K>>` (see [`DynRangeIndex`])
/// is how runtime-composed indexes are passed around.
pub trait RangeIndex<K: Key>: Send + Sync {
    /// Position of the first key `>= q` (or `len()` if none).
    fn lower_bound(&self, q: K) -> usize;

    /// Number of indexed keys.
    fn len(&self) -> usize;

    /// True if the index contains no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of the *auxiliary* structure (excluding the key array
    /// itself, which every method shares). Used for the Figure 8 size sweeps.
    fn index_size_bytes(&self) -> usize;

    /// Short display name used in reports (matches the paper's column names).
    fn name(&self) -> &'static str;

    /// Answer a full range query `lo <= key <= hi` as a half-open position
    /// range. Both endpoints are located with a lower-bound probe: the end is
    /// the lower bound of the successor of `hi`, so the cost is two index
    /// lookups regardless of how far past the result set the keys continue.
    fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        if lo > hi || self.is_empty() {
            return 0..0;
        }
        let start = self.lower_bound(lo);
        let end = match hi.checked_next() {
            Some(h) => self.lower_bound(h),
            None => self.len(),
        };
        start..end.max(start)
    }

    /// Resolve a batch of lower-bound queries, writing `queries[i]`'s result
    /// to `out[i]`.
    ///
    /// The default implementation is the scalar loop. Indexes with a
    /// multi-stage query path (model → correction → local search) override it
    /// to amortize each stage across the batch — the hook future SIMD /
    /// prefetch work attaches to.
    ///
    /// # Panics
    /// Panics if `queries` and `out` have different lengths.
    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch requires queries and out of equal length"
        );
        for (o, &q) in out.iter_mut().zip(queries.iter()) {
            *o = self.lower_bound(q);
        }
    }

    /// Convenience wrapper over [`RangeIndex::lower_bound_batch`] that
    /// allocates the output vector.
    fn lower_bound_many(&self, queries: &[K]) -> Vec<usize> {
        let mut out = vec![0usize; queries.len()];
        self.lower_bound_batch(queries, &mut out);
        out
    }
}

impl<K: Key, T: RangeIndex<K> + ?Sized> RangeIndex<K> for &T {
    fn lower_bound(&self, q: K) -> usize {
        (**self).lower_bound(q)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn index_size_bytes(&self) -> usize {
        (**self).index_size_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        (**self).range(lo, hi)
    }
    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        (**self).lower_bound_batch(queries, out)
    }
}

impl<K: Key, T: RangeIndex<K> + ?Sized> RangeIndex<K> for Box<T> {
    fn lower_bound(&self, q: K) -> usize {
        (**self).lower_bound(q)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn index_size_bytes(&self) -> usize {
        (**self).index_size_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        (**self).range(lo, hi)
    }
    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        (**self).lower_bound_batch(queries, out)
    }
}

impl<K: Key, T: RangeIndex<K> + ?Sized> RangeIndex<K> for std::sync::Arc<T> {
    fn lower_bound(&self, q: K) -> usize {
        (**self).lower_bound(q)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn index_size_bytes(&self) -> usize {
        (**self).index_size_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        (**self).range(lo, hi)
    }
    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        (**self).lower_bound_batch(queries, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary_search::BinarySearchIndex;

    #[test]
    fn range_query_default_impl() {
        let keys = vec![1u64, 3, 5, 5, 7, 9];
        let idx = BinarySearchIndex::new(&keys);
        assert_eq!(idx.range(3, 7), 1..5);
        assert_eq!(idx.range(4, 4), 2..2);
        assert_eq!(idx.range(9, 3), 0..0, "inverted range");
        assert_eq!(idx.range(0, 100), 0..6);
        assert_eq!(idx.range(0, u64::MAX), 0..6, "hi at the domain maximum");
        assert_eq!(idx.range(u64::MAX, u64::MAX), 6..6);
    }

    #[test]
    fn range_end_is_located_without_scanning() {
        // A long run of keys <= hi after the first match: the probe-based end
        // must still be exact (the old default walked this run key by key).
        let mut keys = vec![1u64, 2];
        keys.extend(std::iter::repeat_n(5u64, 10_000));
        keys.push(9);
        let idx = BinarySearchIndex::new(&keys);
        assert_eq!(idx.range(2, 5), 1..10_002);
        assert_eq!(idx.range(5, 8), 2..10_002);
    }

    #[test]
    fn batch_default_matches_scalar() {
        let keys = vec![2u64, 4, 4, 6, 8];
        let idx = BinarySearchIndex::new(&keys);
        let queries: Vec<u64> = (0..12).collect();
        let batch = idx.lower_bound_many(&queries);
        for (q, got) in queries.iter().zip(batch) {
            assert_eq!(got, idx.lower_bound(*q), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn batch_rejects_mismatched_lengths() {
        let keys = vec![1u64, 2, 3];
        let idx = BinarySearchIndex::new(&keys);
        let mut out = [0usize; 2];
        idx.lower_bound_batch(&[1, 2, 3], &mut out);
    }

    #[test]
    fn range_index_is_object_safe_with_every_default_method() {
        // Object-safety audit: all provided methods (`range`,
        // `lower_bound_batch`, `lower_bound_many`, `is_empty`) must be
        // callable through `&dyn RangeIndex` — the store layer dispatches
        // every read through this vtable.
        fn drive(idx: &dyn RangeIndex<u64>) {
            assert_eq!(idx.lower_bound(3), 1);
            assert!(!idx.is_empty());
            assert_eq!(idx.range(0, u64::MAX), 0..4);
            let mut out = [0usize; 2];
            idx.lower_bound_batch(&[1, u64::MAX], &mut out);
            assert_eq!(out, [0, 4]);
            assert_eq!(idx.lower_bound_many(&[5]), vec![3]);
        }
        let keys = vec![2u64, 4, 4, 6];
        drive(&BinarySearchIndex::new(&keys));
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let keys = vec![2u64, 4, 6];
        let idx = BinarySearchIndex::new(&keys);
        let as_ref: &dyn RangeIndex<u64> = &idx;
        assert_eq!(as_ref.lower_bound(5), 2);
        assert_eq!(as_ref.len(), 3);
        assert!(!as_ref.is_empty());
        assert_eq!(as_ref.range(2, 4), 0..2);
        let boxed: Box<dyn RangeIndex<u64> + '_> = Box::new(&idx);
        assert_eq!(boxed.lower_bound(1), 0);
        assert_eq!(boxed.name(), "BS");
        assert_eq!(boxed.lower_bound_many(&[1, 5, 7]), vec![0, 2, 3]);
    }
}
