//! Exponential (galloping) search.
//!
//! Exponential search finds an unbounded lower bound by doubling the step
//! size from a starting position until the target is bracketed, then binary
//! searching the bracket. It is the last-mile search of choice for learned
//! indexes whose model gives a *guess* but no guaranteed error bound
//! (Figure 1a, search pattern 3/4): the cost is `O(log Δ)` probes where Δ is
//! the prediction error.

use crate::binary_search::BranchlessBinarySearch;
use sosd_data::key::Key;

/// Lower bound of `q` in `keys`, galloping outwards from `start`.
///
/// Returns the index of the first key `>= q` (or `keys.len()`), identical to
/// a full binary search but with cost proportional to `log(|start - result|)`
/// instead of `log(n)`.
#[inline]
pub fn lower_bound_from<K: Key>(keys: &[K], start: usize, q: K) -> usize {
    let n = keys.len();
    if n == 0 {
        return 0;
    }
    let start = start.min(n - 1);
    if keys[start] < q {
        // Gallop right: find the first probe with key >= q.
        let mut step = 1usize;
        let mut prev = start;
        loop {
            let next = match prev.checked_add(step) {
                Some(i) if i < n => i,
                _ => {
                    // Bracket is (prev, n).
                    return BranchlessBinarySearch::lower_bound_in(keys, prev + 1, n - prev - 1, q);
                }
            };
            if keys[next] >= q {
                // Bracket is (prev, next].
                return BranchlessBinarySearch::lower_bound_in(keys, prev + 1, next - prev, q);
            }
            prev = next;
            step *= 2;
        }
    } else {
        // Gallop left: find a probe with key < q (or hit the start).
        let mut step = 1usize;
        let mut prev = start;
        loop {
            if prev == 0 {
                return BranchlessBinarySearch::lower_bound_in(keys, 0, start, q).min(start);
            }
            let next = prev.saturating_sub(step);
            if keys[next] < q {
                // Bracket is (next, prev].
                return BranchlessBinarySearch::lower_bound_in(keys, next + 1, prev - next, q);
            }
            if next == 0 {
                return BranchlessBinarySearch::lower_bound_in(keys, 0, prev, q);
            }
            prev = next;
            step *= 2;
        }
    }
}

/// Number of key probes an exponential search from `start` performs for `q`.
/// Used by the Figure 2 cache-miss-proxy instrumentation.
pub fn probe_count<K: Key>(keys: &[K], start: usize, q: K) -> usize {
    let n = keys.len();
    if n == 0 {
        return 0;
    }
    let start = start.min(n - 1);
    let target = keys.partition_point(|&k| k < q);
    let distance = target.abs_diff(start).max(1);
    // Galloping probes ≈ log2(distance), bracket binary search ≈ log2(distance).
    let log = (usize::BITS - distance.leading_zeros()) as usize;
    1 + 2 * log
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_partition_point_from_any_start() {
        let d: Dataset<u64> = SosdName::Face64.generate(5_000, 1);
        let keys = d.as_slice();
        let w = Workload::uniform_domain(&d, 200, 2);
        for (q, expected) in w.iter() {
            for start in [0usize, 1, 100, 2_500, 4_999] {
                assert_eq!(
                    lower_bound_from(keys, start, q),
                    expected,
                    "q={q} start={start}"
                );
            }
        }
    }

    #[test]
    fn exact_start_is_cheap_and_correct() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
        for target in [0usize, 17, 5_000, 9_999] {
            let q = keys[target];
            assert_eq!(lower_bound_from(&keys, target, q), target);
        }
    }

    #[test]
    fn edge_cases() {
        let empty: Vec<u64> = vec![];
        assert_eq!(lower_bound_from(&empty, 0, 5), 0);

        let keys = vec![10u64, 20, 30];
        assert_eq!(lower_bound_from(&keys, 0, 5), 0);
        assert_eq!(lower_bound_from(&keys, 2, 5), 0);
        assert_eq!(lower_bound_from(&keys, 0, 35), 3);
        assert_eq!(lower_bound_from(&keys, 2, 35), 3);
        assert_eq!(
            lower_bound_from(&keys, 100, 20),
            1,
            "start clamped to len-1"
        );
    }

    #[test]
    fn duplicates_return_first_occurrence() {
        let keys = vec![1u64, 5, 5, 5, 5, 9];
        for start in 0..keys.len() {
            assert_eq!(lower_bound_from(&keys, start, 5), 1, "start={start}");
        }
    }

    #[test]
    fn probe_count_grows_with_error() {
        let keys: Vec<u64> = (0..100_000u64).collect();
        let near = probe_count(&keys, 50_000, 50_010);
        let far = probe_count(&keys, 50_000, 99_000);
        assert!(far > near);
    }
}
