//! Algorithmic range-index baselines and on-the-fly search algorithms.
//!
//! These are the non-learned competitors from Table 2 of the Shift-Table
//! paper, re-implemented from scratch in safe Rust:
//!
//! **On-the-fly search** (no auxiliary structure, search the sorted array
//! directly):
//! * [`BinarySearchIndex`] (BS) — `std`-style lower bound,
//! * [`BranchlessBinarySearch`] — branch-free variant used as the bounded
//!   local-search primitive,
//! * [`InterpolationSearchIndex`] (IS) — classic interpolation search,
//! * [`TipSearchIndex`] (TIP) — three-point interpolation search,
//! * [`exponential`] — galloping search used as the unbounded last-mile
//!   search in learned indexes.
//!
//! **Algorithmic indexes** (auxiliary structure over the sorted array):
//! * [`RadixBinarySearch`] (RBS) — radix prefix table + binary search,
//! * [`BPlusTree`] — read-only bulk-loaded B+tree (STX-style),
//! * [`FastTree`] — FAST-style cache-optimised implicit layout tree,
//! * [`ArtIndex`] (ART) — adaptive radix tree with lower-bound support.
//!
//! Every index implements [`RangeIndex`]: `lower_bound(q)` returns the
//! position of the first key `>= q` in the underlying sorted array, which is
//! all a clustered range index needs (§1 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod art;
pub mod binary_search;
pub mod btree;
pub mod exponential;
pub mod fast_tree;
pub mod interpolation;
pub mod rbs;
pub mod search;
pub mod tip;

pub use art::ArtIndex;
pub use binary_search::{BinarySearchIndex, BranchlessBinarySearch};
pub use btree::BPlusTree;
pub use fast_tree::FastTree;
pub use interpolation::InterpolationSearchIndex;
pub use rbs::RadixBinarySearch;
pub use search::{DynRangeIndex, RangeIndex};
pub use tip::TipSearchIndex;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::art::ArtIndex;
    pub use crate::binary_search::{BinarySearchIndex, BranchlessBinarySearch};
    pub use crate::btree::BPlusTree;
    pub use crate::fast_tree::FastTree;
    pub use crate::interpolation::InterpolationSearchIndex;
    pub use crate::rbs::RadixBinarySearch;
    pub use crate::search::{DynRangeIndex, RangeIndex};
    pub use crate::tip::TipSearchIndex;
}
