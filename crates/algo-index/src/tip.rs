//! Three-point interpolation search (the paper's "TIP" column).
//!
//! Van Sandt, Chronis & Patel ("Efficiently Searching In-Memory Sorted
//! Arrays: Revenge of the Interpolation Search?", SIGMOD 2019) propose TIP:
//! instead of the linear interpolation of classic interpolation search, each
//! probe fits a three-point rational interpolation through the two current
//! boundaries and the latest probe, which adapts to locally non-linear CDFs.
//! This implementation follows that scheme: three-point inverse interpolation
//! per step, with a guard band that falls back to bisection when the
//! interpolant stops making progress, and a final linear scan for tiny
//! ranges — the same overall structure as the reference implementation.

use crate::search::RangeIndex;
use sosd_data::key::Key;

/// Below this range size the search finishes with a linear scan.
const LINEAR_SCAN_THRESHOLD: usize = 16;

/// Three-point interpolation search index.
#[derive(Debug, Clone)]
pub struct TipSearchIndex<'a, K: Key> {
    keys: &'a [K],
    max_probes: usize,
}

impl<'a, K: Key> TipSearchIndex<'a, K> {
    /// Wrap a sorted key slice.
    pub fn new(keys: &'a [K]) -> Self {
        debug_assert!(keys.is_sorted());
        let n = keys.len().max(2);
        Self {
            keys,
            max_probes: 4 * (usize::BITS - n.leading_zeros()) as usize + 16,
        }
    }

    /// Three-point estimate of the position of `q` given boundary samples
    /// `(x0, y0)`, `(x1, y1)` and an interior sample `(x2, y2)` (positions as
    /// f64). Falls back to two-point linear interpolation when the rational
    /// interpolant is ill-conditioned.
    fn three_point_estimate(q: f64, x: [f64; 3], y: [f64; 3]) -> f64 {
        // Inverse quadratic interpolation (standard three-point scheme):
        // estimate y(q) from the three (x, y) samples.
        let (x0, x1, x2) = (x[0], x[1], x[2]);
        let (y0, y1, y2) = (y[0], y[1], y[2]);
        let d01 = x0 - x1;
        let d02 = x0 - x2;
        let d12 = x1 - x2;
        if d01 == 0.0 || d02 == 0.0 || d12 == 0.0 {
            // Degenerate sample: two-point interpolation on the outer pair.
            if x1 == x0 {
                return y0;
            }
            return y0 + (q - x0) * (y1 - y0) / (x1 - x0);
        }
        let l0 = (q - x1) * (q - x2) / (d01 * d02);
        let l1 = (q - x0) * (q - x2) / (-d01 * d12);
        let l2 = (q - x0) * (q - x1) / (d02 * d12);
        y0 * l0 + y1 * l1 + y2 * l2
    }
}

impl<K: Key> RangeIndex<K> for TipSearchIndex<'_, K> {
    fn lower_bound(&self, q: K) -> usize {
        let keys = self.keys;
        let n = keys.len();
        if n == 0 {
            return 0;
        }
        if q <= keys[0] {
            return 0;
        }
        if q > keys[n - 1] {
            return n;
        }
        let qf = q.to_f64();
        let mut lo = 0usize;
        let mut hi = n - 1;
        // Interior sample: start with the midpoint.
        let mut mid = (lo + hi) / 2;
        let mut probes = 0usize;
        // Invariant: keys[lo] < q <= keys[hi].
        while hi - lo > LINEAR_SCAN_THRESHOLD && probes < self.max_probes {
            probes += 1;
            let est = Self::three_point_estimate(
                qf,
                [keys[lo].to_f64(), keys[hi].to_f64(), keys[mid].to_f64()],
                [lo as f64, hi as f64, mid as f64],
            );
            let mut pos = if est.is_finite() {
                est.round() as i64
            } else {
                ((lo + hi) / 2) as i64
            };
            // Guard band: keep the probe strictly inside (lo, hi); alternate
            // towards bisection when the estimate stalls at a boundary.
            if pos <= lo as i64 {
                pos = (lo + 1 + (hi - lo) / 4) as i64;
            }
            if pos >= hi as i64 {
                pos = (hi - 1 - (hi - lo) / 4) as i64;
            }
            let pos = (pos as usize).clamp(lo + 1, hi - 1);
            if keys[pos] < q {
                mid = lo;
                lo = pos;
            } else {
                mid = hi;
                hi = pos;
            }
        }
        // Finish with a bounded scan / binary search.
        let mut i = lo + 1;
        while i < hi && keys[i] < q {
            i += 1;
        }
        i
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "TIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_binary_search_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 13);
            let tip = TipSearchIndex::new(d.as_slice());
            for w in [
                Workload::uniform_keys(&d, 300, 1),
                Workload::uniform_domain(&d, 300, 2),
                Workload::non_indexed(&d, 300, 3),
            ] {
                for (q, expected) in w.iter() {
                    assert_eq!(tip.lower_bound(q), expected, "{name} q={q}");
                }
            }
        }
    }

    #[test]
    fn edge_queries() {
        let keys = vec![10u64, 20, 20, 30, 40];
        let tip = TipSearchIndex::new(&keys);
        assert_eq!(tip.lower_bound(1), 0);
        assert_eq!(tip.lower_bound(10), 0);
        assert_eq!(tip.lower_bound(20), 1);
        assert_eq!(tip.lower_bound(21), 3);
        assert_eq!(tip.lower_bound(40), 4);
        assert_eq!(tip.lower_bound(41), 5);
    }

    #[test]
    fn empty_single_and_constant() {
        let empty: Vec<u64> = vec![];
        assert_eq!(TipSearchIndex::new(&empty).lower_bound(5), 0);
        let single = vec![7u64];
        let tip = TipSearchIndex::new(&single);
        assert_eq!(tip.lower_bound(6), 0);
        assert_eq!(tip.lower_bound(7), 0);
        assert_eq!(tip.lower_bound(8), 1);
        let constant = vec![9u64; 200];
        let tip = TipSearchIndex::new(&constant);
        assert_eq!(tip.lower_bound(9), 0);
        assert_eq!(tip.lower_bound(10), 200);
    }

    #[test]
    fn three_point_estimate_is_exact_on_quadratic_data() {
        // If position = key², the quadratic Lagrange interpolant through
        // three samples reproduces intermediate positions exactly.
        let x = [0.0, 100.0, 50.0];
        let y = [0.0, 10_000.0, 2_500.0];
        let est = TipSearchIndex::<u64>::three_point_estimate(70.0, x, y);
        assert!(
            (est - 4_900.0).abs() < 1e-6,
            "estimate {est} should be 4900"
        );
    }

    #[test]
    fn three_point_estimate_degenerate_samples_fall_back_to_linear() {
        // Two coincident samples: falls back to the two-point interpolation.
        let est = TipSearchIndex::<u64>::three_point_estimate(
            5.0,
            [0.0, 10.0, 10.0],
            [0.0, 100.0, 100.0],
        );
        assert!((est - 50.0).abs() < 1e-9);
    }

    #[test]
    fn large_uniform_dataset_correctness_spot_check() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(200_000, 4);
        let tip = TipSearchIndex::new(d.as_slice());
        let w = Workload::uniform_keys(&d, 500, 8);
        for (q, expected) in w.iter() {
            assert_eq!(tip.lower_bound(q), expected);
        }
    }
}
