//! FAST-style cache-optimised static search tree (the paper's "FAST" column).
//!
//! FAST (Kim et al., SIGMOD 2010) lays a binary search tree out in memory so
//! that the nodes touched by a lookup share cache lines and pages: the tree
//! is blocked hierarchically by cache-line and page size, and the hot upper
//! levels stay resident in cache. The effect the Shift-Table paper relies on
//! (§2.2) is that FAST performs ~3× faster than textbook binary search
//! because only the last few levels of the descent touch non-cached memory.
//!
//! This reproduction uses the same two ingredients in safe Rust:
//!
//! 1. an **implicit k-ary layout**: separator keys are stored level by level
//!    in one contiguous array (no pointers), with `LINE_FANOUT` separators
//!    per node so one node fills exactly one cache line, and
//! 2. a **hot top**: the first levels of the tree occupy a small prefix of
//!    the array that stays cache-resident across lookups.
//!
//! The final descent lands on one leaf block of the underlying sorted array,
//! which is searched branchlessly.

use crate::binary_search::BranchlessBinarySearch;
use crate::search::RangeIndex;
use sosd_data::key::Key;

/// Separators per node: 8 × 8 B = one 64-byte cache line for u64 keys.
pub const LINE_FANOUT: usize = 8;

/// FAST-style blocked implicit search tree.
#[derive(Debug, Clone)]
pub struct FastTree<'a, K: Key> {
    keys: &'a [K],
    /// Inner levels, root level first; each level is a flat array of
    /// separator keys grouped implicitly into nodes of `LINE_FANOUT`.
    levels: Vec<Vec<K>>,
    /// Number of keys per leaf block of the data array.
    leaf_block: usize,
}

impl<'a, K: Key> FastTree<'a, K> {
    /// Build over a sorted key slice with the default leaf block (64 keys,
    /// i.e. 8 cache lines of u64 scanned branchlessly at the end).
    pub fn new(keys: &'a [K]) -> Self {
        Self::with_leaf_block(keys, 64)
    }

    /// Build with an explicit leaf block size (≥ 2).
    pub fn with_leaf_block(keys: &'a [K], leaf_block: usize) -> Self {
        debug_assert!(keys.is_sorted());
        let leaf_block = leaf_block.max(2);
        let mut levels_rev: Vec<Vec<K>> = Vec::new();
        if !keys.is_empty() {
            // Bottom separator level: first key of every leaf block.
            let mut current: Vec<K> = keys.iter().step_by(leaf_block).copied().collect();
            while current.len() > LINE_FANOUT {
                let next: Vec<K> = current.iter().step_by(LINE_FANOUT).copied().collect();
                levels_rev.push(current);
                current = next;
            }
            levels_rev.push(current);
        }
        levels_rev.reverse(); // root first
        Self {
            keys,
            levels: levels_rev,
            leaf_block,
        }
    }

    /// Height of the separator hierarchy.
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Size of the leaf blocks the final search scans.
    pub fn leaf_block(&self) -> usize {
        self.leaf_block
    }

    /// Number of separator probes a lookup performs (one node per level plus
    /// the leaf block) — used as the cache-miss proxy in the harness: the top
    /// levels are cache-resident, the bottom one or two levels and the leaf
    /// block are not.
    pub fn probes_per_lookup(&self) -> usize {
        self.levels.len() + 1
    }

    /// Branch-free search of one cache-line node: number of separators that
    /// are strictly smaller than `q`. Routing on `< q` keeps the descent
    /// correct when a run of duplicate keys spans several leaf blocks.
    #[inline]
    fn count_lt(node: &[K], q: K) -> usize {
        // The node is at most LINE_FANOUT wide; an unrolled comparison sum is
        // what FAST does with SIMD, and LLVM vectorises this form.
        node.iter().map(|&sep| usize::from(sep < q)).sum()
    }
}

impl<K: Key> RangeIndex<K> for FastTree<'_, K> {
    fn lower_bound(&self, q: K) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        if self.levels.is_empty() {
            return BranchlessBinarySearch::lower_bound_in(self.keys, 0, n, q);
        }
        // Descend one node per level. `node` indexes nodes within the level;
        // following child c of node v leads to node v·F + c in the next level.
        let mut node = 0usize;
        for (depth, level) in self.levels.iter().enumerate() {
            let fanout = if depth == 0 {
                // The root level is a single node of up to LINE_FANOUT keys.
                level.len()
            } else {
                LINE_FANOUT
            };
            let start = (node * LINE_FANOUT).min(level.len());
            let len = fanout.min(level.len() - start);
            if len == 0 {
                break;
            }
            let lt = Self::count_lt(&level[start..start + len], q);
            node = start + lt.saturating_sub(1);
        }
        // `node` is the index of the separator (= leaf block) to finish in.
        let leaf_start = node * self.leaf_block;
        if leaf_start >= n {
            return n;
        }
        let leaf_len = self.leaf_block.min(n - leaf_start);
        BranchlessBinarySearch::lower_bound_in(self.keys, leaf_start, leaf_len, q)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * K::size_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        "FAST"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_binary_search_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 29);
            let fast = FastTree::new(d.as_slice());
            for w in [
                Workload::uniform_keys(&d, 300, 1),
                Workload::uniform_domain(&d, 300, 2),
                Workload::non_indexed(&d, 300, 3),
            ] {
                for (q, expected) in w.iter() {
                    assert_eq!(fast.lower_bound(q), expected, "{name} q={q}");
                }
            }
        }
    }

    #[test]
    fn thirty_two_bit_keys_as_in_the_paper() {
        // The original FAST supports 32-bit keys; ours supports both, but the
        // 32-bit path is the one Table 2 reports.
        let d: Dataset<u32> = SosdName::Face32.generate(10_000, 5);
        let fast = FastTree::new(d.as_slice());
        let w = Workload::uniform_keys(&d, 500, 7);
        for (q, expected) in w.iter() {
            assert_eq!(fast.lower_bound(q), expected);
        }
    }

    #[test]
    fn leaf_block_size_trades_height_for_scan_length() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(100_000, 1);
        let deep = FastTree::with_leaf_block(d.as_slice(), 8);
        let shallow = FastTree::with_leaf_block(d.as_slice(), 512);
        assert!(deep.height() >= shallow.height());
        let w = Workload::uniform_domain(&d, 300, 3);
        for (q, expected) in w.iter() {
            assert_eq!(deep.lower_bound(q), expected);
            assert_eq!(shallow.lower_bound(q), expected);
        }
    }

    #[test]
    fn edge_cases() {
        let empty: Vec<u64> = vec![];
        assert_eq!(FastTree::new(&empty).lower_bound(3), 0);

        let one = vec![9u64];
        let fast = FastTree::new(&one);
        assert_eq!(fast.lower_bound(8), 0);
        assert_eq!(fast.lower_bound(9), 0);
        assert_eq!(fast.lower_bound(10), 1);

        let constant = vec![4u64; 300];
        let fast = FastTree::new(&constant);
        assert_eq!(fast.lower_bound(4), 0);
        assert_eq!(fast.lower_bound(5), 300);
        assert_eq!(fast.lower_bound(3), 0);
    }

    #[test]
    fn index_is_much_smaller_than_data() {
        let d: Dataset<u64> = SosdName::Norm64.generate(100_000, 2);
        let fast = FastTree::new(d.as_slice());
        assert!(fast.index_size_bytes() * 20 < d.size_bytes());
    }
}
