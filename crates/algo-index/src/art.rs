//! Adaptive Radix Tree (the paper's "ART" column).
//!
//! ART (Leis, Kemper & Neumann, ICDE 2013) is a trie over the big-endian
//! bytes of the key with three space optimisations: adaptive node sizes
//! (Node4 / Node16 / Node48 / Node256), path compression (common byte
//! prefixes are collapsed into the node) and lazy expansion (a sub-trie with
//! a single key becomes a leaf immediately). Because the byte order of
//! unsigned big-endian integers matches their numeric order, the trie is a
//! valid range index: `lower_bound` is a successor search.
//!
//! The index is bulk-loaded from the sorted key array, storing for every
//! distinct key the position of its first occurrence. (The SOSD ART — like
//! the original — maps each key to a single value, which is why Table 2
//! reports "N/A" for datasets with duplicate keys; this implementation
//! collapses duplicates to the first occurrence so `lower_bound` stays
//! correct, and the benchmark harness reproduces the N/A policy.)

use crate::search::RangeIndex;
use sosd_data::key::Key;

/// One node of the adaptive radix tree.
#[derive(Debug, Clone)]
enum Node {
    /// A single key (lazy expansion): the full key and its position.
    Leaf { key: u64, pos: u32 },
    /// An inner node with a compressed prefix and adaptively sized children.
    Inner {
        /// Path-compressed bytes between this node's depth and its children.
        prefix: Vec<u8>,
        /// Position of the smallest leaf in this subtree (for fast
        /// "everything here is ≥ q" answers during successor search).
        min_pos: u32,
        children: Children,
    },
}

/// Adaptive child representations.
#[derive(Debug, Clone)]
enum Children {
    /// Node4 / Node16: sorted byte keys with parallel children.
    Sparse { bytes: Vec<u8>, nodes: Vec<Node> },
    /// Node48: byte-indexed indirection table into the child vector.
    Indexed {
        slots: Box<[u8; 256]>,
        nodes: Vec<Node>,
    },
    /// Node256: direct child table.
    Dense { nodes: Vec<Option<Node>> },
}

impl Children {
    fn from_sorted(bytes: Vec<u8>, nodes: Vec<Node>) -> Self {
        debug_assert_eq!(bytes.len(), nodes.len());
        debug_assert!(bytes.is_sorted());
        match bytes.len() {
            0..=16 => Children::Sparse { bytes, nodes },
            17..=48 => {
                let mut slots = Box::new([u8::MAX; 256]);
                for (i, &b) in bytes.iter().enumerate() {
                    slots[b as usize] = i as u8;
                }
                Children::Indexed { slots, nodes }
            }
            _ => {
                let mut table: Vec<Option<Node>> = (0..256).map(|_| None).collect();
                for (b, node) in bytes.into_iter().zip(nodes) {
                    table[b as usize] = Some(node);
                }
                Children::Dense { nodes: table }
            }
        }
    }

    /// Child whose byte equals `b`, if any.
    fn exact(&self, b: u8) -> Option<&Node> {
        match self {
            Children::Sparse { bytes, nodes } => {
                bytes.iter().position(|&x| x == b).map(|i| &nodes[i])
            }
            Children::Indexed { slots, nodes } => {
                let i = slots[b as usize];
                (i != u8::MAX).then(|| &nodes[i as usize])
            }
            Children::Dense { nodes } => nodes[b as usize].as_ref(),
        }
    }

    /// First child whose byte is strictly greater than `b`.
    fn next_greater(&self, b: u8) -> Option<&Node> {
        match self {
            Children::Sparse { bytes, nodes } => {
                let i = bytes.partition_point(|&x| x <= b);
                nodes.get(i)
            }
            Children::Indexed { slots, nodes } => ((b as usize + 1)..256).find_map(|x| {
                let i = slots[x];
                (i != u8::MAX).then(|| &nodes[i as usize])
            }),
            Children::Dense { nodes } => nodes[(b as usize + 1)..].iter().find_map(|n| n.as_ref()),
        }
    }

    fn count(&self) -> usize {
        match self {
            Children::Sparse { nodes, .. } => nodes.len(),
            Children::Indexed { nodes, .. } => nodes.len(),
            Children::Dense { nodes } => nodes.iter().filter(|n| n.is_some()).count(),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Children::Sparse { bytes, nodes } => {
                bytes.len() + nodes.len() * std::mem::size_of::<Node>()
            }
            Children::Indexed { nodes, .. } => 256 + nodes.len() * std::mem::size_of::<Node>(),
            Children::Dense { nodes } => nodes.len() * std::mem::size_of::<Option<Node>>(),
        }
    }
}

impl Node {
    fn min_pos(&self) -> u32 {
        match self {
            Node::Leaf { pos, .. } => *pos,
            Node::Inner { min_pos, .. } => *min_pos,
        }
    }
}

/// Statistics about the node composition of an [`ArtIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtStats {
    /// Number of leaves (distinct keys).
    pub leaves: usize,
    /// Inner nodes with ≤ 16 children (Node4/Node16 class).
    pub sparse_nodes: usize,
    /// Inner nodes with 17..=48 children (Node48 class).
    pub indexed_nodes: usize,
    /// Inner nodes with more than 48 children (Node256 class).
    pub dense_nodes: usize,
}

/// Adaptive radix tree over the distinct keys of a sorted array.
#[derive(Debug, Clone)]
pub struct ArtIndex<K: Key> {
    root: Option<Node>,
    n: usize,
    heap_bytes: usize,
    stats: ArtStats,
    had_duplicates: bool,
    _marker: std::marker::PhantomData<K>,
}

impl<K: Key> ArtIndex<K> {
    /// Bulk-load from a sorted key slice.
    pub fn new(keys: &[K]) -> Self {
        debug_assert!(keys.is_sorted());
        let n = keys.len();
        // Distinct keys with their first-occurrence positions.
        let mut distinct: Vec<(u64, u32)> = Vec::with_capacity(n);
        for (i, &k) in keys.iter().enumerate() {
            let kv = k.to_u64();
            if distinct.last().map(|&(prev, _)| prev) != Some(kv) {
                distinct.push((kv, i as u32));
            }
        }
        let had_duplicates = distinct.len() != n;
        let key_bytes = (K::BITS / 8) as usize;
        let root = if distinct.is_empty() {
            None
        } else {
            Some(build(&distinct, key_bytes, 8 - key_bytes))
        };
        let mut stats = ArtStats::default();
        let mut heap_bytes = 0usize;
        if let Some(ref r) = root {
            collect_stats(r, &mut stats, &mut heap_bytes);
        }
        Self {
            root,
            n,
            heap_bytes: heap_bytes + std::mem::size_of::<Node>(),
            stats,
            had_duplicates,
            _marker: std::marker::PhantomData,
        }
    }

    /// True if the source data contained duplicate keys (the configurations
    /// Table 2 marks as "N/A" for ART).
    pub fn had_duplicates(&self) -> bool {
        self.had_duplicates
    }

    /// Node-composition statistics.
    pub fn stats(&self) -> ArtStats {
        self.stats
    }
}

/// Recursive bulk-load over `(key, first_position)` pairs sorted by key.
/// `byte_offset` is the index of the first significant byte within the
/// 8-byte big-endian representation (4 for u32 keys, 0 for u64 keys).
fn build(entries: &[(u64, u32)], key_bytes: usize, byte_offset: usize) -> Node {
    debug_assert!(!entries.is_empty());
    if entries.len() == 1 {
        return Node::Leaf {
            key: entries[0].0,
            pos: entries[0].1,
        };
    }
    build_at(entries, key_bytes, byte_offset, 0)
}

fn byte_of(key: u64, byte_offset: usize, depth: usize) -> u8 {
    key.to_be_bytes()[byte_offset + depth]
}

fn build_at(entries: &[(u64, u32)], key_bytes: usize, byte_offset: usize, depth: usize) -> Node {
    if entries.len() == 1 {
        return Node::Leaf {
            key: entries[0].0,
            pos: entries[0].1,
        };
    }
    // Path compression: the common prefix of the first and last entry (the
    // slice is sorted) is common to every entry.
    let first = entries[0].0;
    let last = entries[entries.len() - 1].0;
    let mut prefix = Vec::new();
    let mut d = depth;
    while d < key_bytes && byte_of(first, byte_offset, d) == byte_of(last, byte_offset, d) {
        prefix.push(byte_of(first, byte_offset, d));
        d += 1;
    }
    debug_assert!(d < key_bytes, "distinct keys must diverge before the end");

    // Group children by the byte at depth `d`.
    let mut bytes: Vec<u8> = Vec::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut group_start = 0usize;
    let mut group_byte = byte_of(entries[0].0, byte_offset, d);
    for (i, &(k, _)) in entries.iter().enumerate().skip(1) {
        let b = byte_of(k, byte_offset, d);
        if b != group_byte {
            bytes.push(group_byte);
            nodes.push(build_at(
                &entries[group_start..i],
                key_bytes,
                byte_offset,
                d + 1,
            ));
            group_start = i;
            group_byte = b;
        }
    }
    bytes.push(group_byte);
    nodes.push(build_at(
        &entries[group_start..],
        key_bytes,
        byte_offset,
        d + 1,
    ));

    Node::Inner {
        prefix,
        min_pos: entries[0].1,
        children: Children::from_sorted(bytes, nodes),
    }
}

fn collect_stats(node: &Node, stats: &mut ArtStats, heap: &mut usize) {
    match node {
        Node::Leaf { .. } => stats.leaves += 1,
        Node::Inner {
            prefix, children, ..
        } => {
            *heap += prefix.len() + children.heap_bytes();
            match children.count() {
                0..=16 => stats.sparse_nodes += 1,
                17..=48 => stats.indexed_nodes += 1,
                _ => stats.dense_nodes += 1,
            }
            match children {
                Children::Sparse { nodes, .. } | Children::Indexed { nodes, .. } => {
                    for n in nodes {
                        collect_stats(n, stats, heap);
                    }
                }
                Children::Dense { nodes } => {
                    for n in nodes.iter().flatten() {
                        collect_stats(n, stats, heap);
                    }
                }
            }
        }
    }
}

/// Successor search: position of the smallest leaf with key `>= q` in the
/// subtree, or `None` if every key in the subtree is smaller.
fn successor(
    node: &Node,
    q: u64,
    key_bytes: usize,
    byte_offset: usize,
    depth: usize,
) -> Option<u32> {
    match node {
        Node::Leaf { key, pos } => (*key >= q).then_some(*pos),
        Node::Inner {
            prefix,
            min_pos,
            children,
        } => {
            // Compare the query bytes against the compressed prefix.
            let mut d = depth;
            for &p in prefix {
                let qb = byte_of(q, byte_offset, d);
                if qb < p {
                    // Every key in the subtree is greater than q.
                    return Some(*min_pos);
                }
                if qb > p {
                    // Every key in the subtree is smaller than q.
                    return None;
                }
                d += 1;
            }
            debug_assert!(d < key_bytes);
            let qb = byte_of(q, byte_offset, d);
            if let Some(child) = children.exact(qb) {
                if let Some(pos) = successor(child, q, key_bytes, byte_offset, d + 1) {
                    return Some(pos);
                }
            }
            children.next_greater(qb).map(|c| c.min_pos())
        }
    }
}

impl<K: Key> RangeIndex<K> for ArtIndex<K> {
    fn lower_bound(&self, q: K) -> usize {
        match &self.root {
            None => 0,
            Some(root) => {
                let key_bytes = (K::BITS / 8) as usize;
                match successor(root, q.to_u64(), key_bytes, 8 - key_bytes, 0) {
                    Some(pos) => pos as usize,
                    None => self.n,
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.n
    }

    fn index_size_bytes(&self) -> usize {
        self.heap_bytes
    }

    fn name(&self) -> &'static str {
        "ART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_binary_search_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 31);
            let art = ArtIndex::new(d.as_slice());
            for w in [
                Workload::uniform_keys(&d, 300, 1),
                Workload::uniform_domain(&d, 300, 2),
                Workload::non_indexed(&d, 300, 3),
            ] {
                for (q, expected) in w.iter() {
                    assert_eq!(art.lower_bound(q), expected, "{name} q={q}");
                }
            }
        }
    }

    #[test]
    fn works_with_u32_keys() {
        let d: Dataset<u32> = SosdName::Uden32.generate(5_000, 3);
        let art = ArtIndex::new(d.as_slice());
        let w = Workload::uniform_domain(&d, 500, 5);
        for (q, expected) in w.iter() {
            assert_eq!(art.lower_bound(q), expected);
        }
    }

    #[test]
    fn duplicate_detection_mirrors_table2_na_policy() {
        let unique = Dataset::from_keys("u", vec![1u64, 2, 3]);
        let dup = Dataset::from_keys("d", vec![1u64, 2, 2, 3]);
        assert!(!ArtIndex::new(unique.as_slice()).had_duplicates());
        assert!(ArtIndex::new(dup.as_slice()).had_duplicates());
        // Even with duplicates the collapsed index answers lower bounds.
        let art = ArtIndex::new(dup.as_slice());
        assert_eq!(art.lower_bound(2), 1);
        assert_eq!(art.lower_bound(3), 3);
    }

    #[test]
    fn edge_cases() {
        let empty: Vec<u64> = vec![];
        let art = ArtIndex::new(&empty);
        assert_eq!(art.lower_bound(5), 0);
        assert!(art.is_empty());

        let one = vec![300u64];
        let art = ArtIndex::new(&one);
        assert_eq!(art.lower_bound(0), 0);
        assert_eq!(art.lower_bound(300), 0);
        assert_eq!(art.lower_bound(301), 1);

        let constant = vec![7u64; 42];
        let art = ArtIndex::new(&constant);
        assert_eq!(art.lower_bound(7), 0);
        assert_eq!(art.lower_bound(6), 0);
        assert_eq!(art.lower_bound(8), 42);

        // Keys at the extremes of the domain.
        let extremes = vec![0u64, 1, u64::MAX - 1, u64::MAX];
        let art = ArtIndex::new(&extremes);
        assert_eq!(art.lower_bound(0), 0);
        assert_eq!(art.lower_bound(2), 2);
        assert_eq!(art.lower_bound(u64::MAX), 3);
    }

    #[test]
    fn adaptive_node_types_appear_on_dense_data() {
        // Dense integers share long prefixes and fan out widely at the last
        // byte, so Node48/Node256-class nodes must appear.
        let d: Dataset<u64> = SosdName::Uden64.generate(100_000, 1);
        let art = ArtIndex::new(d.as_slice());
        let stats = art.stats();
        assert!(stats.leaves > 90_000);
        assert!(
            stats.dense_nodes + stats.indexed_nodes > 0,
            "expected large fanout nodes, got {stats:?}"
        );
        assert!(stats.sparse_nodes > 0);
    }

    #[test]
    fn path_compression_keeps_sparse_data_small() {
        // Sparse uniform 64-bit keys: without path compression the tree
        // would need ~8 levels of single-child nodes per key.
        let d: Dataset<u64> = SosdName::Uspr64.generate(50_000, 1);
        let art = ArtIndex::new(d.as_slice());
        let stats = art.stats();
        let inner = stats.sparse_nodes + stats.indexed_nodes + stats.dense_nodes;
        assert!(
            inner < 2 * stats.leaves,
            "path compression should keep inner nodes ({inner}) below 2× leaves ({})",
            stats.leaves
        );
    }
}
