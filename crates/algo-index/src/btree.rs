//! Read-only bulk-loaded B+tree (the paper's "B+tree" column, STX-style).
//!
//! The STX B+tree used by SOSD is an in-memory B+tree whose leaves hold the
//! sorted keys. Because our data already lives in one sorted array (clustered
//! layout shared by every index), the equivalent read-only structure is a
//! static B+tree built bottom-up over fixed-size leaf blocks of that array:
//! inner levels store separator keys (the first key of each child) in
//! node-sized groups, and a lookup descends from the root doing an intra-node
//! search per level, then finishes inside one leaf block. The node size is
//! chosen so a node fills whole cache lines, which is what makes a B+tree
//! cache-friendlier than plain binary search while still paying one memory
//! access ("pointer chase") per level.

use crate::binary_search::BranchlessBinarySearch;
use crate::search::RangeIndex;
use sosd_data::key::Key;

/// Default number of keys per node (16 × 8 B = two cache lines for u64).
pub const DEFAULT_NODE_FANOUT: usize = 16;

/// Static, read-only B+tree over a sorted key slice.
#[derive(Debug, Clone)]
pub struct BPlusTree<'a, K: Key> {
    keys: &'a [K],
    /// Inner levels, bottom (closest to the data) first. Level `l` holds the
    /// separator key of every node of level `l - 1` (or of every leaf block
    /// for `l = 0`), grouped implicitly into nodes of `fanout` separators.
    levels: Vec<Vec<K>>,
    fanout: usize,
}

impl<'a, K: Key> BPlusTree<'a, K> {
    /// Bulk-load with the default fanout.
    pub fn new(keys: &'a [K]) -> Self {
        Self::with_fanout(keys, DEFAULT_NODE_FANOUT)
    }

    /// Bulk-load with an explicit fanout (keys per node, ≥ 2).
    pub fn with_fanout(keys: &'a [K], fanout: usize) -> Self {
        debug_assert!(keys.is_sorted());
        let fanout = fanout.max(2);
        let mut levels: Vec<Vec<K>> = Vec::new();
        if !keys.is_empty() {
            // Level 0 separators: first key of every leaf block.
            let mut current: Vec<K> = keys.iter().step_by(fanout).copied().collect();
            // Build upper levels until one node suffices.
            while current.len() > fanout {
                let next: Vec<K> = current.iter().step_by(fanout).copied().collect();
                levels.push(current);
                current = next;
            }
            levels.push(current);
        }
        Self {
            keys,
            levels,
            fanout,
        }
    }

    /// Number of inner levels (tree height minus the leaf level).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The node fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Intra-node routing: number of separators in
    /// `level[node_start .. node_start + node_len]` that are strictly smaller
    /// than `q`. Routing on `< q` (rather than `<= q`) is what keeps the
    /// descent correct when a run of duplicate keys spans several blocks: the
    /// lower bound of `q` can only live in the last block whose first key is
    /// `< q` (or at the very start of the following block, which the bounded
    /// search inside that block also finds).
    #[inline]
    fn child_in_node(level: &[K], node_start: usize, node_len: usize, q: K) -> usize {
        let node = &level[node_start..node_start + node_len];
        // Linear scan: nodes are small and contiguous (cache-resident once
        // fetched), matching real B+tree inner-node search.
        let mut child = 0usize;
        for &sep in node {
            if sep < q {
                child += 1;
            } else {
                break;
            }
        }
        child
    }
}

impl<K: Key> RangeIndex<K> for BPlusTree<'_, K> {
    fn lower_bound(&self, q: K) -> usize {
        let n = self.keys.len();
        if n == 0 {
            return 0;
        }
        if self.levels.is_empty() {
            return BranchlessBinarySearch::lower_bound_in(self.keys, 0, n, q);
        }
        // Descend from the root (last level) to level 0, tracking the node
        // index at each level.
        let mut node = 0usize; // node index within the current level
        for level in self.levels.iter().rev() {
            let start = node * self.fanout;
            if start >= level.len() {
                node *= self.fanout;
                continue;
            }
            let len = self.fanout.min(level.len() - start);
            let child = Self::child_in_node(level, start, len, q);
            // `child` counts separators < q; the child to follow is
            // child - 1 (clamped to 0) because separator i is the first key
            // of child i.
            node = start + child.saturating_sub(1);
        }
        // `node` is now the leaf block index.
        let leaf_start = node * self.fanout;
        if leaf_start >= n {
            return n;
        }
        let leaf_len = self.fanout.min(n - leaf_start);
        let pos = BranchlessBinarySearch::lower_bound_in(self.keys, leaf_start, leaf_len, q);
        // If the query is larger than everything in this leaf, the answer is
        // the start of the next leaf (which partition_point semantics give us
        // automatically because separators route q to the last block whose
        // first key is <= q).
        pos
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * K::size_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        "B+tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_binary_search_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 23);
            let bt = BPlusTree::new(d.as_slice());
            for w in [
                Workload::uniform_keys(&d, 300, 1),
                Workload::uniform_domain(&d, 300, 2),
                Workload::non_indexed(&d, 300, 3),
            ] {
                for (q, expected) in w.iter() {
                    assert_eq!(bt.lower_bound(q), expected, "{name} q={q}");
                }
            }
        }
    }

    #[test]
    fn different_fanouts_stay_correct() {
        let d: Dataset<u64> = SosdName::Wiki64.generate(10_000, 3);
        let w = Workload::uniform_domain(&d, 500, 9);
        for fanout in [2usize, 4, 8, 32, 128, 1024] {
            let bt = BPlusTree::with_fanout(d.as_slice(), fanout);
            for (q, expected) in w.iter() {
                assert_eq!(bt.lower_bound(q), expected, "fanout={fanout} q={q}");
            }
        }
    }

    #[test]
    fn height_shrinks_with_fanout() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(100_000, 1);
        let narrow = BPlusTree::with_fanout(d.as_slice(), 4);
        let wide = BPlusTree::with_fanout(d.as_slice(), 256);
        assert!(narrow.height() > wide.height());
        assert!(narrow.index_size_bytes() > wide.index_size_bytes());
    }

    #[test]
    fn edge_cases() {
        let empty: Vec<u64> = vec![];
        let bt = BPlusTree::new(&empty);
        assert_eq!(bt.lower_bound(5), 0);
        assert!(bt.is_empty());

        let keys = vec![10u64];
        let bt = BPlusTree::new(&keys);
        assert_eq!(bt.lower_bound(5), 0);
        assert_eq!(bt.lower_bound(10), 0);
        assert_eq!(bt.lower_bound(11), 1);

        let keys = vec![5u64; 100];
        let bt = BPlusTree::new(&keys);
        assert_eq!(bt.lower_bound(5), 0);
        assert_eq!(bt.lower_bound(4), 0);
        assert_eq!(bt.lower_bound(6), 100);
    }

    #[test]
    fn duplicates_return_first_occurrence() {
        let mut keys = Vec::new();
        for i in 0..1000u64 {
            keys.push(i / 7); // runs of 7 duplicates
        }
        let bt = BPlusTree::new(&keys);
        for q in 0..=(999 / 7) {
            assert_eq!(bt.lower_bound(q), keys.partition_point(|&k| k < q), "q={q}");
        }
    }

    #[test]
    fn works_with_u32_keys() {
        let d: Dataset<u32> = SosdName::Uden32.generate(5_000, 2);
        let bt = BPlusTree::new(d.as_slice());
        let w = Workload::uniform_keys(&d, 300, 4);
        for (q, expected) in w.iter() {
            assert_eq!(bt.lower_bound(q), expected);
        }
    }
}
