//! Radix Binary Search (the paper's "RBS" column).
//!
//! RBS is SOSD's simple two-stage baseline: a radix table maps a fixed-length
//! key prefix to the range of positions whose keys share that prefix, and a
//! binary search finishes inside that range. The radix table is one array
//! lookup (usually cached for hot prefixes), so RBS is essentially "binary
//! search with log2(table size) fewer iterations".

use crate::binary_search::BranchlessBinarySearch;
use crate::search::RangeIndex;
use sosd_data::key::Key;

/// Default number of prefix bits (2^18 entries ≈ 1 MiB of u32 offsets).
pub const DEFAULT_RADIX_BITS: u32 = 18;

/// Radix Binary Search index.
#[derive(Debug, Clone)]
pub struct RadixBinarySearch<'a, K: Key> {
    keys: &'a [K],
    /// `table[p]` = position of the first key whose prefix is `>= p`;
    /// `table[1 << bits]` = `keys.len()`.
    table: Vec<u32>,
    min_key: u64,
    shift: u32,
}

impl<'a, K: Key> RadixBinarySearch<'a, K> {
    /// Build with the default number of radix bits.
    pub fn new(keys: &'a [K]) -> Self {
        Self::with_radix_bits(keys, DEFAULT_RADIX_BITS)
    }

    /// Build with an explicit number of radix bits (1..=26).
    pub fn with_radix_bits(keys: &'a [K], bits: u32) -> Self {
        debug_assert!(keys.is_sorted());
        debug_assert!(keys.len() < u32::MAX as usize, "positions stored as u32");
        let bits = bits.clamp(1, 26);
        if keys.is_empty() {
            return Self {
                keys,
                table: vec![0, 0],
                min_key: 0,
                shift: 63,
            };
        }
        let min_key = keys[0].to_u64();
        let max_key = keys[keys.len() - 1].to_u64();
        let span = max_key - min_key;
        let significant_bits = (64 - span.leading_zeros()).max(1);
        let bits = bits.min(significant_bits);
        let shift = significant_bits - bits;
        let table_len = (1usize << bits) + 1;
        let mut table = vec![0u32; table_len];
        let mut pos = 0usize;
        for (p, entry) in table.iter_mut().enumerate() {
            while pos < keys.len() && (((keys[pos].to_u64() - min_key) >> shift) as usize) < p {
                pos += 1;
            }
            *entry = pos as u32;
        }
        Self {
            keys,
            table,
            min_key,
            shift,
        }
    }

    /// Number of radix-table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn bucket(&self, q: u64) -> usize {
        let offset = q.saturating_sub(self.min_key);
        ((offset >> self.shift) as usize).min(self.table.len() - 2)
    }
}

impl<K: Key> RangeIndex<K> for RadixBinarySearch<'_, K> {
    #[inline]
    fn lower_bound(&self, q: K) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        let qv = q.to_u64();
        if qv <= self.min_key {
            return 0;
        }
        let max_key = self.keys[self.keys.len() - 1].to_u64();
        if qv > max_key {
            return self.keys.len();
        }
        let b = self.bucket(qv);
        let lo = self.table[b] as usize;
        let hi = self.table[b + 1] as usize;
        BranchlessBinarySearch::lower_bound_in(self.keys, lo, hi - lo, q)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    fn name(&self) -> &'static str {
        "RBS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_binary_search_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 17);
            let rbs = RadixBinarySearch::new(d.as_slice());
            for w in [
                Workload::uniform_keys(&d, 300, 1),
                Workload::uniform_domain(&d, 300, 2),
                Workload::non_indexed(&d, 300, 3),
            ] {
                for (q, expected) in w.iter() {
                    assert_eq!(rbs.lower_bound(q), expected, "{name} q={q}");
                }
            }
        }
    }

    #[test]
    fn works_with_u32_keys() {
        let d: Dataset<u32> = SosdName::Amzn32.generate(5_000, 3);
        let rbs = RadixBinarySearch::new(d.as_slice());
        let w = Workload::uniform_domain(&d, 500, 5);
        for (q, expected) in w.iter() {
            assert_eq!(rbs.lower_bound(q), expected);
        }
    }

    #[test]
    fn more_bits_mean_bigger_table() {
        let d: Dataset<u64> = SosdName::Uspr64.generate(10_000, 1);
        let small = RadixBinarySearch::with_radix_bits(d.as_slice(), 8);
        let large = RadixBinarySearch::with_radix_bits(d.as_slice(), 20);
        assert!(large.index_size_bytes() > small.index_size_bytes());
        // Both stay correct.
        let w = Workload::uniform_keys(&d, 200, 2);
        for (q, expected) in w.iter() {
            assert_eq!(small.lower_bound(q), expected);
            assert_eq!(large.lower_bound(q), expected);
        }
    }

    #[test]
    fn edge_cases() {
        let empty: Vec<u64> = vec![];
        let rbs = RadixBinarySearch::new(&empty);
        assert_eq!(rbs.lower_bound(5), 0);

        let keys = vec![100u64, 200, 200, 300];
        let rbs = RadixBinarySearch::new(&keys);
        assert_eq!(rbs.lower_bound(50), 0);
        assert_eq!(rbs.lower_bound(100), 0);
        assert_eq!(rbs.lower_bound(200), 1);
        assert_eq!(rbs.lower_bound(250), 3);
        assert_eq!(rbs.lower_bound(300), 3);
        assert_eq!(rbs.lower_bound(301), 4);

        let constant = vec![7u64; 50];
        let rbs = RadixBinarySearch::new(&constant);
        assert_eq!(rbs.lower_bound(7), 0);
        assert_eq!(rbs.lower_bound(8), 50);
    }
}
