//! Binary search baselines (the paper's "BS" column) and the branchless
//! variant used as a bounded search primitive.

use crate::search::RangeIndex;
use sosd_data::key::Key;

/// Standard-library-style binary search over the whole array (the "BS"
/// baseline of Table 2: `std::lower_bound` in the C++ SOSD harness).
#[derive(Debug, Clone)]
pub struct BinarySearchIndex<'a, K: Key> {
    keys: &'a [K],
}

impl<'a, K: Key> BinarySearchIndex<'a, K> {
    /// Wrap a sorted key slice.
    pub fn new(keys: &'a [K]) -> Self {
        debug_assert!(keys.is_sorted());
        Self { keys }
    }
}

impl<K: Key> RangeIndex<K> for BinarySearchIndex<'_, K> {
    #[inline]
    fn lower_bound(&self, q: K) -> usize {
        self.keys.partition_point(|&k| k < q)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        0 // no auxiliary structure
    }

    fn name(&self) -> &'static str {
        "BS"
    }
}

/// Branchless binary search: the comparison result is folded into the index
/// arithmetic instead of a conditional branch, which removes branch
/// mispredictions on random lookups (the dominant cost once the working set
/// exceeds cache). Used both as a standalone baseline and as the bounded
/// local-search routine for corrected learned indexes.
#[derive(Debug, Clone)]
pub struct BranchlessBinarySearch<'a, K: Key> {
    keys: &'a [K],
}

impl<'a, K: Key> BranchlessBinarySearch<'a, K> {
    /// Wrap a sorted key slice.
    pub fn new(keys: &'a [K]) -> Self {
        debug_assert!(keys.is_sorted());
        Self { keys }
    }

    /// Branchless lower bound over `keys[offset..offset + len]`, returned as
    /// an absolute position. `offset + len` must not exceed the slice length.
    #[inline]
    pub fn lower_bound_in(keys: &[K], offset: usize, len: usize, q: K) -> usize {
        debug_assert!(offset + len <= keys.len());
        let mut base = offset;
        let mut remaining = len;
        while remaining > 1 {
            let half = remaining / 2;
            // Move the base past the first half when its last element is < q.
            let mid = base + half - 1;
            if keys[mid] < q {
                base = mid + 1;
                remaining -= half;
            } else {
                remaining = half;
            }
        }
        if remaining == 1 && base < offset + len && keys[base] < q {
            base + 1
        } else {
            base
        }
    }
}

impl<K: Key> RangeIndex<K> for BranchlessBinarySearch<'_, K> {
    #[inline]
    fn lower_bound(&self, q: K) -> usize {
        Self::lower_bound_in(self.keys, 0, self.keys.len(), q)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn index_size_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "BS-branchless"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sosd_data::prelude::*;

    #[test]
    fn agrees_with_partition_point_on_all_datasets() {
        for name in SosdName::all() {
            let d: Dataset<u64> = name.generate(5_000, 3);
            let keys = d.as_slice();
            let bs = BinarySearchIndex::new(keys);
            let bl = BranchlessBinarySearch::new(keys);
            let w = Workload::uniform_domain(&d, 500, 7);
            for (q, expected) in w.iter() {
                assert_eq!(bs.lower_bound(q), expected, "{name} BS q={q}");
                assert_eq!(bl.lower_bound(q), expected, "{name} branchless q={q}");
            }
        }
    }

    #[test]
    fn edge_queries() {
        let keys = vec![10u64, 20, 30];
        let bs = BinarySearchIndex::new(&keys);
        let bl = BranchlessBinarySearch::new(&keys);
        for idx in [&bs as &dyn RangeIndex<u64>, &bl as &dyn RangeIndex<u64>] {
            assert_eq!(idx.lower_bound(5), 0);
            assert_eq!(idx.lower_bound(10), 0);
            assert_eq!(idx.lower_bound(11), 1);
            assert_eq!(idx.lower_bound(30), 2);
            assert_eq!(idx.lower_bound(31), 3, "past the end");
        }
    }

    #[test]
    fn empty_slice() {
        let keys: Vec<u64> = vec![];
        let bs = BinarySearchIndex::new(&keys);
        let bl = BranchlessBinarySearch::new(&keys);
        assert_eq!(bs.lower_bound(1), 0);
        assert_eq!(bl.lower_bound(1), 0);
        assert!(bs.is_empty());
    }

    #[test]
    fn duplicates_return_first_occurrence() {
        let keys = vec![1u64, 5, 5, 5, 9];
        let bl = BranchlessBinarySearch::new(&keys);
        assert_eq!(bl.lower_bound(5), 1);
        let bs = BinarySearchIndex::new(&keys);
        assert_eq!(bs.lower_bound(5), 1);
    }

    #[test]
    fn bounded_window_search_is_absolute() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 2).collect();
        // Search only within [40, 60): keys 80..118.
        let pos = BranchlessBinarySearch::lower_bound_in(&keys, 40, 20, 95);
        assert_eq!(pos, 48, "95 rounds up to key 96 at index 48");
        // Query below the window clamps to the window start.
        assert_eq!(BranchlessBinarySearch::lower_bound_in(&keys, 40, 20, 0), 40);
        // Query above the window clamps to the window end.
        assert_eq!(
            BranchlessBinarySearch::lower_bound_in(&keys, 40, 20, 1_000),
            60
        );
        // Zero-length window.
        assert_eq!(BranchlessBinarySearch::lower_bound_in(&keys, 7, 0, 3), 7);
    }
}
