//! CLI for `shift-lint`. See the library docs for the rule set.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for (name, what) in shift_lint::RULES {
                println!("{name:>18}  {what}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: shift-lint check [--root DIR]\n       shift-lint rules\n\n\
                 Lints the workspace's crate sources for concurrency/durability\n\
                 invariants (see `shift-lint rules`). Exit 1 on findings."
            );
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match shift_lint::check_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("shift-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for d in &findings {
                println!("{}\n", d.render());
            }
            println!("shift-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("shift-lint: {e}");
            ExitCode::from(2)
        }
    }
}
