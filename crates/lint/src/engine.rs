//! Workspace walking and rule orchestration.
//!
//! The engine scans every `.rs` file under the workspace's crate source
//! roots (`src/` and `crates/*/src/`). Integration tests, benches and
//! examples are *not* scanned — the rules guard production code paths, and
//! `#[cfg(test)]` items inside scanned files are masked by [`FileCtx`].

use crate::context::FileCtx;
use crate::rules::{self, Diagnostic};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (rule 2). These are the
/// serving-path crates: a panic in them can take down reader threads or
/// poison the store-wide locks. The observability crate is included because
/// its counters and timers run inline on those same paths.
pub const PANIC_FREE_ROOTS: [&str; 3] = ["crates/store/src", "crates/core/src", "crates/obs/src"];

/// Crates whose non-test code may not call `Instant::now()` without a
/// sampling guard or an `allow(timing)` justification (rule 8). These are
/// the hot-path crates where an unconditional clock read per operation
/// would show up in the latency profile it is trying to measure.
pub const TIMING_ROOTS: [&str; 2] = ["crates/store/src", "crates/core/src"];

/// Run the linter over the workspace rooted at `root`.
///
/// Returns all findings, sorted by path, line, column. I/O failures (a
/// vanished file, an unreadable directory) surface as `Err` — the linter
/// must never pass vacuously.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        collect_rs_files(&top_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?.collect::<Result<Vec<_>, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .rs files under {} — wrong --root?", root.display()),
        ));
    }
    files.sort();

    let mut out = Vec::new();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
        let scope = rules::scope_for(&rel, &PANIC_FREE_ROOTS, &TIMING_ROOTS);
        let ctx = FileCtx::new(rel, &src);
        rules::check_file(&ctx, scope, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(out)
}

/// Lint a single in-memory source, as if it lived at `rel_path` in the
/// workspace. This is the fixture entry point the rule tests use.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let rel = PathBuf::from(rel_path);
    let scope = rules::scope_for(&rel, &PANIC_FREE_ROOTS, &TIMING_ROOTS);
    let ctx = FileCtx::new(rel, src);
    let mut out = Vec::new();
    rules::check_file(&ctx, scope, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
