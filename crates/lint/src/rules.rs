//! The rule set. Each rule walks one [`FileCtx`] token stream and emits
//! [`Diagnostic`]s; `#[cfg(test)]` items are invisible to every rule.
//!
//! See the crate docs for the full rationale of each rule and the
//! annotation grammar that satisfies it.

use crate::context::{AnnotKind, FileCtx};
use crate::lexer::{Tok, TokKind};
use std::path::Path;

/// One finding, rendered rustc-style by [`Diagnostic::render`].
#[derive(Debug)]
pub struct Diagnostic {
    /// Stable rule identifier (`atomics-ordering`, `panic-path`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
    /// Workspace-relative file.
    pub path: std::path::PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Diagnostic {
    fn at(rule: &'static str, ctx: &FileCtx, tok: &Tok, msg: String) -> Self {
        Self {
            rule,
            msg,
            path: ctx.path.clone(),
            line: tok.line,
            col: tok.col,
        }
    }

    /// Render as `error[rule]: msg` + ` --> file:line:col`.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule,
            self.msg,
            self.path.display(),
            self.line,
            self.col
        )
    }
}

/// Which rule families apply to a file, decided by the engine from its path.
#[derive(Debug, Clone, Copy)]
pub struct RuleScope {
    /// Rule 2 (panic-free) applies — serving-path crates only.
    pub panic_free: bool,
    /// The file is a crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*`)
    /// and must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// Rule 8 (instant-in-hot-path) applies — hot-path crates where a raw
    /// `Instant::now()` on every operation would dominate the work itself.
    pub timing_scoped: bool,
}

/// Names and one-line summaries of every rule, for `shift-lint rules`.
pub const RULES: [(&str, &str); 8] = [
    (
        "atomics-ordering",
        "every atomic Ordering::* site carries `// lint: ordering(<Ordering>) <why>`",
    ),
    (
        "panic-path",
        "no unwrap/expect/panic!/assert! in serving-path crates (debug_assert! ok); allow(panic) for provably-infallible sites",
    ),
    (
        "unsafe-hygiene",
        "unsafe blocks need `// SAFETY:`; crate roots need `#![forbid(unsafe_code)]`",
    ),
    (
        "guard-across-sync",
        "no lock guard live across sync_all/sync_data unless allow(guard-across-sync)",
    ),
    (
        "bare-sleep",
        "no thread::sleep outside tests (workers wait on condvars); allow(sleep) for intentional throttles",
    ),
    (
        "instant-in-hot-path",
        "no raw Instant::now() in hot-path crates — clock reads on the serving path must sit behind a sampler; allow(timing) for deliberate unsampled phases",
    ),
    (
        "bad-annotation",
        "lint: comments must parse and carry a justification",
    ),
    (
        "unused-annotation",
        "every lint: annotation must match a real site (no rot)",
    ),
];

/// Run every applicable rule over `ctx` and append findings to `out`.
pub fn check_file(ctx: &FileCtx, scope: RuleScope, out: &mut Vec<Diagnostic>) {
    atomics_ordering(ctx, out);
    if scope.panic_free {
        panic_path(ctx, out);
    }
    unsafe_hygiene(ctx, scope, out);
    guard_across_sync(ctx, out);
    bare_sleep(ctx, out);
    if scope.timing_scoped {
        instant_in_hot_path(ctx, out);
    }
    annotation_hygiene(ctx, out);
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule 1: every `Ordering::<atomic variant>` site in non-test code must be
/// justified by a matching `lint: ordering(<variant>)` annotation on its
/// line. `Relaxed` is called out as the hard error it is — an unjustified
/// relaxed access is how publication bugs are born — but every ordering
/// needs its sync role written down.
fn atomics_ordering(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("Ordering") || ctx.is_masked(i) {
            continue;
        }
        // Match `Ordering :: <variant>` (the variant set is disjoint from
        // `cmp::Ordering`'s Less/Equal/Greater, so no path analysis needed).
        let Some(variant) = path_segment_after(&ctx.toks, i) else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        if ctx.take_ordering(&variant.text, variant.line).is_some()
            || ctx.take_ordering(&variant.text, t.line).is_some()
        {
            continue;
        }
        let hint = format!(
            "add `// lint: ordering({v}) <sync role>` on this line (or the line above)",
            v = variant.text
        );
        let msg = if variant.text == "Relaxed" {
            format!("unjustified `Ordering::Relaxed` — relaxed atomics carry no happens-before edge; {hint}")
        } else {
            format!(
                "`Ordering::{v}` without a written justification of its sync role; {hint}",
                v = variant.text
            )
        };
        out.push(Diagnostic::at("atomics-ordering", ctx, variant, msg));
    }
}

/// The identifier after `<tok i> ::`, if the next tokens are `:` `:` ident.
fn path_segment_after(toks: &[Tok], i: usize) -> Option<&Tok> {
    if toks.get(i + 1)?.is_punct(':') && toks.get(i + 2)?.is_punct(':') {
        let t = toks.get(i + 3)?;
        (t.kind == TokKind::Ident).then_some(t)
    } else {
        None
    }
}

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Rule 2: the serving path must not panic. `.unwrap()` / `.expect(…)` and
/// the panicking macro family are errors in non-test code of the scoped
/// crates; `debug_assert!*` stays allowed (it vanishes in release builds).
/// A provably-infallible site carries `lint: allow(panic) <proof>`.
fn panic_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_masked(i) {
            continue;
        }
        let name = t.text.as_str();
        let is_method = PANIC_METHODS.contains(&name)
            && i > 0
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let is_macro =
            PANIC_MACROS.contains(&name) && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if !(is_method || is_macro) {
            continue;
        }
        if ctx.take_allow("panic", t.line).is_some() {
            continue;
        }
        let what = if is_method {
            format!("`.{name}()`")
        } else {
            format!("`{name}!`")
        };
        out.push(Diagnostic::at(
            "panic-path",
            ctx,
            t,
            format!(
                "{what} on the serving path — return a typed error, use debug_assert!, \
                 or prove infallibility with `// lint: allow(panic) <why>`"
            ),
        ));
    }
}

/// Rule 3: `unsafe` tokens need a `// SAFETY:` comment on the same line or
/// within the three lines above; crate roots without any unsafe must say so
/// with `#![forbid(unsafe_code)]` (escape hatch: `lint: allow(unsafe-crate)`
/// bound to the first code line).
fn unsafe_hygiene(ctx: &FileCtx, scope: RuleScope, out: &mut Vec<Diagnostic>) {
    let mut has_unsafe = false;
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("unsafe") || ctx.is_masked(i) {
            continue;
        }
        has_unsafe = true;
        if !ctx.has_safety_comment(t.line, 3) {
            out.push(Diagnostic::at(
                "unsafe-hygiene",
                ctx,
                t,
                "`unsafe` without a `// SAFETY:` comment on or directly above it".to_string(),
            ));
        }
    }
    if scope.crate_root && !has_forbid_unsafe(&ctx.toks) && !has_unsafe {
        if let Some(first) = ctx.toks.first() {
            if ctx.take_allow("unsafe-crate", first.line).is_some() {
                return;
            }
            out.push(Diagnostic::at(
                "unsafe-hygiene",
                ctx,
                first,
                "crate root is missing `#![forbid(unsafe_code)]` (this workspace is 100% safe Rust; keep it machine-checked)"
                    .to_string(),
            ));
        }
    }
}

/// Detect the inner attribute `#![forbid(unsafe_code)]` anywhere in a file.
///
/// The feature-gated form
/// `#![cfg_attr(not(feature = "…"), forbid(unsafe_code))]` also satisfies
/// the rule: a crate whose default build forbids unsafe and whose opt-in
/// feature escalates only to `deny` (with per-site `// SAFETY:` audits,
/// which this rule still enforces) keeps the machine-checked guarantee for
/// every default consumer.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    let plain = toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    // `# ! [ cfg_attr ( not ( feature = <str> ) , forbid ( unsafe_code ) ) ]`
    let feature_gated = toks.windows(18).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("cfg_attr")
            && w[4].is_punct('(')
            && w[5].is_ident("not")
            && w[6].is_punct('(')
            && w[7].is_ident("feature")
            && w[8].is_punct('=')
            && w[9].kind == TokKind::Str
            && w[10].is_punct(')')
            && w[11].is_punct(',')
            && w[12].is_ident("forbid")
            && w[13].is_punct('(')
            && w[14].is_ident("unsafe_code")
            && w[15].is_punct(')')
            && w[16].is_punct(')')
            && w[17].is_punct(']')
    });
    plain || feature_gated
}

/// `.sync()` is included alongside the raw fd syncs: the WAL writer's
/// `sync()` is the store's durability point and bottoms out in `fdatasync`.
const SYNC_CALLS: [&str; 3] = ["sync_all", "sync_data", "sync"];
const GUARD_METHODS: [&str; 2] = ["lock", "write"];

/// Rule 4 (heuristic): a `let g = ….lock()/….write()` guard binding that is
/// still in scope at a `sync_all()`/`sync_data()` call holds that lock
/// across an fsync — seconds of stall for every other thread on the lock.
/// The intentional sites (the WAL lock doubling as the checkpoint barrier)
/// carry `lint: allow(guard-across-sync)` on the *sync* line or the lock
/// line. Read guards (`.read()`) are exempt: the store's read paths pin and
/// release before any I/O, and `.read()` collides with `io::Read::read`.
fn guard_across_sync(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    // Live guards: (name, brace depth at binding, token index, allow-line).
    let mut guards: Vec<(String, i64, usize)> = Vec::new();
    let mut depth = 0i64;
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.chars().next() {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    guards.retain(|&(_, d, _)| d <= depth);
                }
                _ => {}
            }
            continue;
        }
        if t.kind != TokKind::Ident || ctx.is_masked(i) {
            continue;
        }
        // `drop(name)` ends a guard early.
        if t.is_ident("drop") && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(arg) = ctx.toks.get(i + 2) {
                guards.retain(|(name, _, _)| name != &arg.text);
            }
            continue;
        }
        // `let <name> … = … .lock() / .write() …;` — bind a guard.
        if GUARD_METHODS.contains(&t.text.as_str())
            && i > 0
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && ctx.toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = binding_name_before(&ctx.toks, i) {
                if name != "_" {
                    guards.push((name, depth, i));
                }
            }
            continue;
        }
        // A sync method call with guards live?
        if SYNC_CALLS.contains(&t.text.as_str())
            && i > 0
            && ctx.toks[i - 1].is_punct('.')
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            for &(ref name, _, gi) in &guards {
                let lock_line = ctx.toks[gi].line;
                if ctx.take_allow("guard-across-sync", t.line).is_some()
                    || ctx.take_allow("guard-across-sync", lock_line).is_some()
                {
                    continue;
                }
                out.push(Diagnostic::at(
                    "guard-across-sync",
                    ctx,
                    t,
                    format!(
                        "`{sync}` runs while guard `{name}` (acquired line {lock_line}) is live — \
                         an fsync under a lock stalls every waiter; drop the guard first or \
                         annotate `// lint: allow(guard-across-sync) <why>`",
                        sync = t.text
                    ),
                ));
            }
        }
    }
}

/// Walk back from a `.lock()`/`.write()` call to the `let` that binds it
/// (same statement: no `;` in between) and return the bound name.
fn binding_name_before(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            // `let [mut] name` — also looking through one level of
            // `let Ok([mut] name)` / `let Some([mut] name)` patterns.
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            {
                k += 2;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
            }
            let name = toks.get(k)?;
            return (name.kind == TokKind::Ident).then(|| name.text.clone());
        }
    }
    None
}

/// Rule 5: `thread::sleep` in non-test code is a scheduling smell — the
/// maintenance/hydration workers wait on condvars with wake-up kicks, and
/// polling loops burn latency budgets. `lint: allow(sleep)` marks the
/// intentional throttles.
fn bare_sleep(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("thread") || ctx.is_masked(i) {
            continue;
        }
        let Some(seg) = path_segment_after(&ctx.toks, i) else {
            continue;
        };
        if !seg.is_ident("sleep") {
            continue;
        }
        if ctx.take_allow("sleep", seg.line).is_some() || ctx.take_allow("sleep", t.line).is_some()
        {
            continue;
        }
        out.push(Diagnostic::at(
            "bare-sleep",
            ctx,
            seg,
            "bare `thread::sleep` outside tests — workers must wait on a condvar (kickable, \
             shutdown-aware); annotate `// lint: allow(sleep) <why>` if the delay is the point"
                .to_string(),
        ));
    }
}

/// Rule 8: a raw `Instant::now()` in a hot-path crate is a per-operation
/// clock read — tens of nanoseconds of syscall-adjacent work on paths whose
/// entire budget is tens of nanoseconds. Timing there must go through a
/// sampling guard (`shift_obs::Sampler::start()` amortises the clock to
/// 1-in-N operations and compiles to one relaxed fetch_add when disarmed).
/// Cold paths that deliberately time every occurrence (ms-scale maintenance
/// phases, recovery) carry `// lint: allow(timing) <why>`.
fn instant_in_hot_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("Instant") || ctx.is_masked(i) {
            continue;
        }
        let Some(seg) = path_segment_after(&ctx.toks, i) else {
            continue;
        };
        if !seg.is_ident("now") {
            continue;
        }
        if ctx.take_allow("timing", seg.line).is_some()
            || ctx.take_allow("timing", t.line).is_some()
        {
            continue;
        }
        out.push(Diagnostic::at(
            "instant-in-hot-path",
            ctx,
            seg,
            "raw `Instant::now()` in a hot-path crate — put the clock read behind a \
             sampling guard (`Sampler::start()`), or mark a deliberately-unsampled \
             cold path with `// lint: allow(timing) <why>`"
                .to_string(),
        ));
    }
}

/// Rules 6–7: malformed `lint:` comments are findings, and so is any
/// well-formed annotation no rule consumed — a stale allow is a silent
/// hole in the audit.
fn annotation_hygiene(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for b in &ctx.bad_annots {
        out.push(Diagnostic {
            rule: "bad-annotation",
            msg: b.what.clone(),
            path: ctx.path.clone(),
            line: b.line,
            col: b.col,
        });
    }
    for a in &ctx.annots {
        if a.used.get() || ctx.line_is_masked(a.target_line) {
            continue;
        }
        let kind = match &a.kind {
            AnnotKind::Ordering(v) => format!("ordering({v})"),
            AnnotKind::Allow(r) => format!("allow({r})"),
        };
        out.push(Diagnostic {
            rule: "unused-annotation",
            msg: format!(
                "`lint: {kind}` matches no site on line {} — remove it or move it to the code it justifies",
                a.target_line
            ),
            path: ctx.path.clone(),
            line: a.line,
            col: 1,
        });
    }
}

/// Decide rule scope from a workspace-relative path.
pub fn scope_for(path: &Path, panic_free_roots: &[&str], timing_roots: &[&str]) -> RuleScope {
    let p = path.to_string_lossy().replace('\\', "/");
    let panic_free = panic_free_roots.iter().any(|r| p.starts_with(r));
    let timing_scoped = timing_roots.iter().any(|r| p.starts_with(r));
    let crate_root = p.ends_with("src/lib.rs")
        || p.ends_with("src/main.rs")
        || p.contains("/src/bin/")
        || p.starts_with("examples/");
    RuleScope {
        panic_free,
        crate_root,
        timing_scoped,
    }
}
