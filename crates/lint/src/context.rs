//! Per-file analysis context: lexed tokens, parsed `lint:` annotations, and
//! `#[cfg(test)]` masking.
//!
//! ## Annotation syntax
//!
//! Justifications live in ordinary line or block comments and bind to the
//! first *code* line at or after the comment:
//!
//! ```text
//! // lint: ordering(Relaxed) per-shard stats counter, no synchronising role
//! self.hits.fetch_add(1, Ordering::Relaxed);
//!
//! let n = known_nonempty.last().unwrap(); // lint: allow(panic) len checked above
//! ```
//!
//! Forms: `lint: ordering(<Ordering>) <reason>` and
//! `lint: allow(<rule>) <reason>`, where `<rule>` is one of `panic`,
//! `guard-across-sync`, `sleep`, `unsafe-crate`. The reason is mandatory —
//! an annotation is a recorded design decision, not a mute button — and
//! every annotation must be *consumed* by a matching site, so stale ones
//! fail the build instead of rotting.

use crate::lexer::{self, Comment, Lexed, Tok, TokKind};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// What an annotation claims about its target line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotKind {
    /// `lint: ordering(X)` — justifies an `Ordering::X` use on the line.
    Ordering(String),
    /// `lint: allow(rule)` — suppresses `rule` findings on the line.
    Allow(String),
}

/// One parsed `lint:` annotation.
#[derive(Debug)]
pub struct Annot {
    /// What the annotation justifies.
    pub kind: AnnotKind,
    /// Line of the comment that carries it (for diagnostics).
    pub line: u32,
    /// The code line the annotation binds to.
    pub target_line: u32,
    /// The mandatory free-text justification.
    pub reason: String,
    /// Set when a rule consumes the annotation; unconsumed ones are findings.
    pub used: Cell<bool>,
}

/// A malformed `lint:` comment (unknown form, missing reason, …).
#[derive(Debug)]
pub struct BadAnnot {
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
    /// What is wrong with it.
    pub what: String,
}

/// Everything the rules need to know about one source file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path (used verbatim in diagnostics).
    pub path: PathBuf,
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// Parsed well-formed annotations.
    pub annots: Vec<Annot>,
    /// Malformed `lint:` comments.
    pub bad_annots: Vec<BadAnnot>,
    /// Token-index ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
    /// items — invisible to every rule.
    masked: Vec<(usize, usize)>,
    /// Line ranges (inclusive) of the masked items, for comment masking.
    masked_lines: Vec<(u32, u32)>,
}

impl FileCtx {
    /// Lex and analyse one file.
    pub fn new(path: PathBuf, src: &str) -> Self {
        let Lexed { toks, comments } = lexer::lex(src);
        let masked = mask_test_items(&toks);
        let masked_lines = masked
            .iter()
            .map(|&(s, e)| (toks[s].line, toks[e].line))
            .collect::<Vec<_>>();
        let mut ctx = Self {
            path,
            toks,
            comments,
            annots: Vec::new(),
            bad_annots: Vec::new(),
            masked,
            masked_lines,
        };
        ctx.parse_annotations();
        ctx
    }

    /// True when token `ti` belongs to a `#[cfg(test)]` / `#[test]` item.
    pub fn is_masked(&self, ti: usize) -> bool {
        self.masked.iter().any(|&(s, e)| s <= ti && ti <= e)
    }

    /// True when `line` falls inside a masked (test-only) item.
    pub fn line_is_masked(&self, line: u32) -> bool {
        self.masked_lines
            .iter()
            .any(|&(s, e)| s <= line && line <= e)
    }

    /// The annotations bound to `line`.
    pub fn annots_for(&self, line: u32) -> impl Iterator<Item = &Annot> {
        self.annots.iter().filter(move |a| a.target_line == line)
    }

    /// Consume (and return) an `allow(rule)` annotation bound to `line`.
    pub fn take_allow(&self, rule: &str, line: u32) -> Option<&Annot> {
        let a = self
            .annots_for(line)
            .find(|a| a.kind == AnnotKind::Allow(rule.to_string()))?;
        a.used.set(true);
        Some(a)
    }

    /// Consume (and return) an `ordering(name)` annotation bound to `line`.
    pub fn take_ordering(&self, name: &str, line: u32) -> Option<&Annot> {
        let a = self
            .annots_for(line)
            .find(|a| matches!(&a.kind, AnnotKind::Ordering(n) if n == name))?;
        a.used.set(true);
        Some(a)
    }

    /// True when a `// SAFETY:` comment ends on `line` or one of the
    /// `above` lines directly above it.
    pub fn has_safety_comment(&self, line: u32, above: u32) -> bool {
        self.comments.iter().any(|c| {
            c.end_line <= line
                && c.end_line + above >= line
                && c.text
                    .trim_start_matches(['/', '*', '!'])
                    .trim_start()
                    .starts_with("SAFETY:")
        })
    }

    fn parse_annotations(&mut self) {
        // Lines that carry at least one token, for binding comments to code.
        let tok_lines: BTreeSet<u32> = self.toks.iter().map(|t| t.line).collect();
        let mut annots = Vec::new();
        let mut bad = Vec::new();
        for c in &self.comments {
            let Some(body) = annotation_body(&c.text) else {
                continue;
            };
            // Bind to the comment's own line when code precedes it there,
            // else to the next line that has code on it.
            let target_line = if tok_lines.contains(&c.line)
                && self.toks.iter().any(|t| t.line == c.line && t.col < c.col)
            {
                c.line
            } else {
                match tok_lines.range(c.end_line + 1..).next() {
                    Some(&l) => l,
                    None => {
                        bad.push(BadAnnot {
                            line: c.line,
                            col: c.col,
                            what: "annotation binds to no code line".into(),
                        });
                        continue;
                    }
                }
            };
            match parse_annotation(body) {
                Ok(kind_reason) => annots.push(Annot {
                    kind: kind_reason.0,
                    line: c.line,
                    target_line,
                    reason: kind_reason.1,
                    used: Cell::new(false),
                }),
                Err(what) => bad.push(BadAnnot {
                    line: c.line,
                    col: c.col,
                    what,
                }),
            }
        }
        self.annots = annots;
        self.bad_annots = bad;
    }
}

/// Extract the `lint: …` body from a comment, if it carries one.
fn annotation_body(comment: &str) -> Option<&str> {
    let stripped = comment.trim_start_matches(['/', '*', '!']).trim_start();
    stripped.strip_prefix("lint:").map(str::trim_start)
}

const ALLOW_RULES: [&str; 5] = [
    "panic",
    "guard-across-sync",
    "sleep",
    "unsafe-crate",
    "timing",
];
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn parse_annotation(body: &str) -> Result<(AnnotKind, String), String> {
    let open = body.find('(').ok_or_else(|| {
        format!("malformed annotation `lint: {body}`: expected `kind(arg) reason`")
    })?;
    let close = body[open..]
        .find(')')
        .map(|k| open + k)
        .ok_or_else(|| format!("malformed annotation `lint: {body}`: unclosed `(`"))?;
    let kind = body[..open].trim();
    let arg = body[open + 1..close].trim();
    let reason = body[close + 1..].trim();
    if reason.is_empty() {
        return Err(format!(
            "annotation `lint: {kind}({arg})` is missing its justification text"
        ));
    }
    match kind {
        "ordering" => {
            if ORDERINGS.contains(&arg) {
                Ok((AnnotKind::Ordering(arg.to_string()), reason.to_string()))
            } else {
                Err(format!(
                    "`lint: ordering({arg})`: unknown ordering (expected one of {ORDERINGS:?})"
                ))
            }
        }
        "allow" => {
            if ALLOW_RULES.contains(&arg) {
                Ok((AnnotKind::Allow(arg.to_string()), reason.to_string()))
            } else {
                Err(format!(
                    "`lint: allow({arg})`: unknown rule (expected one of {ALLOW_RULES:?})"
                ))
            }
        }
        other => Err(format!(
            "`lint: {other}(…)`: unknown annotation kind (expected `ordering` or `allow`)"
        )),
    }
}

/// Find token ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// attributes and the item each one precedes.
fn mask_test_items(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(attr_end) = test_attr_end(toks, i) {
            if out.last().is_none_or(|&(_, e)| i > e) {
                let item_end = item_end_after(toks, attr_end + 1);
                out.push((i, item_end));
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// If the tokens at `i` start a `#[cfg(test)]`, `#[test]` or `#[bench]`
/// attribute, return the index of its closing `]`.
fn test_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !(toks.get(i)?.is_punct('#') && toks.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let name = toks.get(i + 2)?;
    if name.is_ident("test") || name.is_ident("bench") {
        return toks.get(i + 3)?.is_punct(']').then_some(i + 3);
    }
    if name.is_ident("cfg")
        && toks.get(i + 3)?.is_punct('(')
        && toks.get(i + 4)?.is_ident("test")
        && toks.get(i + 5)?.is_punct(')')
        && toks.get(i + 6)?.is_punct(']')
    {
        return Some(i + 6);
    }
    None
}

/// The index of the last token of the item starting at `i` (first token
/// after an attribute): either the matching `}` of its first brace block,
/// or a `;` at bracket depth zero (`#[cfg(test)] use …;`), skipping any
/// further attributes in between.
fn item_end_after(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.chars().next() {
                Some('{') | Some('(') | Some('[') => depth += 1,
                Some('}') | Some(')') | Some(']') => {
                    depth -= 1;
                    if depth == 0 && t.is_punct('}') {
                        return j;
                    }
                }
                Some(';') if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_bind_to_trailing_code_or_next_code_line() {
        let src = "\
// lint: ordering(Relaxed) stats counter, no sync role
x.fetch_add(1, Ordering::Relaxed);
let v = m.last().unwrap(); // lint: allow(panic) len checked above
";
        let ctx = FileCtx::new("x.rs".into(), src);
        assert_eq!(ctx.annots.len(), 2);
        assert_eq!(ctx.annots[0].kind, AnnotKind::Ordering("Relaxed".into()));
        assert_eq!(ctx.annots[0].target_line, 2, "binds down to the code line");
        assert_eq!(ctx.annots[1].kind, AnnotKind::Allow("panic".into()));
        assert_eq!(
            ctx.annots[1].target_line, 3,
            "trailing comment binds to its own line"
        );
        assert!(ctx.bad_annots.is_empty());
    }

    #[test]
    fn annotations_skip_interleaved_comment_lines() {
        let src = "\
// lint: allow(panic) first element exists: split produced it
// (routing invariant, see ShardRouter docs)
let v = fences.first().unwrap();
";
        let ctx = FileCtx::new("x.rs".into(), src);
        assert_eq!(ctx.annots[0].target_line, 3);
    }

    #[test]
    fn missing_reason_and_unknown_kinds_are_bad_annotations() {
        for bad in [
            "// lint: ordering(Relaxed)",
            "// lint: allow(panic)   ",
            "// lint: ordering(Sequential) x",
            "// lint: allow(unwrap) y",
            "// lint: suppress(panic) z",
            "// lint: allow(panic",
        ] {
            let src = format!("{bad}\nlet x = 1;\n");
            let ctx = FileCtx::new("x.rs".into(), &src);
            assert_eq!(ctx.annots.len(), 0, "{bad:?} must not parse");
            assert_eq!(ctx.bad_annots.len(), 1, "{bad:?} must be reported");
        }
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "\
fn live() { }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn also_live() { }
";
        let ctx = FileCtx::new("x.rs".into(), src);
        let unwrap_ti = ctx
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(ctx.is_masked(unwrap_ti));
        let live = ctx.toks.iter().position(|t| t.is_ident("live")).unwrap();
        let also = ctx
            .toks
            .iter()
            .position(|t| t.is_ident("also_live"))
            .unwrap();
        assert!(!ctx.is_masked(live));
        assert!(!ctx.is_masked(also));
        assert!(ctx.line_is_masked(5));
        assert!(!ctx.line_is_masked(7));
    }

    #[test]
    fn cfg_test_use_item_masks_to_semicolon_only() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { x.lock() }\n";
        let ctx = FileCtx::new("x.rs".into(), src);
        let lock = ctx.toks.iter().position(|t| t.is_ident("lock")).unwrap();
        assert!(!ctx.is_masked(lock));
        let use_ti = ctx.toks.iter().position(|t| t.is_ident("use")).unwrap();
        assert!(ctx.is_masked(use_ti));
    }

    #[test]
    fn safety_comments_found_on_or_above_line() {
        let src = "// SAFETY: len checked\nunsafe { }\n\n\n\nunsafe { }\n";
        let ctx = FileCtx::new("x.rs".into(), src);
        assert!(ctx.has_safety_comment(2, 3));
        assert!(
            !ctx.has_safety_comment(6, 3),
            "line 6 is too far from line 1"
        );
    }
}
