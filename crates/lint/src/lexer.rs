//! A hand-rolled, comment/string/char-literal-aware Rust lexer.
//!
//! The rules in this crate reason about *token* streams, never raw text, so
//! an `unwrap()` inside a doc-comment example, a `panic!` inside a string
//! literal, or an `Ordering::Relaxed` inside a nested block comment can
//! never produce a finding. The lexer is deliberately lossy where the rules
//! do not care (numeric literal grammar, punctuation joining) and exact
//! where they do:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments are
//!   captured as [`Comment`]s, not tokens — annotations live there;
//! - plain/byte/C strings honour escapes; raw strings (`r"…"`, `br#"…"#`,
//!   any hash depth) honour their hash-delimited terminator;
//! - `'a'` is a char literal, `'a` is a lifetime, `'\''` is a char literal;
//! - every token and comment carries a 1-based `line:col` position.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `let`, `Ordering`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`). Never confused with a char literal.
    Lifetime,
    /// A numeric literal, lexed permissively.
    Num,
    /// Any string literal: `"…"`, `b"…"`, `c"…"`, `r"…"`, `br#"…"#`, ….
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A single punctuation character (`.`, `:`, `!`, `#`, `{`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The literal source text of the token.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the delimiters (`// …` or `/* … */`).
    pub text: String,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based column of the opening delimiter.
    pub col: u32,
    /// 1-based line of the closing delimiter (== `line` for line comments).
    pub end_line: u32,
}

/// The output of [`lex`]: tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub toks: Vec<Tok>,
    /// All comments (doc comments included).
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated literals
/// and stray characters degrade to best-effort tokens so the linter can
/// still report on the rest of the file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            out.comments.push(line_comment(&mut cur, line, col));
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            out.comments.push(block_comment(&mut cur, line, col));
            continue;
        }
        if let Some(tok) = maybe_string_prefix(&mut cur, line, col) {
            out.toks.push(tok);
            continue;
        }
        if is_ident_start(c) {
            out.toks.push(ident(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            out.toks.push(number(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            out.toks.push(plain_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.toks.push(quote(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

fn line_comment(cur: &mut Cursor, line: u32, col: u32) -> Comment {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Comment {
        text,
        line,
        col,
        end_line: line,
    }
}

fn block_comment(cur: &mut Cursor, line: u32, col: u32) -> Comment {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
            continue;
        }
        if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            continue;
        }
        text.push(c);
        cur.bump();
    }
    Comment {
        text,
        line,
        col,
        end_line: cur.line,
    }
}

/// Recognise raw/byte/C string literals starting at an `r`/`b`/`c` prefix:
/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `cr##"…"##`, `b'x'`.
/// Returns `None` when the prefix is just the start of an identifier.
fn maybe_string_prefix(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c0 = cur.peek(0)?;
    if !matches!(c0, 'r' | 'b' | 'c') {
        return None;
    }
    // Byte-char literal b'x': lex the prefix away and let `quote` handle it.
    if c0 == 'b' && cur.peek(1) == Some('\'') {
        cur.bump();
        let mut tok = quote(cur, line, col);
        tok.text.insert(0, 'b');
        return Some(tok);
    }
    // Two-letter prefixes: br / cr.
    let (prefix_len, raw) = match (c0, cur.peek(1)) {
        ('b' | 'c', Some('r')) => {
            let mut k = 2;
            while cur.peek(k) == Some('#') {
                k += 1;
            }
            if cur.peek(k) == Some('"') {
                (2, true)
            } else {
                return None;
            }
        }
        ('r', _) => {
            let mut k = 1;
            while cur.peek(k) == Some('#') {
                k += 1;
            }
            if cur.peek(k) == Some('"') {
                (1, true)
            } else {
                return None;
            }
        }
        ('b' | 'c', Some('"')) => (1, false),
        _ => return None,
    };
    let mut text = String::new();
    for _ in 0..prefix_len {
        text.push(cur.bump().expect("prefix chars were peeked"));
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            hashes += 1;
            text.push(cur.bump().expect("hash was peeked"));
        }
        text.push(cur.bump().expect("quote was peeked")); // opening "
                                                          // Scan to `"` followed by `hashes` hash marks.
        while let Some(c) = cur.peek(0) {
            if c == '"' && (0..hashes).all(|k| cur.peek(1 + k) == Some('#')) {
                text.push(cur.bump().expect("closing quote was peeked"));
                for _ in 0..hashes {
                    text.push(cur.bump().expect("closing hash was peeked"));
                }
                return Some(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            text.push(c);
            cur.bump();
        }
        // Unterminated raw string: degrade to what we have.
        return Some(Tok {
            kind: TokKind::Str,
            text,
            line,
            col,
        });
    }
    // b"…" / c"…": escaped string body.
    let mut tok = plain_string(cur, line, col);
    tok.text.insert_str(0, &text);
    Some(tok)
}

fn ident(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Tok {
        kind: TokKind::Ident,
        text,
        line,
        col,
    }
}

fn number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
            continue;
        }
        // A dot continues the number only when followed by a digit
        // (`1.5`), so `1..n` and `1.max(2)` keep their punctuation.
        if c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) && !text.contains('.') {
            text.push(c);
            cur.bump();
            continue;
        }
        break;
    }
    Tok {
        kind: TokKind::Num,
        text,
        line,
        col,
    }
}

fn plain_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote was peeked"));
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    }
}

/// Disambiguate `'` between char literals and lifetimes.
fn quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push(cur.bump().expect("quote was peeked")); // '
    match cur.peek(0) {
        // Escaped char literal: '\n', '\'', '\u{1F600}'.
        Some('\\') => {
            text.push(cur.bump().expect("backslash was peeked"));
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' {
                    while let Some(c) = cur.peek(0) {
                        text.push(c);
                        cur.bump();
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek(0) == Some('\'') {
                text.push(cur.bump().expect("closing quote was peeked"));
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        // 'x' — any single char directly closed by a quote.
        Some(c) if cur.peek(1) == Some('\'') => {
            text.push(c);
            cur.bump();
            text.push(cur.bump().expect("closing quote was peeked"));
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        // 'ident — a lifetime.
        Some(c) if is_ident_start(c) => {
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            }
        }
        // Stray quote (invalid Rust); emit as punctuation and move on.
        _ => Tok {
            kind: TokKind::Punct,
            text,
            line,
            col,
        },
    }
}

impl Lexed {
    /// The set of identifier tokens rendered as `(text, line)` — a compact
    /// form several unit tests assert against.
    pub fn ident_spans(&self) -> Vec<(&str, u32)> {
        self.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect()
    }
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{:?}({})",
            self.line, self.col, self.kind, self.text
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        let l = lex("let x = a.unwrap();");
        assert_eq!(
            l.ident_spans(),
            vec![("let", 1), ("x", 1), ("a", 1), ("unwrap", 1)]
        );
        assert!(l.toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn line_and_nested_block_comments_are_not_tokens() {
        let src = "a // unwrap() in a comment\n/* outer /* nested panic!() */ still comment */ b";
        let l = lex(src);
        assert_eq!(l.ident_spans(), vec![("a", 1), ("b", 2)]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
        assert!(l.comments[1].text.contains("nested panic!()"));
        assert_eq!(l.comments[1].end_line, 2);
    }

    #[test]
    fn doc_comments_hide_code_examples() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}";
        let l = lex(src);
        assert_eq!(l.ident_spans(), vec![("fn", 4), ("f", 4)]);
    }

    #[test]
    fn strings_honour_escapes() {
        let src = r#"let s = "quote \" unwrap() \\"; t"#;
        let l = lex(src);
        assert_eq!(
            l.ident_spans(),
            vec![("let", 1), ("s", 1), ("t", 1)],
            "contents of the string must not token-ize"
        );
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        // A raw string whose body contains a quote-hash that is NOT the
        // terminator, plus code after it.
        let src = "let s = r##\"body \"# with panic!() \"##; after";
        let l = lex(src);
        assert_eq!(l.ident_spans(), vec![("let", 1), ("s", 1), ("after", 1)]);
        let s = &l.toks[3];
        assert_eq!(s.kind, TokKind::Str);
        assert!(s.text.contains("panic!()"));
        // Byte and C raw strings too.
        let l = lex("br#\"x\"# cr#\"y\"# b\"z\" c\"w\"");
        assert!(l.toks.iter().all(|t| t.kind == TokKind::Str));
        assert_eq!(l.toks.len(), 4);
    }

    #[test]
    fn raw_string_with_comment_lookalike_inside() {
        let l = lex("r\"// not a comment\" x");
        assert!(l.comments.is_empty());
        assert_eq!(l.ident_spans(), vec![("x", 1)]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\''", "'\\n'"]);
    }

    #[test]
    fn static_lifetime_and_unicode_escape() {
        let l = lex("&'static str; '\\u{1F600}'");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text.contains("u{1F600}")));
    }

    #[test]
    fn byte_char_literals() {
        let l = lex("b'x' b'\\0'");
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["b'x'", "b'\\0'"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let l = lex("1..n 1.5 0x1f_u32 1.max(2)");
        let nums: Vec<_> = kinds("1..n 1.5 0x1f_u32 1.max(2)")
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(nums, vec!["1", "1.5", "0x1f_u32", "1", "2"]);
        // `..` and `.max` survive as punctuation + ident.
        assert!(l.toks.iter().any(|t| t.is_ident("max")));
        assert_eq!(l.toks.iter().filter(|t| t.is_punct('.')).count(), 3);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let l = lex("a\n  bb\n");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn r_prefix_identifiers_are_not_strings() {
        // `r` / `b` / `c` starting ordinary identifiers must not trigger
        // the raw-string path.
        let l = lex("ret b_var crate r#match");
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            5
        );
        assert!(l.comments.is_empty());
    }

    #[test]
    fn unterminated_string_degrades_gracefully() {
        let l = lex("let s = \"never closed...");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Str));
        assert_eq!(l.ident_spans(), vec![("let", 1), ("s", 1)]);
    }
}
