//! `shift-lint` — the workspace's self-contained invariant linter.
//!
//! The store's correctness rests on properties the compiler cannot see:
//! which atomic orderings carry real happens-before edges, that serving
//! paths never panic, that no lock guard is held across an fsync without
//! intent, that background threads wait on condvars instead of polling.
//! This crate checks those properties statically, with zero dependencies:
//! a hand-rolled comment/string/char-literal-aware Rust lexer
//! ([`lexer`]), a per-file analysis context with `#[cfg(test)]` masking and
//! a justification-annotation grammar ([`context`]), and a rule engine
//! ([`rules`], [`engine`]) that emits rustc-style `file:line:col`
//! diagnostics and exits non-zero so CI can gate on it.
//!
//! ## The rules
//!
//! | rule | checks |
//! |------|--------|
//! | `atomics-ordering` | every `Ordering::*` use carries `// lint: ordering(<Ordering>) <sync role>`; unjustified `Relaxed` is called out as a hard error |
//! | `panic-path` | no `unwrap`/`expect`/`panic!`/`assert!` family in `crates/store/src` + `crates/core/src` non-test code (`debug_assert!` allowed); `// lint: allow(panic) <proof>` for provably-infallible sites |
//! | `unsafe-hygiene` | `unsafe` needs `// SAFETY:`; crate roots without unsafe need `#![forbid(unsafe_code)]` |
//! | `guard-across-sync` | no `.lock()`/`.write()` guard live at a `sync_all`/`sync_data` call without `// lint: allow(guard-across-sync) <why>` |
//! | `bare-sleep` | no `thread::sleep` outside tests without `// lint: allow(sleep) <why>` |
//! | `instant-in-hot-path` | no raw `Instant::now()` in `crates/store/src` + `crates/core/src` non-test code — clock reads on the serving path sit behind a `shift_obs::Sampler`; `// lint: allow(timing) <why>` marks deliberately-unsampled cold phases |
//! | `bad-annotation` | `lint:` comments must parse and carry a non-empty justification |
//! | `unused-annotation` | every annotation must be consumed by a real site — stale allows fail the build |
//!
//! Annotations double as in-place documentation: after the baseline sweep,
//! every atomic in the store states its synchronisation role next to the
//! code that relies on it.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p shift-lint --release -- check [--root DIR]
//! cargo run -p shift-lint --release -- rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/I-O error.

#![forbid(unsafe_code)]

pub mod context;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{check_source, check_workspace, PANIC_FREE_ROOTS, TIMING_ROOTS};
pub use rules::{Diagnostic, RULES};
