//! Positive/negative fixtures for every `shift-lint` rule, run through the
//! same [`shift_lint::check_source`] entry point the workspace check uses.

use shift_lint::check_source;

/// Rule names among the findings for `src` linted as a store-crate file.
fn store_findings(src: &str) -> Vec<&'static str> {
    check_source("crates/store/src/fixture.rs", src)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

/// Rule names for `src` linted as a non-serving-path crate file.
fn bench_findings(src: &str) -> Vec<&'static str> {
    check_source("crates/bench/src/fixture.rs", src)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

// ---------------------------------------------------------------- rule 1

#[test]
fn ordering_without_annotation_is_flagged() {
    let src = "fn f(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); }";
    assert_eq!(store_findings(src), vec!["atomics-ordering"]);
    // The rule is workspace-wide, not just serving-path crates.
    assert_eq!(bench_findings(src), vec!["atomics-ordering"]);
}

#[test]
fn ordering_with_matching_annotation_is_clean() {
    let src = "\
fn f(x: &AtomicU64) {
    // lint: ordering(Relaxed) pure stats counter, read only by stats()
    x.fetch_add(1, Ordering::Relaxed);
    x.load(Ordering::SeqCst); // lint: ordering(SeqCst) pairs with the seqlock store
}";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

#[test]
fn ordering_annotation_must_name_the_ordering_used() {
    let src = "\
fn f(x: &AtomicU64) {
    // lint: ordering(Acquire) claims acquire but the site is relaxed
    x.load(Ordering::Relaxed);
}";
    // Mismatch: the site is unjustified AND the annotation is stale.
    let mut got = store_findings(src);
    got.sort();
    assert_eq!(got, vec!["atomics-ordering", "unused-annotation"]);
}

#[test]
fn cmp_ordering_is_not_an_atomic_site() {
    let src = "fn f() -> Ordering { Ordering::Less.then(Ordering::Greater) }";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

#[test]
fn orderings_in_test_modules_are_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    fn f(x: &AtomicU64) { x.load(Ordering::SeqCst); }
}";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- rule 2

#[test]
fn unwrap_and_panic_macros_flagged_on_serving_path_only() {
    let src = "\
fn f(m: &Map) {
    let a = m.get(0).unwrap();
    let b = m.get(1).expect(\"present\");
    assert!(a < b);
    assert_eq!(a, b);
    panic!(\"boom\");
    unreachable!();
}";
    assert_eq!(
        store_findings(src),
        vec!["panic-path"; 6],
        "every panicking site on the serving path is a finding"
    );
    assert_eq!(
        bench_findings(src),
        Vec::<&str>::new(),
        "bench/test crates may panic freely"
    );
}

#[test]
fn debug_assert_and_annotated_unwrap_are_clean() {
    let src = "\
fn f(fences: &[u64]) {
    debug_assert!(fences.len() > 1);
    debug_assert_eq!(fences[0], u64::MIN);
    // lint: allow(panic) router construction guarantees >= 1 fence
    let first = fences.first().unwrap();
    let _ = first;
}";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

#[test]
fn unwrap_or_variants_are_not_panics() {
    let src = "fn f(x: Option<u64>) -> u64 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

#[test]
fn unwrap_in_cfg_test_module_is_exempt() {
    let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { foo().unwrap(); assert_eq!(1, 1); }
}";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

#[test]
fn unwrap_in_doc_example_is_exempt() {
    let src = "\
/// ```
/// store.insert(1).unwrap();
/// ```
fn live() {}";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- rule 3

#[test]
fn crate_root_without_forbid_unsafe_is_flagged() {
    let src = "pub mod x;";
    assert_eq!(
        check_source("crates/store/src/lib.rs", src)
            .into_iter()
            .map(|d| d.rule)
            .collect::<Vec<_>>(),
        vec!["unsafe-hygiene"]
    );
    // Non-root files don't need the attribute.
    assert_eq!(store_findings("pub fn f() {}"), Vec::<&str>::new());
}

#[test]
fn crate_root_with_forbid_unsafe_is_clean() {
    let src = "#![forbid(unsafe_code)]\npub mod x;";
    assert_eq!(
        check_source("crates/store/src/lib.rs", src).len(),
        0,
        "forbid(unsafe_code) satisfies the rule"
    );
}

#[test]
fn crate_root_with_feature_gated_forbid_is_clean() {
    // The default build still forbids unsafe; an opt-in feature may relax to
    // `deny` + audited `// SAFETY:` sites, which rule 3 keeps enforcing.
    let src = "\
#![cfg_attr(not(feature = \"prefetch\"), forbid(unsafe_code))]
#![cfg_attr(feature = \"prefetch\", deny(unsafe_code))]
pub mod x;";
    assert_eq!(
        check_source("crates/store/src/lib.rs", src).len(),
        0,
        "cfg_attr(not(feature), forbid(unsafe_code)) satisfies the rule"
    );
    // A cfg_attr that only *denies* does not count as a forbid.
    let deny_only = "#![cfg_attr(not(feature = \"x\"), deny(unsafe_code))]\npub mod x;";
    assert_eq!(
        check_source("crates/store/src/lib.rs", deny_only)
            .into_iter()
            .map(|d| d.rule)
            .collect::<Vec<_>>(),
        vec!["unsafe-hygiene"]
    );
}

#[test]
fn unsafe_needs_a_safety_comment() {
    let bare = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
    assert_eq!(bench_findings(bare), vec!["unsafe-hygiene"]);
    let documented = "\
fn f() {
    // SAFETY: guarded by the match above; this arm is provably dead.
    unsafe { std::hint::unreachable_unchecked() }
}";
    assert_eq!(bench_findings(documented), Vec::<&str>::new());
}

// ---------------------------------------------------------------- rule 4

#[test]
fn guard_live_across_fsync_is_flagged() {
    let src = "\
fn checkpoint(&self) -> io::Result<()> {
    let inner = self.inner.lock().expect(\"poisoned\");
    inner.file.sync_all()?;
    Ok(())
}";
    let got = bench_findings(src);
    assert_eq!(got, vec!["guard-across-sync"]);
}

#[test]
fn guard_dropped_before_fsync_is_clean() {
    let src = "\
fn checkpoint(&self) -> io::Result<()> {
    let inner = self.inner.lock().expect(\"poisoned\");
    let file = inner.file.try_clone()?;
    drop(inner);
    file.sync_all()?;
    Ok(())
}";
    assert_eq!(bench_findings(src), Vec::<&str>::new());
}

#[test]
fn guard_scope_ends_at_closing_brace() {
    let src = "\
fn f(&self) -> io::Result<()> {
    {
        let inner = self.inner.lock().expect(\"poisoned\");
        inner.push(1);
    }
    self.file.sync_all()
}";
    assert_eq!(bench_findings(src), Vec::<&str>::new());
}

#[test]
fn annotated_checkpoint_barrier_is_clean() {
    let src = "\
fn cut(&self) -> io::Result<()> {
    // lint: allow(guard-across-sync) WAL lock doubles as the checkpoint barrier
    let inner = self.inner.lock().expect(\"poisoned\");
    inner.file.sync_data()?;
    Ok(())
}";
    assert_eq!(bench_findings(src), Vec::<&str>::new());
}

// ---------------------------------------------------------------- rule 5

#[test]
fn bare_sleep_flagged_outside_tests() {
    let src = "fn wait() { std::thread::sleep(Duration::from_millis(5)); }";
    assert_eq!(bench_findings(src), vec!["bare-sleep"]);
    let annotated = "\
fn wait() {
    // lint: allow(sleep) deliberate backoff while the WAL settles
    std::thread::sleep(Duration::from_millis(5));
}";
    assert_eq!(bench_findings(annotated), Vec::<&str>::new());
    let in_tests = "\
#[cfg(test)]
mod tests {
    fn t() { std::thread::sleep(Duration::from_millis(5)); }
}";
    assert_eq!(bench_findings(in_tests), Vec::<&str>::new());
}

// ---------------------------------------------------------------- rule 8

#[test]
fn instant_now_flagged_in_hot_path_crates() {
    let src = "fn f() { let t0 = Instant::now(); work(); let _ = t0.elapsed(); }";
    assert_eq!(store_findings(src), vec!["instant-in-hot-path"]);
    let qualified = "fn f() { let t0 = std::time::Instant::now(); let _ = t0; }";
    assert_eq!(store_findings(qualified), vec!["instant-in-hot-path"]);
}

#[test]
fn instant_now_allowed_outside_hot_path_crates() {
    // Bench and tooling crates time freely — the rule is scoped.
    let src = "fn f() { let t0 = Instant::now(); work(); let _ = t0.elapsed(); }";
    assert_eq!(bench_findings(src), Vec::<&str>::new());
}

#[test]
fn instant_now_with_timing_annotation_is_clean() {
    let annotated = "\
fn replay(&mut self) {
    // lint: allow(timing) recovery is cold; timing every record is the point
    let t0 = Instant::now();
    let _ = t0;
}";
    assert_eq!(store_findings(annotated), Vec::<&str>::new());
    let in_tests = "\
#[cfg(test)]
mod tests {
    fn t() { let _ = Instant::now(); }
}";
    assert_eq!(store_findings(in_tests), Vec::<&str>::new());
}

#[test]
fn instant_elapsed_alone_is_not_a_site() {
    // Only the `Instant::now` path triggers; using a passed-in Instant is fine.
    let src = "fn f(t0: Instant) -> Duration { t0.elapsed() }";
    assert_eq!(store_findings(src), Vec::<&str>::new());
}

// ------------------------------------------------------- annotation rules

#[test]
fn malformed_annotations_are_findings() {
    let src = "\
fn f(x: &AtomicU64) {
    // lint: ordering(Relaxed)
    x.load(Ordering::Relaxed);
}";
    let mut got = bench_findings(src);
    got.sort();
    // Reason-less annotation is rejected AND the site stays unjustified.
    assert_eq!(got, vec!["atomics-ordering", "bad-annotation"]);
}

#[test]
fn stale_annotations_are_findings() {
    let src = "\
fn f() {
    // lint: allow(panic) nothing here panics any more
    let x = 1;
    let _ = x;
}";
    assert_eq!(store_findings(src), vec!["unused-annotation"]);
}

#[test]
fn diagnostics_render_rustc_style() {
    let d = &check_source(
        "crates/store/src/fixture.rs",
        "fn f(m: &Map) { m.get(0).unwrap(); }",
    )[0];
    let rendered = d.render();
    assert!(rendered.starts_with("error[panic-path]: "), "{rendered}");
    assert!(
        rendered.contains("--> crates/store/src/fixture.rs:1:26"),
        "{rendered}"
    );
}
