//! The shard router: range partitioning over fence keys.
//!
//! A sorted key column is split into contiguous chunks; the first key of each
//! chunk becomes that shard's *fence*. A query is routed to the last shard
//! whose fence is `<= q` (shard 0 when `q` is below every fence), so shard
//! `i` owns the key-value interval `[fence[i], fence[i+1])`. Chunk boundaries
//! are aligned to duplicate-run starts — a run of equal keys never spans two
//! shards, which keeps per-shard lower bounds exact and (for the updatable
//! store) keeps every occurrence of a key in one delta buffer.

use sosd_data::key::Key;

/// Routes keys to shards by fence comparison. The router is tiny (one key per
/// shard) and sits in front of the per-shard indexes.
#[derive(Debug, Clone)]
pub struct ShardRouter<K: Key> {
    /// First key of each shard; `fences[0]` is the global minimum. Empty for
    /// an empty (single-shard, zero-key) store.
    fences: Vec<K>,
}

impl<K: Key> ShardRouter<K> {
    /// Split `keys` into at most `shards` contiguous chunks with duplicate
    /// runs kept whole, returning the router and the chunk bounds
    /// (`bounds[i]..bounds[i + 1]` is shard `i`; at least one chunk, possibly
    /// empty, is always produced).
    pub fn partition(keys: &[K], shards: usize) -> (Self, Vec<usize>) {
        let n = keys.len();
        let shards = shards.max(1);
        let mut bounds = vec![0usize];
        for t in 1..shards {
            let mut b = n * t / shards;
            // Align to the start of a distinct-key run, as the parallel
            // layer builder does: keys[b - 1] != keys[b] after this loop.
            while b < n && b > 0 && keys[b] == keys[b - 1] {
                b += 1;
            }
            // lint: allow(panic) bounds starts with one element and only grows; last() cannot fail
            if b > *bounds.last().expect("bounds start non-empty") && b < n {
                bounds.push(b);
            }
        }
        bounds.push(n);
        let fences = bounds[..bounds.len() - 1]
            .iter()
            .filter(|&&b| b < n)
            .map(|&b| keys[b])
            .collect();
        (Self { fences }, bounds)
    }

    /// Rebuild a router from an explicit fence table — the constructor the
    /// rebalancer uses when it publishes a new topology. `fences` must be
    /// strictly increasing; `fences[0]` is nominal (it is never compared —
    /// only `fences[1..]` discriminate) but by convention holds the lowest
    /// fence of the previous table.
    pub(crate) fn from_fences(fences: Vec<K>) -> Self {
        debug_assert!(
            fences.windows(2).all(|w| w[0] < w[1]),
            "fence table must be strictly increasing"
        );
        Self { fences }
    }

    /// Number of shards the router addresses (at least 1).
    pub fn shard_count(&self) -> usize {
        self.fences.len().max(1)
    }

    /// The shard owning key value `q`: the last shard whose fence is `<= q`,
    /// or shard 0 when `q` precedes every fence.
    #[inline]
    pub fn shard_of(&self, q: K) -> usize {
        if self.fences.len() <= 1 {
            return 0;
        }
        // fences[0] is the global minimum; only fences[1..] discriminate.
        self.fences[1..].partition_point(|&f| f <= q)
    }

    /// The fence keys (first key of each shard).
    pub fn fences(&self) -> &[K] {
        &self.fences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_aligns_duplicate_runs() {
        // A run of 6 fives straddles the naive midpoint of 10 keys.
        let keys = vec![1u64, 2, 5, 5, 5, 5, 5, 5, 9, 10];
        let (router, bounds) = ShardRouter::partition(&keys, 2);
        assert_eq!(bounds, vec![0, 8, 10]);
        assert_eq!(router.fences(), &[1, 9]);
        for (q, shard) in [(0u64, 0), (1, 0), (5, 0), (8, 0), (9, 1), (100, 1)] {
            assert_eq!(router.shard_of(q), shard, "q={q}");
        }
    }

    #[test]
    fn partition_collapses_when_one_run_dominates() {
        let keys = vec![3u64; 100];
        let (router, bounds) = ShardRouter::partition(&keys, 4);
        assert_eq!(bounds, vec![0, 100]);
        assert_eq!(router.shard_count(), 1);
        assert_eq!(router.shard_of(0), 0);
        assert_eq!(router.shard_of(u64::MAX), 0);
    }

    #[test]
    fn empty_keys_route_to_a_single_shard() {
        let keys: Vec<u64> = vec![];
        let (router, bounds) = ShardRouter::partition(&keys, 5);
        assert_eq!(bounds, vec![0, 0]);
        assert_eq!(router.shard_count(), 1);
        assert_eq!(router.shard_of(42), 0);
    }

    #[test]
    fn routing_respects_chunk_ownership() {
        // Every key must route to the chunk that physically holds it.
        let keys: Vec<u64> = (0..1_000u64).map(|i| i * i / 7).collect();
        for shards in [1usize, 3, 13] {
            let (router, bounds) = ShardRouter::partition(&keys, shards);
            assert_eq!(router.shard_count() + 1, bounds.len());
            for (chunk, w) in bounds.windows(2).enumerate() {
                for &k in &keys[w[0]..w[1]] {
                    assert_eq!(router.shard_of(k), chunk, "key {k} shards={shards}");
                }
            }
        }
    }
}
