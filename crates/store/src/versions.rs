//! MVCC version retention and the change-data-capture diff engine.
//!
//! A [`crate::StoreSnapshot`] already pins one commit version forever; this
//! module keeps a **bounded ring of named historical cuts** so the store can
//! serve *any* retained version on demand
//! ([`crate::ShardedStore::snapshot_at`]) and compute ordered key-level
//! diffs between two retained versions
//! ([`crate::ShardedStore::scan_between`]) — the change-data-capture feed a
//! downstream replica tails.
//!
//! ## Retention
//!
//! The `VersionRing` holds pinned cuts — `Arc`s to the store table and
//! the per-shard states of one quiescent cut — ordered by commit version.
//! Holding a cut pins exactly the structures it references: sealed delta
//! runs and base snapshots survive compaction, rebuilds and rebalancing for
//! as long as a retained version needs them, because maintenance only ever
//! *republishes* new epochs, never mutates old ones. The cost is the heap
//! those epochs would otherwise free; [`VersionStats`] reports it with
//! shared structures counted once and the live state excluded.
//!
//! Eviction is by count at capture time (oldest first, like a ring buffer)
//! and by count/age in the maintenance pass. The policy
//! ([`crate::RetainPolicy`]) defaults to disabled, in which case nothing is
//! captured and the write path never takes the ring lock.
//!
//! ## Diffing
//!
//! `diff_cuts(a, b)` produces sorted `(key, count_at_b − count_at_a)` pairs
//! with zero nets dropped. It exploits structure where it exists: per-shard
//! state `Arc`s that are pointer-equal contribute nothing; states sharing a
//! base snapshot diff their delta-chain folds (cost ∝ buffered writes, not
//! shard size); everything else falls back to a two-pointer multiset walk
//! of the merged key columns. When the two cuts pinned different topologies
//! (a split or merge happened in between), the walk runs over the global
//! key streams — shard key ranges are disjoint and router-ordered, so each
//! cut's concatenated shards already form one sorted stream.

use crate::config::RetainPolicy;
use crate::shard::{ShardSnapshot, ShardState};
use crate::snapshot::PinnedCut;
use sosd_data::key::Key;
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One retained historical cut: the pinned structures plus its capture time
/// (for age-based eviction).
struct RetainedCut<K: Key> {
    cut: PinnedCut<K>,
    created: Instant,
}

/// Readout of the version ring's memory cost — see
/// [`crate::ShardedStore::version_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VersionStats {
    /// Retained historical versions.
    pub retained: usize,
    /// Oldest retained commit version, if any.
    pub oldest_cv: Option<u64>,
    /// Newest retained commit version, if any.
    pub newest_cv: Option<u64>,
    /// Approximate heap bytes pinned by retained cuts beyond the live
    /// state: delta runs plus base key columns and their indexes, with
    /// structures shared between cuts (or with the live state) counted
    /// once.
    pub approx_bytes: usize,
}

/// The bounded, commit-version-ordered ring of retained cuts.
pub(crate) struct VersionRing<K: Key> {
    policy: RetainPolicy,
    ring: Mutex<VecDeque<RetainedCut<K>>>,
}

impl<K: Key> VersionRing<K> {
    pub(crate) fn new(policy: RetainPolicy) -> Self {
        Self {
            policy,
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Is retention on at all? False short-circuits every capture site.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        !self.policy.is_disabled()
    }

    /// Retain `cut`, evicting the oldest versions past the count bound.
    /// Duplicate versions are ignored (capture sites are opportunistic and
    /// may race). Returns `(evicted cv, remaining count)` per eviction so
    /// the caller can trace and count them.
    pub(crate) fn capture(&self, cut: PinnedCut<K>) -> Vec<(u64, usize)> {
        if !self.enabled() {
            return Vec::new();
        }
        let created = Instant::now(); // lint: allow(timing) retention capture: policy-gated, once per retained version, not per op
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let cv = cut.version;
        if ring.iter().any(|r| r.cut.version == cv) {
            return Vec::new();
        }
        // Captures are near-monotonic; racing writers may deliver slightly
        // out of order, so insert at the sorted position (scan from the
        // back — the common case appends).
        let pos = ring
            .iter()
            .rposition(|r| r.cut.version < cv)
            .map(|p| p + 1)
            .unwrap_or(0);
        ring.insert(pos, RetainedCut { cut, created });
        let mut evicted = Vec::new();
        while ring.len() > self.policy.count {
            // lint: allow(panic) loop guard: len > count >= 0 implies non-empty
            let old = ring.pop_front().expect("ring non-empty");
            evicted.push((old.cut.version, ring.len()));
        }
        evicted
    }

    /// The retained cut at exactly `cv`, if any.
    pub(crate) fn get(&self, cv: u64) -> Option<PinnedCut<K>> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter()
            .find(|r| r.cut.version == cv)
            .map(|r| r.cut.clone())
    }

    /// Every retained commit version, oldest first.
    pub(crate) fn versions(&self) -> Vec<u64> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().map(|r| r.cut.version).collect()
    }

    /// Maintenance-pass eviction: drop cuts older than the policy's
    /// `max_age` (and re-enforce the count bound). Returns
    /// `(evicted cv, remaining count)` per eviction.
    pub(crate) fn evict_stale(&self) -> Vec<(u64, usize)> {
        if !self.enabled() {
            return Vec::new();
        }
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let mut evicted = Vec::new();
        while ring.len() > self.policy.count {
            // lint: allow(panic) loop guard: len > count >= 0 implies non-empty
            let old = ring.pop_front().expect("ring non-empty");
            evicted.push((old.cut.version, ring.len()));
        }
        if let Some(max_age) = self.policy.max_age {
            let now = Instant::now(); // lint: allow(timing) cold maintenance path — runs once per worker pass
            while let Some(front) = ring.front() {
                if now.duration_since(front.created) <= max_age {
                    break;
                }
                // lint: allow(panic) front() just proved the ring non-empty
                let old = ring.pop_front().expect("ring non-empty");
                evicted.push((old.cut.version, ring.len()));
            }
        }
        evicted
    }

    /// Memory/extent readout, with everything the live state (or an earlier
    /// retained cut) already pins counted once — see [`VersionStats`].
    pub(crate) fn stats(&self, live: &[Arc<ShardState<K>>]) -> VersionStats {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let mut seen_states: HashSet<*const ShardState<K>> = HashSet::new();
        let mut seen_snaps: HashSet<*const ShardSnapshot<K>> = HashSet::new();
        for s in live {
            seen_states.insert(Arc::as_ptr(s));
            seen_snaps.insert(Arc::as_ptr(s.snapshot()));
        }
        let mut approx_bytes = 0usize;
        for rc in ring.iter() {
            for s in rc.cut.states.iter() {
                if seen_states.insert(Arc::as_ptr(s)) {
                    approx_bytes += s.delta().size_bytes();
                    let snap = s.snapshot();
                    if seen_snaps.insert(Arc::as_ptr(snap)) {
                        approx_bytes +=
                            snap.base_len() * K::size_bytes() + snap.index().index_size_bytes();
                    }
                }
            }
        }
        VersionStats {
            retained: ring.len(),
            oldest_cv: ring.front().map(|r| r.cut.version),
            newest_cv: ring.back().map(|r| r.cut.version),
            approx_bytes,
        }
    }
}

/// Ordered key-level diff between two cuts of the *same store*: sorted
/// `(key, count_at_b − count_at_a)` pairs, zero nets dropped. See the
/// module docs for the structural shortcuts.
pub(crate) fn diff_cuts<K: Key>(a: &PinnedCut<K>, b: &PinnedCut<K>) -> Vec<(K, i64)> {
    if a.version == b.version {
        return Vec::new();
    }
    let mut out = Vec::new();
    if Arc::ptr_eq(&a.table, &b.table) {
        // Same topology: per-shard diffs concatenate into global key order
        // because shard key ranges are disjoint and router-ordered.
        for (sa, sb) in a.states.iter().zip(b.states.iter()) {
            if Arc::ptr_eq(sa, sb) {
                continue; // untouched shard: contributes nothing
            }
            if Arc::ptr_eq(sa.snapshot(), sb.snapshot()) {
                // Same base epoch: the diff is the difference of the two
                // delta-chain folds — cost ∝ buffered writes.
                diff_net_pairs_into(&sa.delta().net_pairs(), &sb.delta().net_pairs(), &mut out);
            } else {
                // The base was rebuilt in between: walk both merged views.
                diff_sorted_iters_into(
                    sa.merged_keys().into_iter(),
                    sb.merged_keys().into_iter(),
                    &mut out,
                );
            }
        }
    } else {
        // Topology changed (split/merge): diff the global key streams.
        let stream = |cut: &PinnedCut<K>| {
            cut.states
                .iter()
                .flat_map(|s| s.merged_keys())
                .collect::<Vec<K>>()
        };
        diff_sorted_iters_into(stream(a).into_iter(), stream(b).into_iter(), &mut out);
    }
    debug_assert!(
        out.windows(2).all(|w| w[0].0 < w[1].0),
        "diff must be sorted"
    );
    out
}

/// Merge two sorted `(key, net)` folds relative to the *same* base into
/// `out` as `b − a` per key, dropping zeros.
fn diff_net_pairs_into<K: Key>(a: &[(K, i64)], b: &[(K, i64)], out: &mut Vec<(K, i64)>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ka, na)), Some(&(kb, nb))) => {
                if ka < kb {
                    out.push((ka, -na));
                    i += 1;
                } else if kb < ka {
                    out.push((kb, nb));
                    j += 1;
                } else {
                    if nb != na {
                        out.push((ka, nb - na));
                    }
                    i += 1;
                    j += 1;
                }
            }
            (Some(&(ka, na)), None) => {
                out.push((ka, -na));
                i += 1;
            }
            (None, Some(&(kb, nb))) => {
                out.push((kb, nb));
                j += 1;
            }
            (None, None) => break,
        }
    }
}

/// Two-pointer multiset diff of two sorted key streams into `out` as
/// `count_in_b − count_in_a` per key, dropping zeros.
fn diff_sorted_iters_into<K: Key>(
    a: impl Iterator<Item = K>,
    b: impl Iterator<Item = K>,
    out: &mut Vec<(K, i64)>,
) {
    let mut a = a.peekable();
    let mut b = b.peekable();
    fn drain_run<K: Key, I: Iterator<Item = K>>(it: &mut std::iter::Peekable<I>, k: K) -> i64 {
        let mut n = 0i64;
        while it.peek() == Some(&k) {
            it.next();
            n += 1;
        }
        n
    }
    loop {
        match (a.peek().copied(), b.peek().copied()) {
            (None, None) => break,
            (Some(ka), None) => out.push((ka, -drain_run(&mut a, ka))),
            (None, Some(kb)) => out.push((kb, drain_run(&mut b, kb))),
            (Some(ka), Some(kb)) => {
                if ka < kb {
                    out.push((ka, -drain_run(&mut a, ka)));
                } else if kb < ka {
                    out.push((kb, drain_run(&mut b, kb)));
                } else {
                    let net = drain_run(&mut b, kb) - drain_run(&mut a, ka);
                    if net != 0 {
                        out.push((ka, net));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_pair_folds_subtract_per_key() {
        let a = vec![(2u64, 1i64), (5, -1), (9, 2)];
        let b = vec![(2u64, 1i64), (7, 3), (9, 1)];
        let mut out = Vec::new();
        diff_net_pairs_into(&a, &b, &mut out);
        // 2 cancels, 5's −1 reverts to +1, 7 appears, 9 shrinks by 1.
        assert_eq!(out, vec![(5, 1), (7, 3), (9, -1)]);
        out.clear();
        diff_net_pairs_into(&[], &b, &mut out);
        assert_eq!(out, b, "empty a passes b through");
        out.clear();
        diff_net_pairs_into(&a, &[], &mut out);
        assert_eq!(out, vec![(2, -1), (5, 1), (9, -2)], "empty b negates a");
    }

    #[test]
    fn multiset_streams_diff_by_occurrence_count() {
        let a = vec![1u64, 4, 4, 4, 9, 12];
        let b = vec![1u64, 4, 4, 7, 12, 12];
        let mut out = Vec::new();
        diff_sorted_iters_into(a.into_iter(), b.into_iter(), &mut out);
        assert_eq!(out, vec![(4, -1), (7, 1), (9, -1), (12, 1)]);
        let mut out = Vec::new();
        diff_sorted_iters_into(std::iter::empty::<u64>(), [3, 3].into_iter(), &mut out);
        assert_eq!(out, vec![(3, 2)]);
        let mut out = Vec::new();
        diff_sorted_iters_into([3u64, 3].into_iter(), std::iter::empty(), &mut out);
        assert_eq!(out, vec![(3, -2)]);
    }
}
