//! Immutable delta runs and the delta chain: the lock-free write ledger.
//!
//! PR 2 buffered writes in a mutex-guarded `BTreeMap`; every read locked the
//! map to merge it with the base. This module replaces that buffer with a
//! **chain of immutable, sorted delta runs**: each [`DeltaRun`] is a frozen,
//! sorted array of *(key, cumulative net occurrence delta)* pairs, and a
//! [`DeltaChain`] is a short newest-first list of `Arc`-shared runs. The
//! merged view of a shard is then
//!
//! ```text
//! count(k)        = base_count(k) + Σ_runs net_of(k)
//! lower_bound(q)  = base_lower_bound(q) + Σ_runs net_below(q)
//! ```
//!
//! where each per-run term is a binary search over an immutable array — no
//! lock is required to evaluate either sum. Writers never mutate a published
//! run: recording an operation produces a **new chain** that either replaces
//! the small head run with an amended copy (bounded by the configured
//! maximum run length) or prepends a fresh singleton run; every other run is
//! shared by `Arc` with the previous chain. The chain is published to readers
//! as part of the shard's immutable state (see `shard.rs`).
//!
//! Three structural operations support the maintenance machinery:
//!
//! * [`DeltaChain::sealed`] marks every run *sealed* (writers then start a
//!   fresh head instead of amending) — the freeze step of a rebuild or a
//!   shard split. Sealing moves an index, not data: runs are shared.
//! * [`DeltaChain::strip_sealed`] removes a previously sealed suffix after
//!   its contents were folded into a new base — what remains is exactly the
//!   writes recorded since the seal.
//! * [`DeltaChain::compact`] folds the unsealed runs into a single run so
//!   chains stay short (reads pay one binary search per run).
//!
//! The delete-path invariant from PR 2 is unchanged and still maintained by
//! the shard's write path: a tombstone is only recorded when the merged
//! count of its key is positive, so prefix sums of net deltas never drive a
//! merged position negative.

use sosd_data::key::Key;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One immutable, sorted run of net occurrence deltas.
///
/// Entries are `(key, cumulative net delta up to and including that key)`
/// pairs sorted by key, so both [`DeltaRun::net_below`] (a prefix sum) and
/// [`DeltaRun::net_of`] (a difference of adjacent prefix sums) are one
/// binary search. Keys whose net delta cancelled to zero are dropped from
/// the entry array; the churn they represented is still counted by
/// [`DeltaRun::ops`], which feeds the rebuild threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRun<K: Key> {
    /// Sorted `(key, cumulative net)` pairs; no trailing-zero-net keys.
    entries: Vec<(K, i64)>,
    /// Write operations folded into this run (cancelled pairs included).
    ops: usize,
}

impl<K: Key> DeltaRun<K> {
    /// A run holding a single operation: `net` is `+1` for an insert, `-1`
    /// for a tombstone.
    pub fn singleton(k: K, net: i64) -> Self {
        Self {
            entries: vec![(k, net)],
            ops: 1,
        }
    }

    /// Build a run from sorted per-key net deltas, dropping zero nets.
    /// `ops` is the operation count the run accounts for.
    fn from_net_pairs(pairs: impl IntoIterator<Item = (K, i64)>, ops: usize) -> Self {
        let mut entries: Vec<(K, i64)> = Vec::new();
        let mut acc = 0i64;
        for (k, net) in pairs {
            debug_assert!(
                entries.last().map(|&(p, _)| p < k).unwrap_or(true),
                "net pairs must be strictly sorted"
            );
            if net == 0 {
                continue;
            }
            acc += net;
            entries.push((k, acc));
        }
        Self { entries, ops }
    }

    /// A copy of this run with one more operation on `k` folded in. One
    /// `O(len)` pass and one allocation — this is the hot write path, which
    /// bounds `len` by the configured maximum run length.
    pub fn amended(&self, k: K, net: i64) -> Self {
        let mut entries: Vec<(K, i64)> = Vec::with_capacity(self.entries.len() + 1);
        let mut prev = 0i64; // previous *input* cumulative net
        let mut shift = 0i64; // correction applied to cumulatives ≥ k
        let mut inserted = false;
        for &(key, cum) in &self.entries {
            if !inserted && k <= key {
                inserted = true;
                shift = net;
                if k == key {
                    // Fold into this key; drop it if the net cancels.
                    if cum - prev + net != 0 {
                        entries.push((key, cum + shift));
                    }
                    prev = cum;
                    continue;
                }
                entries.push((k, prev + net));
            }
            entries.push((key, cum + shift));
            prev = cum;
        }
        if !inserted {
            entries.push((k, prev + net));
        }
        Self {
            entries,
            ops: self.ops + 1,
        }
    }

    /// The per-key net deltas of this run, sorted by key.
    fn net_pairs(&self) -> Vec<(K, i64)> {
        let mut prev = 0i64;
        self.entries
            .iter()
            .map(|&(k, cum)| {
                let net = cum - prev;
                prev = cum;
                (k, net)
            })
            .collect()
    }

    /// The per-key net deltas of the keys in `lo ..= hi` only: two binary
    /// searches plus one pass over the in-range entries (the cumulative
    /// just before the range start recovers each net exactly).
    fn net_pairs_in(&self, lo: K, hi: K) -> Vec<(K, i64)> {
        let start = self.entries.partition_point(|&(k, _)| k < lo);
        // An inverted range (`hi < lo`) clamps to an empty sub-slice.
        let end = self.entries.partition_point(|&(k, _)| k <= hi).max(start);
        let mut prev = if start == 0 {
            0
        } else {
            self.entries[start - 1].1
        };
        self.entries[start..end]
            .iter()
            .map(|&(k, cum)| {
                let net = cum - prev;
                prev = cum;
                (k, net)
            })
            .collect()
    }

    /// Sum of net deltas of all keys `< q`: one binary search.
    #[inline]
    pub fn net_below(&self, q: K) -> i64 {
        let idx = self.entries.partition_point(|&(k, _)| k < q);
        if idx == 0 {
            0
        } else {
            self.entries[idx - 1].1
        }
    }

    /// Net occurrence delta of exactly `k` (0 when absent).
    #[inline]
    pub fn net_of(&self, k: K) -> i64 {
        match self.entries.binary_search_by(|&(key, _)| key.cmp(&k)) {
            Err(_) => 0,
            Ok(i) => self.entries[i].1 - if i == 0 { 0 } else { self.entries[i - 1].1 },
        }
    }

    /// Net change to the merged key count contributed by this run.
    #[inline]
    pub fn len_delta(&self) -> i64 {
        self.entries.last().map(|&(_, cum)| cum).unwrap_or(0)
    }

    /// Number of distinct keys with a non-zero net delta.
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Write operations folded into this run.
    #[inline]
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * (K::size_bytes() + std::mem::size_of::<i64>())
    }
}

/// A newest-first chain of immutable delta runs, plus cached totals.
///
/// The chain itself is an immutable value: every mutation-shaped method
/// returns a new chain sharing unaffected runs by `Arc`. `runs[..unsealed]`
/// is the live prefix writers may still amend; `runs[unsealed..]` is the
/// sealed suffix a rebuild has frozen (see [`DeltaChain::sealed`]).
#[derive(Debug, Clone, Default)]
pub struct DeltaChain<K: Key> {
    /// Newest first: `runs[0]` is the head the next write amends or shadows.
    runs: Vec<Arc<DeltaRun<K>>>,
    /// Runs `[..unsealed]` are amendable; `[unsealed..]` are sealed.
    unsealed: usize,
    /// Cached `Σ runs.ops`.
    ops: usize,
    /// Cached `Σ runs.len_delta()`.
    len_delta: i64,
    /// Cached `Σ runs.entry_count()`.
    entries: usize,
}

impl<K: Key> DeltaChain<K> {
    /// The empty chain.
    pub fn new() -> Self {
        Self {
            runs: Vec::new(),
            unsealed: 0,
            ops: 0,
            len_delta: 0,
            entries: 0,
        }
    }

    /// Rebuild a chain value from its runs and seal boundary, recomputing
    /// the cached totals.
    fn from_runs(runs: Vec<Arc<DeltaRun<K>>>, unsealed: usize) -> Self {
        debug_assert!(unsealed <= runs.len());
        let ops = runs.iter().map(|r| r.ops()).sum();
        let len_delta = runs.iter().map(|r| r.len_delta()).sum();
        let entries = runs.iter().map(|r| r.entry_count()).sum();
        Self {
            runs,
            unsealed,
            ops,
            len_delta,
            entries,
        }
    }

    /// Record one operation (`net` is `+1` insert / `-1` tombstone),
    /// returning the successor chain. The head run is amended in place-by-
    /// copy while it stays below `max_run_len` and unsealed; otherwise a
    /// fresh singleton run is prepended.
    pub fn with_op(&self, k: K, net: i64, max_run_len: usize) -> Self {
        let mut runs = self.runs.clone();
        let mut unsealed = self.unsealed;
        let amend = unsealed > 0
            && runs
                .first()
                .map(|r| r.entry_count() < max_run_len.max(1))
                .unwrap_or(false);
        if amend {
            runs[0] = Arc::new(runs[0].amended(k, net));
        } else {
            runs.insert(0, Arc::new(DeltaRun::singleton(k, net)));
            unsealed += 1;
        }
        Self::from_runs(runs, unsealed)
    }

    /// Sum of net deltas of all keys `< q`: one binary search per run.
    #[inline]
    pub fn net_below(&self, q: K) -> i64 {
        self.runs.iter().map(|r| r.net_below(q)).sum()
    }

    /// Net occurrence delta of exactly `k` across the whole chain.
    #[inline]
    pub fn net_of(&self, k: K) -> i64 {
        self.runs.iter().map(|r| r.net_of(k)).sum()
    }

    /// Batched [`DeltaChain::net_below`]: accumulate the prefix sum of every
    /// query into `acc` (callers zero it first). The loop nest is
    /// **run-outer** so one run's entry array stays cache-resident across
    /// the whole query block — the chain-side half of the store's pipelined
    /// batch read path (see `shard.rs`).
    pub fn net_below_batch(&self, queries: &[K], acc: &mut [i64]) {
        debug_assert_eq!(queries.len(), acc.len());
        for run in &self.runs {
            for (a, &q) in acc.iter_mut().zip(queries.iter()) {
                *a += run.net_below(q);
            }
        }
    }

    /// Net change to the merged key count (cached).
    #[inline]
    pub fn len_delta(&self) -> i64 {
        self.len_delta
    }

    /// Write operations recorded in the chain (cancelled churn included).
    #[inline]
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Total non-zero-net entries across all runs. Zero means reads can
    /// skip the merge machinery entirely (the empty-delta fast path).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// True when no run carries any net delta *and* no churn is recorded.
    pub fn is_clean(&self) -> bool {
        self.ops == 0 && self.entries == 0
    }

    /// Number of runs in the chain.
    #[inline]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of unsealed (amendable) runs at the head of the chain.
    #[inline]
    pub fn unsealed_run_count(&self) -> usize {
        self.unsealed
    }

    /// The chain with every run sealed: writers will start a fresh head run,
    /// leaving the sealed suffix byte-identical (and `Arc`-shared) until
    /// [`DeltaChain::strip_sealed`] removes it. Moves an index, not data.
    pub fn sealed(&self) -> Self {
        let mut chain = self.clone();
        chain.unsealed = 0;
        chain
    }

    /// The chain with every run unsealed again — the rollback of a seal
    /// whose consumer abandoned its rebuild/split (e.g. the shard turned
    /// out to be dominated by one duplicate run). Only safe while the
    /// caller holds the shard's rebuild guard: no one else may be counting
    /// on the sealed suffix. Moves an index, not data.
    pub fn unsealed_all(&self) -> Self {
        let mut chain = self.clone();
        chain.unsealed = chain.runs.len();
        chain
    }

    /// Remove the sealed suffix previously captured by `frozen` (a chain
    /// returned by [`DeltaChain::sealed`]): what remains is exactly the runs
    /// recorded since the seal. The suffix is matched structurally — the
    /// frozen runs must still sit, `Arc`-identical, at the tail of `self`.
    pub fn strip_sealed(&self, frozen: &Self) -> Self {
        let f = frozen.runs.len();
        // lint: allow(panic) structural invariant: a shorter chain means the seal was violated; stripping anyway would drop live runs
        assert!(
            self.runs.len() >= f,
            "strip_sealed: chain shorter than its frozen suffix"
        );
        let keep = self.runs.len() - f;
        if f > 0 {
            // lint: allow(panic) structural invariant: a moved suffix means concurrent mutation of sealed runs; continuing would double-apply them
            assert!(
                Arc::ptr_eq(&self.runs[keep], &frozen.runs[0]),
                "strip_sealed: sealed suffix was modified concurrently"
            );
        }
        debug_assert!(self.unsealed <= keep, "writers amended a sealed run");
        Self::from_runs(self.runs[..keep].to_vec(), self.unsealed)
    }

    /// Fold the unsealed runs into one run, leaving the sealed suffix
    /// untouched. Returns `self` unchanged when fewer than two unsealed runs
    /// exist. Keeps read cost at one binary search per run.
    pub fn compact(&self) -> Self {
        if self.unsealed < 2 {
            return self.clone();
        }
        let live = &self.runs[..self.unsealed];
        let ops = live.iter().map(|r| r.ops()).sum();
        let folded = fold_runs(live);
        let mut runs: Vec<Arc<DeltaRun<K>>> =
            Vec::with_capacity(1 + self.runs.len() - self.unsealed);
        let folded = DeltaRun::from_net_pairs(folded, ops);
        let unsealed = if folded.entry_count() == 0 && folded.ops() == 0 {
            0
        } else {
            runs.push(Arc::new(folded));
            1
        };
        runs.extend(self.runs[self.unsealed..].iter().cloned());
        Self::from_runs(runs, unsealed)
    }

    /// Merge the chain's net deltas into a sorted base column, producing the
    /// new sorted key column: inserted occurrences are spliced in at their
    /// sorted positions, tombstoned occurrences are dropped from their
    /// duplicate run.
    pub fn merge_into(&self, base: &[K]) -> Vec<K> {
        merge_pairs(base, &fold_runs(&self.runs))
    }

    /// The chain folded to sorted `(key, net occurrence delta)` pairs with
    /// zero nets dropped — the structural form the version-diff engine
    /// (`scan_between`) subtracts chains with.
    pub(crate) fn net_pairs(&self) -> Vec<(K, i64)> {
        fold_runs(&self.runs)
    }

    /// Merge only the chain entries with keys in `lo ..= hi` into `base`,
    /// which must be the base column restricted to exactly that key range
    /// (full duplicate runs included) — the bounded form
    /// [`crate::ShardState::merged_range_keys`] (snapshot scans) uses. The
    /// fold itself is range-bounded (each run is sub-sliced by binary
    /// search before folding), so a short scan pays for the chain entries
    /// *inside* the range, never the whole chain.
    pub fn merge_range(&self, base: &[K], lo: K, hi: K) -> Vec<K> {
        let mut net: BTreeMap<K, i64> = BTreeMap::new();
        for run in &self.runs {
            for (k, n) in run.net_pairs_in(lo, hi) {
                let e = net.entry(k).or_insert(0);
                *e += n;
                if *e == 0 {
                    net.remove(&k);
                }
            }
        }
        let net: Vec<(K, i64)> = net.into_iter().collect();
        merge_pairs(base, &net)
    }

    /// Split the chain at `split_key`: per-key nets strictly below the key
    /// go left, the rest right. Run structure is preserved per side; each
    /// side's operation count is re-derived as `Σ |net|` of its entries (the
    /// churn of cancelled pairs cannot be attributed to a side and is
    /// dropped — it only ever under-counts dirtiness).
    pub fn partition(&self, split_key: K) -> (Self, Self) {
        let mut left: Vec<Arc<DeltaRun<K>>> = Vec::new();
        let mut right: Vec<Arc<DeltaRun<K>>> = Vec::new();
        for run in &self.runs {
            let pairs = run.net_pairs();
            let cut = pairs.partition_point(|&(k, _)| k < split_key);
            let (l, r) = pairs.split_at(cut);
            let side = |s: &[(K, i64)]| {
                let ops = s.iter().map(|&(_, n)| n.unsigned_abs() as usize).sum();
                DeltaRun::from_net_pairs(s.to_vec(), ops)
            };
            let l = side(l);
            let r = side(r);
            if l.entry_count() > 0 {
                left.push(Arc::new(l));
            }
            if r.entry_count() > 0 {
                right.push(Arc::new(r));
            }
        }
        let lu = left.len();
        let ru = right.len();
        (Self::from_runs(left, lu), Self::from_runs(right, ru))
    }

    /// Concatenate two chains (used when two adjacent shards merge): the
    /// runs of both sides coexist, every read sums across all of them.
    pub fn concat(&self, other: &Self) -> Self {
        let mut runs = self.runs.clone();
        runs.extend(other.runs.iter().cloned());
        let unsealed = runs.len();
        Self::from_runs(runs, unsealed)
    }

    /// Approximate heap footprint of the chain in bytes.
    pub fn size_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.size_bytes() + 16).sum()
    }
}

/// Splice sorted `(key, net)` pairs into a sorted base column: inserted
/// occurrences land at their sorted positions, tombstoned occurrences drop
/// out of their duplicate run.
fn merge_pairs<K: Key>(base: &[K], net: &[(K, i64)]) -> Vec<K> {
    let expected = base.len() as i64 + net.iter().map(|&(_, c)| c).sum::<i64>();
    let mut out = Vec::with_capacity(expected.max(0) as usize);
    let mut deltas = net.iter().peekable();
    let mut i = 0usize;
    while i < base.len() {
        match deltas.peek() {
            Some(&&(k, c)) if k <= base[i] => {
                if k < base[i] {
                    // A key absent from the base: only inserts can be
                    // buffered for it (tombstones require presence).
                    debug_assert!(c > 0, "tombstone for an absent key");
                    out.extend(std::iter::repeat_n(k, c.max(0) as usize));
                } else {
                    // k == base[i]: rewrite the whole duplicate run.
                    let mut run = 0i64;
                    while i < base.len() && base[i] == k {
                        run += 1;
                        i += 1;
                    }
                    let total = run + c;
                    debug_assert!(total >= 0, "tombstones exceed the run");
                    out.extend(std::iter::repeat_n(k, total.max(0) as usize));
                }
                deltas.next();
            }
            _ => {
                out.push(base[i]);
                i += 1;
            }
        }
    }
    for &(k, c) in deltas {
        out.extend(std::iter::repeat_n(k, c.max(0) as usize));
    }
    debug_assert!(out.is_sorted());
    out
}

/// Fold a set of runs into sorted `(key, net)` pairs with zero nets dropped.
fn fold_runs<K: Key>(runs: &[Arc<DeltaRun<K>>]) -> Vec<(K, i64)> {
    let mut net: BTreeMap<K, i64> = BTreeMap::new();
    for run in runs {
        for (k, n) in run.net_pairs() {
            let e = net.entry(k).or_insert(0);
            *e += n;
            if *e == 0 {
                net.remove(&k);
            }
        }
    }
    net.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_of(ops: &[(u64, i64)], max_run_len: usize) -> DeltaChain<u64> {
        let mut c = DeltaChain::new();
        for &(k, net) in ops {
            c = c.with_op(k, net, max_run_len);
        }
        c
    }

    #[test]
    fn run_prefix_sums_and_point_nets() {
        let run = DeltaRun::singleton(5u64, 1)
            .amended(2, 2)
            .amended(7, -1)
            .amended(9, 1);
        assert_eq!(run.ops(), 4);
        assert_eq!(run.net_below(0), 0);
        assert_eq!(run.net_below(2), 0);
        assert_eq!(run.net_below(3), 2);
        assert_eq!(run.net_below(8), 2);
        assert_eq!(run.net_below(u64::MAX), 3);
        assert_eq!(run.net_of(2), 2);
        assert_eq!(run.net_of(7), -1);
        assert_eq!(run.net_of(4), 0);
        assert_eq!(run.len_delta(), 3);
    }

    #[test]
    fn amend_cancellation_drops_the_entry_but_keeps_ops() {
        let run = DeltaRun::singleton(5u64, 1).amended(5, -1);
        assert_eq!(run.entry_count(), 0, "net cancelled to zero");
        assert_eq!(run.ops(), 2, "churn still counts towards dirtiness");
        assert_eq!(run.len_delta(), 0);
    }

    #[test]
    fn chain_bookkeeping_matches_a_reference_map() {
        let ops: Vec<(u64, i64)> = vec![
            (2, 1),
            (2, 1),
            (7, -1),
            (9, 1),
            (2, -1),
            (100, 1),
            (50, 1),
            (50, -1),
        ];
        for max_run_len in [1usize, 2, 4, 64] {
            let c = chain_of(&ops, max_run_len);
            assert_eq!(c.ops(), ops.len());
            assert_eq!(c.len_delta(), ops.iter().map(|&(_, n)| n).sum::<i64>());
            let mut reference: BTreeMap<u64, i64> = BTreeMap::new();
            for &(k, n) in &ops {
                *reference.entry(k).or_insert(0) += n;
            }
            for q in [0u64, 1, 2, 3, 7, 8, 9, 10, 50, 51, 100, u64::MAX] {
                let expect: i64 = reference
                    .iter()
                    .filter(|&(&k, _)| k < q)
                    .map(|(_, &n)| n)
                    .sum();
                assert_eq!(c.net_below(q), expect, "q={q} max_run_len={max_run_len}");
                assert_eq!(
                    c.net_of(q),
                    reference.get(&q).copied().unwrap_or(0),
                    "net_of {q}"
                );
            }
        }
    }

    #[test]
    fn net_below_batch_matches_scalar_and_accumulates() {
        let ops: Vec<(u64, i64)> = vec![(2, 1), (2, 1), (7, -1), (9, 1), (50, 1), (50, -1)];
        for max_run_len in [1usize, 2, 64] {
            let c = chain_of(&ops, max_run_len);
            let queries = [0u64, 2, 3, 7, 8, 9, 10, 50, 51, u64::MAX];
            let mut acc = [0i64; 10];
            c.net_below_batch(&queries, &mut acc);
            for (&q, &a) in queries.iter().zip(acc.iter()) {
                assert_eq!(a, c.net_below(q), "q={q} max_run_len={max_run_len}");
            }
            // The batch accumulates into (not overwrites) the scratch, so a
            // pre-seeded accumulator keeps its floor.
            let mut seeded = [100i64; 10];
            c.net_below_batch(&queries, &mut seeded);
            for (&q, &a) in queries.iter().zip(seeded.iter()) {
                assert_eq!(a, 100 + c.net_below(q), "seeded q={q}");
            }
        }
        // The empty chain is a no-op.
        let mut acc = [7i64; 3];
        DeltaChain::<u64>::new().net_below_batch(&[1, 2, 3], &mut acc);
        assert_eq!(acc, [7, 7, 7]);
    }

    #[test]
    fn run_length_bound_controls_chain_growth() {
        let ops: Vec<(u64, i64)> = (0..64u64).map(|i| (i * 3, 1)).collect();
        let tight = chain_of(&ops, 4);
        assert_eq!(tight.run_count(), 16, "64 ops in runs of 4");
        let loose = chain_of(&ops, 64);
        assert_eq!(loose.run_count(), 1);
        assert_eq!(tight.net_below(u64::MAX), loose.net_below(u64::MAX));
    }

    #[test]
    fn compact_folds_unsealed_runs_only() {
        let c = chain_of(&[(1, 1), (2, 1), (3, 1), (4, 1)], 1);
        assert_eq!(c.run_count(), 4);
        let sealed = c.sealed();
        // Writes after the seal start fresh runs.
        let c2 = sealed.with_op(10, 1, 1).with_op(11, 1, 1).with_op(12, 1, 1);
        assert_eq!(c2.run_count(), 7);
        assert_eq!(c2.unsealed_run_count(), 3);
        let compacted = c2.compact();
        assert_eq!(compacted.run_count(), 5, "3 unsealed folded into 1");
        assert_eq!(compacted.unsealed_run_count(), 1);
        assert_eq!(compacted.ops(), c2.ops());
        assert_eq!(compacted.len_delta(), c2.len_delta());
        for q in [0u64, 2, 5, 11, 100] {
            assert_eq!(compacted.net_below(q), c2.net_below(q), "q={q}");
        }
        // Fully-cancelling unsealed runs fold to an entry-less run that
        // still carries the churn (ops feed the rebuild threshold).
        let cancel = DeltaChain::new()
            .sealed()
            .with_op(5, 1, 1)
            .with_op(5, -1, 1);
        let compacted = cancel.compact();
        assert_eq!(compacted.run_count(), 1);
        assert_eq!(compacted.entry_count(), 0);
        assert_eq!(compacted.ops(), 2);
        assert_eq!(compacted.net_below(u64::MAX), 0);
    }

    #[test]
    fn seal_then_strip_leaves_the_residual() {
        let c = chain_of(&[(1, 1), (2, 1)], 64);
        let frozen = c.sealed();
        // Writes arriving "during the rebuild".
        let live = frozen.with_op(2, 1, 64).with_op(1, -1, 64);
        assert_eq!(live.run_count(), 2, "post-seal ops opened a fresh head");
        let residual = live.strip_sealed(&frozen);
        assert_eq!(residual.net_of(1), -1, "the in-flight delete survives");
        assert_eq!(residual.net_of(2), 1, "the in-flight insert survives");
        assert_eq!(residual.ops(), 2);
        // Stripping an empty freeze is the identity.
        let empty = DeltaChain::<u64>::new();
        assert_eq!(c.strip_sealed(&empty.sealed()).ops(), c.ops());
    }

    #[test]
    fn merge_splices_inserts_and_drops_tombstones() {
        let base = vec![1u64, 4, 4, 4, 9];
        let c = chain_of(&[(0, 1), (4, 1), (9, -1), (12, 1), (12, 1)], 2);
        assert_eq!(c.merge_into(&base), vec![0, 1, 4, 4, 4, 4, 12, 12]);

        // Deleting from the middle of a run shortens it.
        let c = chain_of(&[(4, -1), (4, -1)], 2);
        assert_eq!(c.merge_into(&base), vec![1, 4, 9]);

        // Empty base: only inserts can exist.
        let c = chain_of(&[(3, 1), (1, 1), (3, 1)], 1);
        assert_eq!(c.merge_into(&[]), vec![1, 3, 3]);
        assert_eq!(DeltaChain::<u64>::new().merge_into(&[]), Vec::<u64>::new());
    }

    #[test]
    fn merge_range_agrees_with_the_full_merge() {
        let base = vec![1u64, 4, 4, 4, 9, 12, 15];
        let c = chain_of(&[(0, 1), (4, 1), (9, -1), (13, 1), (13, 1), (4, -1)], 2);
        let full = c.merge_into(&base);
        // Inverted range: empty pair set, base passed through (no panic).
        assert_eq!(c.merge_range(&[], 10, 1), Vec::<u64>::new());
        for (lo, hi) in [(0u64, u64::MAX), (4, 9), (2, 13), (5, 8), (13, 13)] {
            let start = base.partition_point(|&x| x < lo);
            let end = base.partition_point(|&x| x <= hi);
            let got = c.merge_range(&base[start..end], lo, hi);
            let expect: Vec<u64> = full
                .iter()
                .copied()
                .filter(|&k| lo <= k && k <= hi)
                .collect();
            assert_eq!(got, expect, "[{lo}, {hi}]");
        }
    }

    #[test]
    fn partition_splits_nets_at_the_key() {
        let c = chain_of(&[(1, 1), (5, 1), (5, 1), (9, -1), (3, -1)], 2);
        let (l, r) = c.partition(5);
        assert_eq!(l.net_of(1), 1);
        assert_eq!(l.net_of(3), -1);
        assert_eq!(l.net_of(5), 0, "split key goes right");
        assert_eq!(r.net_of(5), 2);
        assert_eq!(r.net_of(9), -1);
        assert_eq!(l.len_delta() + r.len_delta(), c.len_delta());
        assert_eq!(
            l.net_below(u64::MAX) + r.net_below(u64::MAX),
            c.net_below(u64::MAX)
        );
        // Both sides stay amendable.
        assert_eq!(l.unsealed_run_count(), l.run_count());
    }

    #[test]
    fn concat_sums_both_sides() {
        let a = chain_of(&[(1, 1), (2, 1)], 64);
        let b = chain_of(&[(10, 1), (11, -1)], 64);
        let c = a.concat(&b);
        assert_eq!(c.ops(), 4);
        assert_eq!(c.len_delta(), 2);
        assert_eq!(c.net_below(5), 2);
        assert_eq!(c.net_below(u64::MAX), 2);
        assert_eq!(c.net_of(11), -1);
    }

    #[test]
    fn published_chains_share_runs_structurally() {
        let a = chain_of(&[(1, 1)], 1);
        let b = a.with_op(2, 1, 1); // new head, old run shared
        assert_eq!(b.run_count(), 2);
        assert!(Arc::ptr_eq(&a.runs[0], &b.runs[1]));
        // Amending within the run bound copies the head only.
        let c = chain_of(&[(1, 1)], 8);
        let d = c.with_op(2, 1, 8);
        assert_eq!(d.run_count(), 1);
        assert!(!Arc::ptr_eq(&c.runs[0], &d.runs[0]));
    }
}
