//! The sorted delta buffer: a mergeable multiset of buffered writes.
//!
//! Each shard absorbs writes into a `BTreeMap<K, i64>` of *net occurrence
//! deltas*: an insert adds `+1` for its key, a recorded delete (a tombstone)
//! adds `-1`. The merged view of the shard is then
//!
//! ```text
//! count(k)        = base_count(k) + net(k)
//! lower_bound(q)  = base_lower_bound(q) + Σ_{k < q} net(k)
//! ```
//!
//! with the invariant (maintained by the store's delete path, which only
//! records a tombstone when the merged count is positive) that
//! `base_count(k) + net(k) >= 0` for every key — so prefix sums of `net`
//! never drive a merged position negative.
//!
//! A rebuild *freezes* the buffer (cheap clone under the write lock), merges
//! it into the base key column off-lock, and finally subtracts the frozen
//! state so writes that arrived during the merge survive as the residual
//! buffer against the new base.

use sosd_data::key::Key;
use std::collections::BTreeMap;

/// Buffered writes against one shard's immutable base.
#[derive(Debug, Clone, Default)]
pub struct DeltaBuffer<K: Key> {
    net: BTreeMap<K, i64>,
    /// Operations recorded since the last rebuild — the dirtiness counter.
    /// Unlike `net.len()`, an insert/delete pair that cancels in `net` still
    /// counts: it was churn the rebuild threshold should see.
    ops: usize,
    /// Running Σ of `net` values, so [`DeltaBuffer::len_delta`] is O(1) — it
    /// is read for every preceding shard on every global-position read.
    len_delta: i64,
}

/// A point-in-time copy of a [`DeltaBuffer`], taken at the start of a rebuild
/// and subtracted from the live buffer when the rebuilt shard is swapped in.
#[derive(Debug, Clone)]
pub struct FrozenDelta<K: Key> {
    net: BTreeMap<K, i64>,
    ops: usize,
    len_delta: i64,
}

impl<K: Key> DeltaBuffer<K> {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            net: BTreeMap::new(),
            ops: 0,
            len_delta: 0,
        }
    }

    /// Record one inserted occurrence of `k`.
    pub fn record_insert(&mut self, k: K) {
        *self.net.entry(k).or_insert(0) += 1;
        self.ops += 1;
        self.len_delta += 1;
        if self.net[&k] == 0 {
            self.net.remove(&k);
        }
    }

    /// Record one deleted occurrence of `k`. The caller must have verified
    /// that the merged count of `k` is positive.
    pub fn record_delete(&mut self, k: K) {
        *self.net.entry(k).or_insert(0) -= 1;
        self.ops += 1;
        self.len_delta -= 1;
        if self.net[&k] == 0 {
            self.net.remove(&k);
        }
    }

    /// Net occurrence delta of `k` (0 when unbuffered).
    #[inline]
    pub fn net_of(&self, k: K) -> i64 {
        self.net.get(&k).copied().unwrap_or(0)
    }

    /// Sum of net deltas of all keys `< q` — the correction added to a base
    /// lower bound. `O(d)` in the buffer size, which the rebuild threshold
    /// keeps small.
    #[inline]
    pub fn net_below(&self, q: K) -> i64 {
        self.net.range(..q).map(|(_, &c)| c).sum()
    }

    /// Net change to the merged key count (O(1): maintained as a running
    /// counter alongside the map).
    pub fn len_delta(&self) -> i64 {
        debug_assert_eq!(self.len_delta, self.net.values().sum::<i64>());
        self.len_delta
    }

    /// Materialize the buffer as sorted `(key, cumulative net delta up to
    /// and including that key)` pairs — one O(d) pass that lets a batch of
    /// reads resolve [`DeltaBuffer::net_below`] by binary search
    /// ([`DeltaBuffer::net_below_in`]) instead of an O(d) map scan per query.
    pub fn prefix_sums(&self) -> Vec<(K, i64)> {
        let mut acc = 0i64;
        self.net
            .iter()
            .map(|(&k, &c)| {
                acc += c;
                (k, acc)
            })
            .collect()
    }

    /// [`DeltaBuffer::net_below`] evaluated against a
    /// [`DeltaBuffer::prefix_sums`] slice in O(log d).
    #[inline]
    pub fn net_below_in(prefix: &[(K, i64)], q: K) -> i64 {
        let idx = prefix.partition_point(|&(k, _)| k < q);
        if idx == 0 {
            0
        } else {
            prefix[idx - 1].1
        }
    }

    /// Operations recorded since the last rebuild.
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// True when no write has been recorded since the last rebuild.
    pub fn is_clean(&self) -> bool {
        self.ops == 0 && self.net.is_empty()
    }

    /// Snapshot the buffer for a rebuild.
    pub fn freeze(&self) -> FrozenDelta<K> {
        FrozenDelta {
            net: self.net.clone(),
            ops: self.ops,
            len_delta: self.len_delta,
        }
    }

    /// Subtract a frozen snapshot after its contents were merged into the
    /// new base: what remains is exactly the writes recorded since
    /// [`DeltaBuffer::freeze`].
    pub fn subtract_frozen(&mut self, frozen: &FrozenDelta<K>) {
        for (&k, &c) in &frozen.net {
            let entry = self.net.entry(k).or_insert(0);
            *entry -= c;
            if *entry == 0 {
                self.net.remove(&k);
            }
        }
        self.ops = self.ops.saturating_sub(frozen.ops);
        self.len_delta -= frozen.len_delta;
    }

    /// Approximate heap footprint of the buffer in bytes.
    pub fn size_bytes(&self) -> usize {
        // Key + counter per entry, plus B-tree node overhead.
        self.net.len() * (K::size_bytes() + std::mem::size_of::<i64>() + 16)
    }
}

impl<K: Key> FrozenDelta<K> {
    /// True if the snapshot holds no net changes.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
    }

    /// Merge the frozen deltas into a sorted base column, producing the new
    /// sorted key column: inserted occurrences are spliced in at their sorted
    /// positions, tombstoned occurrences are dropped from the front of their
    /// duplicate run.
    pub fn merge_into(&self, base: &[K]) -> Vec<K> {
        let expected = base.len() as i64 + self.len_delta;
        let mut out = Vec::with_capacity(expected.max(0) as usize);
        let mut deltas = self.net.iter().peekable();
        let mut i = 0usize;
        while i < base.len() {
            match deltas.peek() {
                Some(&(&k, &c)) if k <= base[i] => {
                    if k < base[i] {
                        // A key absent from the base: only inserts can be
                        // buffered for it (tombstones require presence).
                        debug_assert!(c > 0, "tombstone for an absent key");
                        out.extend(std::iter::repeat_n(k, c.max(0) as usize));
                    } else {
                        // k == base[i]: rewrite the whole duplicate run.
                        let mut run = 0i64;
                        while i < base.len() && base[i] == k {
                            run += 1;
                            i += 1;
                        }
                        let total = run + c;
                        debug_assert!(total >= 0, "tombstones exceed the run");
                        out.extend(std::iter::repeat_n(k, total.max(0) as usize));
                    }
                    deltas.next();
                }
                _ => {
                    out.push(base[i]);
                    i += 1;
                }
            }
        }
        for (&k, &c) in deltas {
            out.extend(std::iter::repeat_n(k, c.max(0) as usize));
        }
        debug_assert!(out.is_sorted());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_bookkeeping_cancels_and_counts_ops() {
        let mut d: DeltaBuffer<u64> = DeltaBuffer::new();
        assert!(d.is_clean());
        d.record_insert(5);
        d.record_insert(5);
        d.record_delete(5);
        assert_eq!(d.net_of(5), 1);
        assert_eq!(d.ops(), 3, "cancelled ops still count towards dirtiness");
        d.record_delete(5);
        assert_eq!(d.net_of(5), 0);
        assert!(
            !d.is_clean(),
            "ops keep the buffer dirty after cancellation"
        );
        assert_eq!(d.len_delta(), 0);
    }

    #[test]
    fn net_below_is_a_prefix_sum() {
        let mut d: DeltaBuffer<u64> = DeltaBuffer::new();
        d.record_insert(2);
        d.record_insert(2);
        d.record_delete(7);
        d.record_insert(9);
        assert_eq!(d.net_below(0), 0);
        assert_eq!(d.net_below(2), 0);
        assert_eq!(d.net_below(3), 2);
        assert_eq!(d.net_below(8), 1);
        assert_eq!(d.net_below(u64::MAX), 2);
        assert_eq!(d.len_delta(), 2);
        // The materialized prefix-sum view agrees with the map scan at
        // every probe, including before/after the whole buffer.
        let prefix = d.prefix_sums();
        assert_eq!(prefix, vec![(2, 2), (7, 1), (9, 2)]);
        for q in [0u64, 1, 2, 3, 7, 8, 9, 10, u64::MAX] {
            assert_eq!(
                DeltaBuffer::net_below_in(&prefix, q),
                d.net_below(q),
                "q={q}"
            );
        }
        assert_eq!(DeltaBuffer::<u64>::net_below_in(&[], 5), 0);
    }

    #[test]
    fn merge_splices_inserts_and_drops_tombstones() {
        let base = vec![1u64, 4, 4, 4, 9];
        let mut d: DeltaBuffer<u64> = DeltaBuffer::new();
        d.record_insert(0); // before everything
        d.record_insert(4); // extends the run
        d.record_delete(9); // removes the last key entirely
        d.record_insert(12); // after everything
        d.record_insert(12);
        let merged = d.freeze().merge_into(&base);
        assert_eq!(merged, vec![0, 1, 4, 4, 4, 4, 12, 12]);

        // Deleting from the middle of a run shortens it.
        let mut d: DeltaBuffer<u64> = DeltaBuffer::new();
        d.record_delete(4);
        d.record_delete(4);
        assert_eq!(d.freeze().merge_into(&base), vec![1, 4, 9]);
    }

    #[test]
    fn merge_into_empty_base() {
        let mut d: DeltaBuffer<u64> = DeltaBuffer::new();
        d.record_insert(3);
        d.record_insert(1);
        d.record_insert(3);
        assert_eq!(d.freeze().merge_into(&[]), vec![1, 3, 3]);
        let empty: DeltaBuffer<u64> = DeltaBuffer::new();
        assert_eq!(empty.freeze().merge_into(&[]), Vec::<u64>::new());
    }

    #[test]
    fn subtract_frozen_leaves_the_residual() {
        let mut d: DeltaBuffer<u64> = DeltaBuffer::new();
        d.record_insert(1);
        d.record_insert(2);
        let frozen = d.freeze();
        // Writes arriving "during the rebuild".
        d.record_insert(2);
        d.record_delete(1);
        d.subtract_frozen(&frozen);
        assert_eq!(d.net_of(1), -1, "the in-flight delete survives");
        assert_eq!(d.net_of(2), 1, "the in-flight insert survives");
        assert_eq!(d.ops(), 2);
    }
}
