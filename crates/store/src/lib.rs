//! # shift-store: a sharded, updatable serving layer with a lock-free
//! read path
//!
//! The `shift-table` crate builds *static* corrected range indexes — one
//! sorted key column, one learned model, one correction layer. This crate
//! turns those into a concurrent serving system:
//!
//! * [`ShardedIndex`] — a read-only index range-partitioned across `N`
//!   shards behind a fence-key router; batched lookups are grouped by shard
//!   so each shard's pipelined batch kernel is preserved.
//! * [`StoreShard`] — the updatable building block: an epoch-stamped
//!   [`ShardSnapshot`] (sorted base + learned index) paired with an
//!   immutable [`DeltaChain`] of buffered writes, published together as one
//!   [`ShardState`].
//! * [`ShardedStore`] — the full store: an atomically republished
//!   [`StoreTable`] (router + shards), write paths that transparently
//!   re-route around splits/merges, and an optional background
//!   [`MaintenanceWorker`].
//!
//! Both sharded types implement [`algo_index::RangeIndex`], so a store drops
//! into every harness that benchmarks the static indexes.
//!
//! ## Kernel-backed read path
//!
//! Every batched read bottoms out in the core crate's software-pipelined
//! lookup kernel ([`shift_table::kernel`]): per-shard query groups run the
//! corrected index's predict → correct → touch → resolve wave pipeline, the
//! delta shift is accumulated **run-outer** per block
//! ([`DeltaChain::net_below_batch`]) so a run's entry array stays
//! cache-resident across the whole block, and a still-cold base answers
//! batches through its own route → touch → resolve stage split
//! ([`persist::v2::ColdBase::lower_bound_batch`]). Ranges ride the same
//! path: both endpoints of a snapshot's `range` (and
//! [`ShardState::range`]) travel as one two-query batch whenever they
//! resolve in one shard, and [`StoreSnapshot::scan`] derives its per-shard
//! start positions from the kernel-backed `range` of each pinned index.
//!
//! ## Concurrency model
//!
//! Every piece of state a read touches is **immutable and published by
//! pointer swap**:
//!
//! * A shard's state — base snapshot *and* delta chain — is one immutable
//!   [`ShardState`] behind an [`EpochCell`]. A scalar or batched read pins
//!   the state once (a single `Arc` acquisition) and then runs **pure
//!   merges**: probe the learned index, add the chain's prefix sums. No
//!   mutex or `RwLock` is held after that acquisition — in particular, no
//!   lock is held while probing the index — and a read that finds an empty
//!   chain skips the merge machinery entirely.
//! * The delta chain is a short, newest-first list of immutable sorted
//!   runs ([`DeltaRun`]). A write publishes a successor chain that amends
//!   the small head run by copy (bounded by `max_run_len`) or prepends a
//!   singleton; all other runs are shared by `Arc`. Writers are serialised
//!   by a per-shard mutex that readers never take.
//! * The store's topology — fences plus shard list — is one immutable
//!   [`StoreTable`] behind its own [`EpochCell`]. Multi-shard reads (global
//!   positions, batches, ranges) resolve entirely against one pinned table,
//!   so a concurrent split or merge can never route part of a batch through
//!   one topology and part through another.
//!
//! Maintenance reuses the same mechanism. A **rebuild** seals the chain
//! (an index move — no data copied), merges chain + base and retrains the
//! model entirely off-lock while readers and writers proceed against the
//! sealed state, then swaps in the new epoch and keeps the writes that
//! landed mid-rebuild as the residual chain. A **split** freezes a shard
//! the same way, cuts the merged column at a duplicate-run-aligned median
//! fence, builds both children off-lock, and commits by retiring the old
//! shard and publishing a new table; an in-flight writer that routed to the
//! retired shard gets refused at its write lock and transparently retries
//! against the new table. Merging undersized neighbours is symmetric. The
//! optional [`MaintenanceWorker`] thread (spawned by
//! [`ShardedStore::build`] when
//! [`StoreConfig::background_maintenance`] is set, stopped and joined on
//! drop) runs compaction, dirty-shard rebuilds and rebalancing on an
//! interval, kicked early by threshold-crossing writes.
//!
//! ## Consistency model
//!
//! The store exposes two first-class handles — [`StoreSnapshot`], the unit
//! of **consistency**, and [`WriteBatch`], the unit of **atomicity** — and
//! every guarantee below is phrased in terms of the store-wide **commit
//! version**: a monotonic counter ([`EpochCell`]'s sibling
//! [`epoch::CommitClock`]) stamped on every applied write and on every
//! applied batch as a whole.
//!
//! * **Snapshots are store-wide consistent cuts.** [`ShardedStore::snapshot`]
//!   pins one topology epoch plus every shard's state inside one quiescent
//!   window of the commit clock (a seqlock-style capture that never blocks
//!   writers): the snapshot contains **exactly** the writes with commit
//!   version `<= StoreSnapshot::version()`, across all shards at once, and
//!   every read on it — scalar, batch, range, count, scan — is repeatable
//!   forever. This closes the old "cross-shard composition is racy by
//!   design" caveat: multi-shard reads no longer compose states pinned at
//!   different instants.
//! * **All store reads are snapshot reads.** The store's own read methods
//!   pin a fresh snapshot per call, so a batched or ranged read is exact
//!   even while writers, rebuilds and the rebalancer race it — including
//!   mid-`rebalance()`, where the old direct path could combine a retired
//!   shard's final state with its successors'.
//! * **Batches are atomic.** [`ShardedStore::apply`] stamps one commit
//!   version on every operation of a [`WriteBatch`] inside one clock
//!   window: a snapshot observes all of a batch or none of it. On a durable
//!   store the batch is one multi-op WAL record under one checksum, synced
//!   once — after a crash it recovers all-or-nothing.
//! * **Per-shard reads are linearizable.** Each read observes exactly one
//!   published `ShardState`; states are published in write order under the
//!   shard's write mutex and stamped with a strictly monotonic version, so
//!   a read sees every write published before its pin and none after.
//! * **Reads never block, and are never blocked by, maintenance.** Sealing,
//!   compaction, rebuilds, splits and merges only ever *publish new
//!   values*; a pinned state (or snapshot) remains valid and immutable
//!   forever. Maintenance never changes the merged view, so it carries a
//!   state's `applied_cv` stamp forward unchanged.
//! * **Writes are never lost.** A writer either lands in a live shard's
//!   chain (and survives rebuilds as residual, splits via the fence-cut of
//!   the residual) or is refused by a retired shard and retried against the
//!   successor topology.
//!
//! ### MVCC: time travel and change capture
//!
//! With [`StoreConfig::retain_versions`] set, the store keeps a bounded
//! ring of historical cuts (see [`versions`]) and three calls open up:
//!
//! * [`ShardedStore::snapshot_at`] pins a snapshot at any **retained**
//!   commit version — as capable and as consistent as a live snapshot,
//!   exact at that version forever. An evicted or never-captured version
//!   fails with the typed [`StoreError::VersionNotRetained`].
//! * [`ShardedStore::scan_between`] is the change-data-capture feed: the
//!   ordered key-level diff (net occurrence delta per key, zeros dropped)
//!   between two retained versions, computed from the structural difference
//!   of the pinned cuts — shards untouched between the cuts cost nothing,
//!   shards sharing a base epoch cost only their buffered writes.
//! * [`ShardedStore::version_stats`] reports how much heap the ring pins
//!   beyond the live state (shared structures counted once). Retention
//!   works because maintenance only ever republishes immutable values: a
//!   retained cut simply keeps the sealed runs and base snapshots it needs
//!   alive across compactions, rebuilds and rebalances.
//!
//! ### Optimistic transactions
//!
//! [`ShardedStore::begin`] opens a [`Txn`]: reads run on a snapshot pinned
//! at begin (recording point counts and range fingerprints in a read set),
//! writes buffer into a private [`WriteBatch`] that overlays the
//! transaction's own reads. [`Txn::commit`] revalidates the read set at the
//! store's current cut **inside the same serialization point every plain
//! write uses** (the WAL frame lock / the write gate) and applies the batch
//! only if every recorded observation still holds — **first committer
//! wins**; the loser gets [`StoreError::TxnConflict`] naming the key or
//! range that moved, and its WAL carries no trace of the attempt.
//! Granularity: point reads conflict on the key's occurrence count; range
//! reads conflict on *any* change to the scanned range's content. A
//! committed transaction is serializable for its recorded footprint — it
//! behaves as if executed atomically at its commit version. Conflicted
//! work should re-run through [`ShardedStore::commit_with_retries`], which
//! re-reads on a fresh snapshot per attempt. Durability is inherited from
//! the batch path: one multi-op WAL frame, one sync, group commit,
//! all-or-nothing crash recovery.
//!
//! ### Migrating from the direct-read API
//!
//! The pre-snapshot direct reads survive as one-shot conveniences (each
//! pins a fresh snapshot internally), but correlated reads should migrate
//! to an explicit snapshot:
//!
//! | Old (per-call pin)                   | New (explicit consistent cut)           |
//! |--------------------------------------|-----------------------------------------|
//! | `store.lower_bound(q)`               | `store.snapshot().lower_bound(q)`       |
//! | `store.lower_bound_batch(qs, out)`   | `store.snapshot().lower_bound_batch(…)` |
//! | `store.range(lo, hi)`                | `store.snapshot().range(lo, hi)`        |
//! | `store.count_of(k)`                  | `store.snapshot().count_of(k)`          |
//! | `store.len()`                        | `store.snapshot().len()`                |
//! | *(no equivalent)*                    | `store.snapshot().scan(lo, hi)`         |
//! | `store.insert(k)` loop               | `store.apply(&batch)` (atomic, 1 sync)  |
//! | `for k { store.insert(k)?; }`        | `WriteBatch::new().insert(k)…` + apply  |
//!
//! Two reads on **one** snapshot always agree with each other; two
//! one-shot calls each see their own (newer) cut, exactly like the old
//! behaviour when no write raced them.
//!
//! ## Durability
//!
//! A store opened with [`ShardedStore::open`] (or seeded with
//! [`ShardedStore::open_seeded`]) persists to a directory and survives a
//! crash; [`ShardedStore::build`] stays purely in memory. Three file kinds
//! make up the on-disk format (full layouts in the [`persist`] module and
//! its submodules):
//!
//! * **WAL segments** (`wal-<start-version>.log`): every insert/delete is
//!   appended as a length-prefixed, CRC32-checksummed record *before* it is
//!   applied in memory — and a whole [`WriteBatch`] is appended as **one
//!   multi-op record** (format v2, see [`persist::wal`]) under one
//!   checksum, so it is durable all-or-nothing. Records carry a
//!   monotonically increasing store version, assigned under the store-wide
//!   WAL lock that also serialises the in-memory apply — so per-shard apply
//!   order always equals version order. [`SyncPolicy`] controls fsync
//!   cadence: `Always` (never lose an acknowledged write; concurrent
//!   writers share `fdatasync`s through the WAL's group committer),
//!   `EveryN(n)` (lose at most `n − 1`), `Os` (page cache decides).
//! * **Shard snapshots** (`snap-<checkpoint>-<shard>.snap`): a checkpoint
//!   writes each shard's merged key column in the **block-structured v2
//!   format** ([`persist::v2`]) — fixed-size key blocks each under its own
//!   CRC32, plus a trailing block index — so recovery can validate blocks
//!   independently and a cold start can serve `lower_bound` straight off
//!   the index before decoding anything. The trained model is *not*
//!   persisted — recovery retrains it from the keys and the spec string,
//!   which round-trips losslessly through its display form. PR-4-era v1
//!   files are still read (the loader dispatches on the leading magic).
//! * **A manifest** (`manifest-<seq>`): the checkpoint root — spec string,
//!   fence table, snapshot files, checkpoint version — written to a temp
//!   file and atomically renamed, so no crash can expose a torn root.
//!
//! Checkpoints are **epoch-consistent**: the maintenance worker (or an
//! explicit [`ShardedStore::checkpoint`]) briefly takes the WAL lock,
//! rotates to a fresh segment and pins every shard's immutable state —
//! because durable writes apply under that same lock, the pinned set is an
//! exact cut at one version `cv`. Snapshot writing then proceeds entirely
//! off-lock, and WAL segments whose records all sit at or below `cv` are
//! deleted once the new manifest is durable. Checkpoints are also
//! **incremental** by default
//! ([`DurabilityConfig::incremental_checkpoints`]): a shard whose merged
//! view has not moved since the previous checkpoint is *skipped* — the new
//! manifest re-references the prior snapshot file instead of rewriting
//! identical bytes ([`DurabilityStats::checkpoint_shards_skipped`] and
//! [`DurabilityStats::snapshot_bytes_reused`] account the savings).
//!
//! **Recovery** ([`ShardedStore::open`]) loads the newest manifest that
//! validates, rebuilds each shard from its snapshot, and replays the WAL
//! tail through the recovered fence router. Replay is *idempotent*: a
//! record at or below the routed shard's recovered version is a no-op, so
//! stale segments are harmless; a torn tail (short frame or checksum
//! mismatch) simply ends the log, recovering the exact durable prefix.
//! With [`StoreConfig::cold_start`], reopen is **streaming**: v2 snapshots
//! are *mounted* (footer + block index, no decode, no training) and served
//! cold while a background hydrator retrains models shard by shard — first
//! reads precede model training, and [`ShardedStore::open_breakdown`]
//! reports where the open time went. A WAL sync failure no longer forces a
//! reopen either: [`ShardedStore::repair_wal`] rotates to a fresh segment
//! and restores writability online.
//!
//! ## Observability
//!
//! The store ships its own zero-dependency observability layer
//! (`crates/obs`, re-exported primitives in [`shift_obs`]): a lock-free
//! metrics registry, a bounded trace ring of structured maintenance
//! events, and Prometheus/JSON export — all safe Rust, no external crates,
//! lint-clean under the same rules as the serving path.
//!
//! * [`ShardedStore::metrics`] returns a [`shift_obs::MetricsReport`]
//!   sampling every family in [`obs::CATALOGUE`] (op counters, sampled
//!   read/write latency histograms, maintenance durations, topology
//!   gauges, per-shard access counters, kernel batch statistics, and — on
//!   durable stores — WAL/checkpoint families). `report.to_prometheus()`
//!   renders text-format 0.0.4, `report.to_json()` a stable JSON shape;
//!   [`shift_obs::parse_prometheus`] round-trips the former for tests and
//!   scrapers.
//! * [`ShardedStore::trace_events`] drains the bounded, lock-free ring of
//!   structured [`TraceEvent`]s (rebuilds, compactions, splits, merges,
//!   hydrations with a [`HydrationReason`], checkpoints, WAL repair and
//!   poisoning, captured maintenance errors), each stamped with the commit
//!   version at which it was recorded. The ring holds
//!   [`StoreConfig::trace_capacity`] events and drops **oldest first**;
//!   drops are counted exactly in `store_trace_dropped_total`.
//! * [`ShardedStore::take_maintenance_errors`] drains the bounded error
//!   ring ([`obs::ERROR_RING_CAPACITY`] entries, always on — failures are
//!   captured even with metrics disabled).
//! * [`StoreConfig::metrics_addr`] optionally serves
//!   `GET /metrics` (Prometheus) and `GET /metrics.json` from a
//!   std-`TcpListener` thread ([`shift_obs::MetricsServer`]), shut down
//!   with the store.
//!
//! **Cost discipline.** Every count is one relaxed `fetch_add`; nothing on
//! the read or write path takes a lock or allocates. That same count
//! drives every sampling decision: latency timers arm when the op counter
//! crosses a 1-in-[`StoreConfig::latency_sample`] stride boundary, and
//! per-shard access counters are sampled 1-in-64 off a relaxed load of
//! the read count (sampled bumps scaled by the stride, so the decayed
//! counter still estimates the true rate) — an unsampled read's entire
//! metrics bill is one relaxed `fetch_add`, no clock, no second RMW. WAL
//! appends sample 1-in-64, and only the millisecond-scale cold phases
//! (rebuild, compaction, hydration, checkpoint, WAL fsync) are timed
//! unconditionally. Histograms are
//! log2-bucketed (64 buckets), so quantile readouts are upper bounds within
//! 2× of the true value. With [`StoreConfig::metrics`] off (or via
//! `StoreConfig::metrics(false)`), every site short-circuits on one
//! predicted branch, [`ShardedStore::metrics`] reports empty, and the CI
//! overhead gate (`OBS_ASSERT=1`, `store_mixed` head-to-head) holds the
//! metrics-on read path within 3% of metrics-off on both mean and p99.
//!
//! The full metric catalogue — name, unit, and help text for every family,
//! including which appear only on durable stores — lives in
//! [`obs::CATALOGUE`]; a completeness test asserts the exported report and
//! the catalogue never diverge.
//!
//! ## Checked invariants
//!
//! The claims above are machine-checked by `shift-lint` (`crates/lint`), a
//! repo-local static analyzer that runs in CI (`cargo run -p shift-lint --
//! check`) and fails the build on any finding. The rules, and what they
//! guarantee about this crate:
//!
//! * **`atomics-ordering`** — every `Ordering::*` argument in non-test code
//!   carries a `// lint: ordering(X) <why>` annotation naming the ordering
//!   actually used and its synchronisation role. The interesting pairings
//!   are documented where they live: the retired-shard flag
//!   (Release store / Acquire load), `merged_len` (AcqRel / Acquire), the
//!   [`CommitClock`] seqlock (SeqCst throughout), and the `Relaxed` stats
//!   counters that publish nothing. An unjustified `Relaxed` is a hard
//!   error.
//! * **`panic-path`** — no `unwrap`/`expect`/`panic!`/`assert!` in this
//!   crate's (or `shift-table`'s) non-test sources. Fallible conditions
//!   return [`StoreError`]; the surviving sites are each annotated
//!   `// lint: allow(panic) <why>` and fall into four audited classes:
//!   lock-poisoning propagation (a dead writer has no sound continuation),
//!   thread-join re-raises, provably infallible conversions (length-checked
//!   `try_into`), and documented API contracts where truncating would
//!   silently serve wrong answers. `debug_assert!` is always allowed.
//! * **`unsafe-hygiene`** — every crate root carries
//!   `#![forbid(unsafe_code)]`; any future `unsafe` block must carry a
//!   `// SAFETY:` comment. This crate's lock-free read path is built
//!   entirely from safe `Arc` swaps — the linter keeps it that way.
//! * **`guard-across-sync`** — no lock guard may be live across an
//!   `fsync`-class call (`sync_all`/`sync_data`/WAL `sync`) unless the site
//!   is annotated `// lint: allow(guard-across-sync) <why>`. The three
//!   annotated sites in `persist/` are intentional: the WAL lock *is* the
//!   checkpoint barrier (group-commit leader, checkpoint cut, drop-time
//!   tail flush).
//! * **`bare-sleep`** — no `thread::sleep` outside tests; coordination uses
//!   condvars and joins, not timing.
//! * **`instant-in-hot-path`** — no raw `Instant::now()` in this crate's
//!   (or `shift-table`'s) non-test sources: clock reads on the serving path
//!   must sit behind a [`shift_obs::Sampler`] so an unsampled operation
//!   never pays one. The deliberately-unsampled cold paths (maintenance
//!   phases, recovery timing) each carry `// lint: allow(timing) <why>`.
//!
//! Annotations are themselves checked: a malformed `// lint:` comment or an
//! annotation no finding consumes (`unused-annotation`) is an error, so
//! justifications cannot rot. See `crates/lint/src/lib.rs` for the rule
//! engine and its fixtures.
//!
//! ## Example
//!
//! ```
//! use shift_store::{ShardedStore, StoreConfig};
//! use shift_table::spec::IndexSpec;
//! use algo_index::RangeIndex;
//!
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
//! let config = StoreConfig::new(IndexSpec::parse("im+r1").unwrap())
//!     .shards(4)
//!     .delta_threshold(256);
//! let store = ShardedStore::build(config, &keys).unwrap();
//!
//! // Reads go through the fence-key router to exactly one shard.
//! assert_eq!(store.lower_bound(300), 100);
//! assert_eq!(store.range(300, 330), 100..111);
//!
//! // Writes are absorbed by the shard's delta chain and visible
//! // immediately; the shard rebuilds itself once 256 ops accumulate.
//! store.insert(301).unwrap();
//! assert_eq!(store.lower_bound(302), 102);
//! assert!(store.delete(301).unwrap());
//! assert!(!store.delete(301).unwrap(), "second delete is a no-op");
//!
//! // Batched lookups are grouped per shard before dispatch.
//! let out = store.lower_bound_many(&[0, 3_000, 29_997, u64::MAX]);
//! assert_eq!(out, vec![0, 1_000, 9_999, 10_000]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod delta;
pub mod epoch;
pub mod error;
pub mod obs;
pub mod persist;
pub mod router;
pub mod shard;
pub mod sharded;
pub mod snapshot;
pub mod txn;
pub mod versions;
pub mod worker;

pub use batch::{BatchOp, BatchReceipt, WriteBatch};
pub use config::{DurabilityConfig, RetainPolicy, StoreConfig, SyncPolicy};
pub use delta::{DeltaChain, DeltaRun};
pub use epoch::{CommitClock, EpochCell};
pub use error::{RetiredShard, StoreError};
pub use obs::{HydrationReason, TraceEvent, TraceKind};
pub use persist::recovery::OpenBreakdown;
pub use persist::DurabilityStats;
pub use router::ShardRouter;
pub use shard::{ShardSnapshot, ShardState, StoreShard};
pub use sharded::{ShardedIndex, ShardedStore, StoreTable};
pub use snapshot::StoreSnapshot;
pub use txn::Txn;
pub use versions::VersionStats;
pub use worker::{HydrationWorker, MaintenanceWorker};

impl<K: sosd_data::key::Key> shift_table::snapshot::SnapshotRead<K> for ShardedStore<K> {
    type Snapshot = StoreSnapshot<K>;

    fn snapshot(&self) -> StoreSnapshot<K> {
        ShardedStore::snapshot(self)
    }
}

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::batch::{BatchOp, BatchReceipt, WriteBatch};
    pub use crate::config::RetainPolicy;
    pub use crate::config::{DurabilityConfig, StoreConfig, SyncPolicy};
    pub use crate::error::{RetiredShard, StoreError};
    pub use crate::obs::{HydrationReason, TraceEvent, TraceKind};
    pub use crate::persist::recovery::OpenBreakdown;
    pub use crate::persist::DurabilityStats;
    pub use crate::shard::{ShardSnapshot, ShardState, StoreShard};
    pub use crate::sharded::{ShardedIndex, ShardedStore, StoreTable};
    pub use crate::snapshot::StoreSnapshot;
    pub use crate::txn::Txn;
    pub use crate::versions::VersionStats;
    pub use shift_table::snapshot::SnapshotRead;
}
