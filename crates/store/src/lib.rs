//! # shift-store: a sharded, updatable serving layer for corrected indexes
//!
//! The `shift-table` crate builds *static* corrected range indexes — one
//! sorted key column, one learned model, one correction layer. This crate
//! turns those into a serving system:
//!
//! * [`ShardedIndex`] — a read-only index range-partitioned across `N`
//!   shards. A tiny router over *fence keys* (the first key of each shard)
//!   sends every query to exactly one independently built
//!   [`algo_index::DynRangeIndex`]; batched lookups are grouped by shard
//!   before dispatch so each shard's stage-blocked batch path
//!   (model → layer → local search, one stage loop per block) is preserved.
//! * [`StoreShard`] — the updatable building block: an immutable, epoch-
//!   stamped shard snapshot plus a sorted delta buffer of inserts and delete
//!   tombstones. Reads merge the two views on the fly; once the buffer
//!   crosses a configurable threshold the buffer is folded into a fresh base
//!   and the snapshot is atomically swapped (`Arc` swap, epoch + 1) while
//!   concurrent readers keep serving from the old epoch.
//! * [`ShardedStore`] — the full store: the router in front of one
//!   [`StoreShard`] per range, with dirty shards rebuilt inline on the
//!   crossing write (`auto_rebuild`) or in parallel scoped threads via
//!   [`ShardedStore::maintain`] / [`ShardedStore::flush`].
//!
//! Both sharded types implement [`algo_index::RangeIndex`], so a store drops
//! into every harness that benchmarks the static indexes.
//!
//! ## Example
//!
//! ```
//! use shift_store::{ShardedStore, StoreConfig};
//! use shift_table::spec::IndexSpec;
//! use algo_index::RangeIndex;
//!
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
//! let config = StoreConfig::new(IndexSpec::parse("im+r1").unwrap())
//!     .shards(4)
//!     .delta_threshold(256);
//! let store = ShardedStore::build(config, &keys).unwrap();
//!
//! // Reads go through the fence-key router to exactly one shard.
//! assert_eq!(store.lower_bound(300), 100);
//! assert_eq!(store.range(300, 330), 100..111);
//!
//! // Writes are absorbed by the shard's delta buffer and visible
//! // immediately; the shard rebuilds itself once 256 ops accumulate.
//! store.insert(301).unwrap();
//! assert_eq!(store.lower_bound(302), 102);
//! assert!(store.delete(301).unwrap());
//! assert!(!store.delete(301).unwrap(), "second delete is a no-op");
//!
//! // Batched lookups are grouped per shard before dispatch.
//! let out = store.lower_bound_many(&[0, 3_000, 29_997, u64::MAX]);
//! assert_eq!(out, vec![0, 1_000, 9_999, 10_000]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod delta;
pub mod router;
pub mod shard;
pub mod sharded;

pub use config::StoreConfig;
pub use delta::{DeltaBuffer, FrozenDelta};
pub use router::ShardRouter;
pub use shard::{ShardSnapshot, StoreShard};
pub use sharded::{ShardedIndex, ShardedStore};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::config::StoreConfig;
    pub use crate::shard::{ShardSnapshot, StoreShard};
    pub use crate::sharded::{ShardedIndex, ShardedStore};
}
