//! Store-wide consistent read views: the [`StoreSnapshot`] handle.
//!
//! A [`StoreSnapshot`] is the store's first-class **unit of consistency**:
//! one pinned [`StoreTable`] (fence router + shard list) paired with a
//! vector of per-shard [`ShardState`]s captured at a single quiescent cut of
//! the store's [`CommitClock`](crate::epoch::CommitClock) — see
//! [`crate::epoch::CommitClock`]. The snapshot therefore reflects **exactly**
//! the writes with commit version `<= version()`, across every shard at
//! once, and every read evaluated against it is repeatable forever: scalar
//! lower bounds, batched lookups, ranges, counts and key scans all answer
//! from the same immutable cut no matter how many writers, rebuilds, splits
//! or merges race the caller.
//!
//! Acquiring a snapshot holds no lock while reading and, on the happy
//! path, never blocks writers: it is a seqlock-guarded sweep of `Arc`
//! loads (retried while a write is mid-publication), after which
//! everything is pure probes over immutable state. A capture starved by a
//! continuous write storm falls back to briefly gating new writes out, so
//! progress is guaranteed either way. Holding a snapshot only pins memory
//! — old epochs stay alive until the last snapshot referencing them drops.
//!
//! [`ShardedStore`](crate::ShardedStore)'s own read methods are one-shot
//! conveniences that pin a fresh snapshot per call; take an explicit
//! snapshot whenever two reads must agree with each other.

use crate::obs::{HydrationReason, StoreObs, TraceEvent, TraceKind, ACCESS_SAMPLE_SHIFT};
use crate::shard::ShardState;
use crate::sharded::{dispatch_batch_by_shard, StoreTable};
use crate::worker::WorkerSignal;
use algo_index::search::RangeIndex;
use shift_obs::SampledTimer;
use sosd_data::key::Key;
use std::sync::Arc;

/// The observability hook a store snapshot carries: the store's metric
/// registry plus the maintenance-worker signal the hydrate-on-first-touch
/// path kicks. `None` only for snapshots assembled outside a store.
pub(crate) struct SnapshotHook {
    pub(crate) obs: Arc<StoreObs>,
    pub(crate) signal: Arc<WorkerSignal>,
}

/// A consistent store-wide cut without the observability hook: the pinned
/// table, the per-shard state vector and its precomputed offsets, all
/// behind `Arc`s so a clone is two reference-count bumps. This is the
/// structure the store's O(1) snapshot cache and the MVCC version ring
/// retain; [`StoreSnapshot`] wraps one together with the metrics hook.
#[derive(Clone)]
pub(crate) struct PinnedCut<K: Key> {
    pub(crate) table: Arc<StoreTable<K>>,
    pub(crate) states: Arc<Vec<Arc<ShardState<K>>>>,
    /// Global position offset of each shard in the merged view.
    pub(crate) offsets: Arc<Vec<usize>>,
    pub(crate) total: usize,
    pub(crate) version: u64,
}

impl<K: Key> PinnedCut<K> {
    /// Assemble a cut from a pinned table and its state vector (the store's
    /// commit clock guarantees the pair is consistent).
    pub(crate) fn new(
        table: Arc<StoreTable<K>>,
        states: Vec<Arc<ShardState<K>>>,
        version: u64,
    ) -> Self {
        let mut offsets = Vec::with_capacity(states.len());
        let mut total = 0usize;
        for state in &states {
            offsets.push(total);
            total += state.merged_len();
        }
        Self {
            table,
            states: Arc::new(states),
            offsets: Arc::new(offsets),
            total,
            version,
        }
    }
}

/// A pinned, immutable, store-wide consistent read view (see the module
/// docs). Cheap to clone conceptually — but not `Clone`: take a fresh
/// snapshot instead, or share one behind `Arc`.
pub struct StoreSnapshot<K: Key> {
    cut: PinnedCut<K>,
    hook: Option<SnapshotHook>,
}

impl<K: Key> StoreSnapshot<K> {
    /// Wrap an already-assembled cut (the cached-pin and `snapshot_at`
    /// paths) — O(1): a handful of `Arc` clones inside the cut.
    pub(crate) fn from_cut(cut: PinnedCut<K>, hook: Option<SnapshotHook>) -> Self {
        Self { cut, hook }
    }

    /// Count `n` read operations against the store registry and maybe start
    /// a sampled latency timer (disarmed without a hook).
    #[inline]
    fn reads_start(&self, n: u64) -> SampledTimer {
        match &self.hook {
            Some(hook) => hook.obs.reads_start(n),
            None => SampledTimer::disarmed(),
        }
    }

    /// Finish a timer from [`StoreSnapshot::reads_start`].
    #[inline]
    fn reads_done(&self, timer: SampledTimer) {
        if let Some(hook) = &self.hook {
            hook.obs.reads_done(timer);
        }
    }

    /// Account `n` reads resolving to pinned shard `s`: bump its decayed
    /// access counter (sampled 1-in-64, recorded scaled so the counter
    /// still estimates the true rate — unsampled reads pay no per-shard
    /// RMW), and — when the *live* shard is still cold — enqueue its
    /// hydration (hydrate-on-first-touch). The first touching read wins
    /// the request flag, emits one `HydrationTriggered{FirstTouch}` trace
    /// event and kicks the maintenance signal; the hydrator and the worker
    /// prioritise requested shards over sweep order. The cold-shard check
    /// is never sampled: a first touch must always register.
    #[inline]
    fn touch(&self, s: usize, n: u64) {
        let Some(hook) = &self.hook else { return };
        if hook.obs.access_sampled() {
            self.cut.table.shards()[s].record_accesses(n << ACCESS_SAMPLE_SHIFT);
        }
        // The pinned state's coldness is a cheap pre-filter; re-check the
        // live shard so a since-hydrated (or re-sharded) one is never
        // re-requested.
        if self.cut.states[s].snapshot().is_cold() {
            let shard = &self.cut.table.shards()[s];
            if shard.snapshot().is_cold() && shard.request_hydration() {
                hook.obs.emit(TraceEvent::shard(
                    TraceKind::HydrationTriggered,
                    s,
                    self.cut.version,
                    HydrationReason::FirstTouch.code(),
                ));
                hook.signal.kick();
            }
        }
    }

    /// The store-wide commit version this snapshot is exact at: every write
    /// stamped at or below it is visible, none above it is.
    pub fn version(&self) -> u64 {
        self.cut.version
    }

    /// The topology epoch the snapshot pinned.
    pub fn table(&self) -> &Arc<StoreTable<K>> {
        &self.cut.table
    }

    /// The pinned per-shard states, in router order.
    pub fn states(&self) -> &[Arc<ShardState<K>>] {
        &self.cut.states
    }

    /// Number of shards in the pinned topology.
    pub fn shard_count(&self) -> usize {
        self.cut.states.len()
    }

    /// Merged occurrence count of exactly `k` at this snapshot.
    pub fn count_of(&self, k: K) -> usize {
        let timer = self.reads_start(1);
        let s = self.cut.table.router().shard_of(k);
        let n = self.cut.states[s].count_of(k);
        self.touch(s, 1);
        self.reads_done(timer);
        n
    }

    /// Materialise every key in `lo ..= hi` at this snapshot, in sorted
    /// order — the snapshot scan. Cost is bounded by the result size plus
    /// two probes per touched shard, never a whole-shard merge. The start
    /// positions come from each pinned index's `range`, which the corrected
    /// index answers through its batched kernel (both endpoints travel as
    /// one two-query batch).
    pub fn scan(&self, lo: K, hi: K) -> Vec<K> {
        let timer = self.reads_start(1);
        if lo > hi || self.cut.total == 0 {
            self.reads_done(timer);
            return Vec::new();
        }
        let router = self.cut.table.router();
        let (s_lo, s_hi) = (router.shard_of(lo), router.shard_of(hi));
        let mut out = Vec::new();
        for (s, state) in (s_lo..=s_hi).zip(&self.cut.states[s_lo..=s_hi]) {
            out.extend(state.merged_range_keys(lo, hi));
            self.touch(s, 1);
        }
        self.reads_done(timer);
        out
    }
}

impl<K: Key> RangeIndex<K> for StoreSnapshot<K> {
    fn lower_bound(&self, q: K) -> usize {
        let timer = self.reads_start(1);
        let s = self.cut.table.router().shard_of(q);
        let pos = self.cut.offsets[s] + self.cut.states[s].lower_bound(q);
        self.touch(s, 1);
        self.reads_done(timer);
        pos
    }

    /// Batched lookups grouped by shard — each group runs the shard's
    /// pipelined batch kernel (see [`shift_table::kernel`]) over the pinned
    /// state, so the prefetch-overlapped read path serves store-wide
    /// batches too — resolved entirely against the pinned cut: exact even
    /// while writers race the caller.
    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        let timer = self.reads_start(queries.len() as u64);
        dispatch_batch_by_shard(
            self.cut.table.router(),
            self.cut.states.len(),
            &self.cut.offsets,
            queries,
            out,
            |s, qs, os| {
                self.cut.states[s].lower_bound_batch(qs, os);
                self.touch(s, qs.len() as u64);
            },
        );
        self.reads_done(timer);
    }

    fn range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        let timer = self.reads_start(1);
        if lo > hi || self.cut.total == 0 {
            self.reads_done(timer);
            return 0..0;
        }
        let router = self.cut.table.router();
        let s_lo = router.shard_of(lo);
        let range = match hi.checked_next() {
            Some(h) => {
                let s_hi = router.shard_of(h);
                if s_lo == s_hi {
                    // Both endpoints resolve inside one pinned state: ride
                    // the shard's two-query batch through the kernel.
                    let queries = [lo, h];
                    let mut out = [0usize; 2];
                    self.cut.states[s_lo].lower_bound_batch(&queries, &mut out);
                    self.touch(s_lo, 1);
                    let start = self.cut.offsets[s_lo] + out[0];
                    start..(self.cut.offsets[s_lo] + out[1]).max(start)
                } else {
                    let start = self.cut.offsets[s_lo] + self.cut.states[s_lo].lower_bound(lo);
                    let end = self.cut.offsets[s_hi] + self.cut.states[s_hi].lower_bound(h);
                    self.touch(s_lo, 1);
                    self.touch(s_hi, 1);
                    start..end.max(start)
                }
            }
            None => {
                let start = self.cut.offsets[s_lo] + self.cut.states[s_lo].lower_bound(lo);
                self.touch(s_lo, 1);
                start..self.cut.total
            }
        };
        self.reads_done(timer);
        range
    }

    fn len(&self) -> usize {
        self.cut.total
    }

    fn index_size_bytes(&self) -> usize {
        let routing = self.cut.table.router().fences().len() * K::size_bytes()
            + self.cut.offsets.len() * std::mem::size_of::<usize>();
        routing
            + self
                .cut
                .states
                .iter()
                .map(|s| s.snapshot().index().index_size_bytes() + s.delta().size_bytes())
                .sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "StoreSnapshot"
    }
}

#[cfg(test)]
mod tests {
    use crate::{ShardedStore, StoreConfig, WriteBatch};
    use algo_index::RangeIndex;
    use shift_table::snapshot::SnapshotRead;
    use shift_table::spec::IndexSpec;

    fn store(shards: usize, keys: &[u64]) -> ShardedStore<u64> {
        let config = StoreConfig::new(IndexSpec::parse("im+r1").unwrap())
            .shards(shards)
            .delta_threshold(1_000_000)
            .auto_rebuild(false);
        ShardedStore::build(config, keys).unwrap()
    }

    #[test]
    fn a_snapshot_is_repeatable_across_writes_rebuilds_and_rebalances() {
        let keys: Vec<u64> = (0..8_000u64).map(|i| i * 2).collect();
        let store = store(4, &keys);
        store.insert(5).unwrap();
        let snap = store.snapshot();
        let v = snap.version();
        assert_eq!(v, 1, "one write so far");
        let frozen_lb: Vec<usize> = (0..20).map(|i| snap.lower_bound(i * 997)).collect();
        let frozen_scan = snap.scan(100, 300);
        assert_eq!(snap.len(), 8_001);

        // Churn everything: writes, a full flush (rebuilds), a rebalance.
        for k in 0..2_000u64 {
            store.insert(k * 3 + 1).unwrap();
        }
        store.flush().unwrap();
        store.rebalance().unwrap();
        assert!(store.delete(5).unwrap());

        // The pinned snapshot still answers from its own cut.
        assert_eq!(snap.version(), v);
        assert_eq!(snap.len(), 8_001);
        assert_eq!(
            (0..20)
                .map(|i| snap.lower_bound(i * 997))
                .collect::<Vec<_>>(),
            frozen_lb
        );
        assert_eq!(snap.scan(100, 300), frozen_scan);
        // A fresh snapshot sees the new world, at a higher version.
        let newer = store.snapshot();
        assert!(newer.version() > v);
        assert_eq!(newer.len(), 10_000);
    }

    #[test]
    fn snapshot_reads_agree_with_direct_reads_when_quiescent() {
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 3).collect();
        let store = store(4, &keys);
        for k in [7u64, 7, 9_000, 14_999] {
            store.insert(k).unwrap();
        }
        assert!(store.delete(9_000).unwrap());
        let snap = store.snapshot();
        let probes: Vec<u64> = (0..200).map(|i| i * 83).collect();
        for &q in &probes {
            assert_eq!(snap.lower_bound(q), store.lower_bound(q), "q={q}");
            assert_eq!(snap.count_of(q), store.count_of(q), "count {q}");
        }
        assert_eq!(
            snap.lower_bound_many(&probes),
            store.lower_bound_many(&probes)
        );
        assert_eq!(snap.range(100, 2_000), store.range(100, 2_000));
        assert_eq!(snap.range(3, 2), 0..0);
        assert_eq!(snap.len(), store.len());
        assert!(snap.index_size_bytes() > 0);
        assert_eq!(snap.name(), "StoreSnapshot");
        assert_eq!(snap.shard_count(), snap.states().len());
        assert_eq!(snap.table().shards().len(), snap.shard_count());
    }

    #[test]
    fn scan_materialises_exactly_the_range() {
        let keys = vec![1u64, 4, 4, 9, 12, 12, 12, 30];
        let empty = store(2, &[]);
        let store = store(2, &keys);
        store.insert(4).unwrap();
        store.insert(13).unwrap();
        assert!(store.delete(12).unwrap());
        let snap = store.snapshot();
        assert_eq!(snap.scan(4, 12), vec![4, 4, 4, 9, 12, 12]);
        assert_eq!(snap.scan(0, u64::MAX), vec![1, 4, 4, 4, 9, 12, 12, 13, 30]);
        assert_eq!(snap.scan(5, 8), Vec::<u64>::new());
        assert_eq!(snap.scan(9, 3), Vec::<u64>::new(), "inverted range");
        // Scan agrees with the positional range on the same snapshot.
        assert_eq!(snap.scan(4, 12).len(), snap.range(4, 12).len());
        // The empty store scans empty.
        assert_eq!(empty.snapshot().scan(0, u64::MAX), Vec::<u64>::new());
    }

    #[test]
    fn write_batches_apply_atomically_in_staging_order() {
        let keys: Vec<u64> = (0..4_000u64).collect();
        let store = store(4, &keys);
        let before = store.snapshot();

        let mut batch = WriteBatch::new();
        batch.insert(10_000).delete(10_000).insert(5).delete(3_999);
        batch.delete(77_777); // absent: a logged no-op
        let receipt = store.apply(&batch).unwrap();
        assert_eq!(receipt.inserted, 2);
        assert_eq!(receipt.deleted, 2, "the absent delete is a no-op");
        assert!(receipt.commit_version > before.version());

        let after = store.snapshot();
        assert_eq!(after.len(), 4_000, "net zero: +2 −2");
        assert_eq!(after.count_of(10_000), 0, "in-batch delete saw the insert");
        assert_eq!(after.count_of(5), 2);
        assert_eq!(after.count_of(3_999), 0);
        // The pre-batch snapshot is untouched.
        assert_eq!(before.count_of(5), 1);
        assert_eq!(before.len(), 4_000);

        // Empty batches assign no version and write nothing.
        let receipt = store.apply(&WriteBatch::new()).unwrap();
        assert_eq!(receipt, crate::BatchReceipt::default());
        assert_eq!(store.snapshot().version(), after.version());
    }

    #[test]
    fn snapshot_read_trait_is_usable_generically() {
        fn oldest_version<K: sosd_data::key::Key, S: SnapshotRead<K>>(s: &S) -> usize {
            s.snapshot().len()
        }
        let keys: Vec<u64> = (0..100u64).collect();
        let store = store(2, &keys);
        assert_eq!(oldest_version(&store), 100);
        // The view drops into RangeIndex-generic harnesses.
        let view: Box<dyn RangeIndex<u64>> = Box::new(SnapshotRead::snapshot(&store));
        assert_eq!(view.lower_bound(50), 50);
    }
}
