//! The v2 snapshot builder: key column in, block-structured file out.
//!
//! The builder slices the merged key column into blocks of
//! `block_keys` keys (the [`crate::DurabilityConfig::snapshot_block_keys`]
//! knob), encodes each under its own CRC32, records an index entry per
//! block, and closes the file with the checksummed index and footer — see
//! the [`super`] module docs for the byte layout. The whole image is
//! assembled in memory and written with one `write_all` + `fsync`, exactly
//! like the v1 writer: the manifest must never reference a snapshot that
//! could still be lost.

use super::block::{encode_block, BlockMeta};
use super::{FOOTER_LEN, FORMAT_VERSION, MAGIC};
use crate::persist::crc32;
use sosd_data::key::Key;
use std::io::Write;
use std::path::Path;

/// Write a v2 snapshot of `keys` (consistent with store version `applied`)
/// to `path` in blocks of `block_keys` keys, fsyncing before returning.
/// Returns the bytes written.
pub(crate) fn write_snapshot<K: Key>(
    path: &Path,
    applied: u64,
    keys: &[K],
    block_keys: usize,
) -> std::io::Result<u64> {
    let block_keys = block_keys.max(1);
    let mut out = Vec::with_capacity(
        MAGIC.len() + keys.len() * 8 + (keys.len() / block_keys + 2) * 64 + FOOTER_LEN,
    );
    out.extend_from_slice(&MAGIC);

    let mut metas: Vec<BlockMeta> = Vec::with_capacity(keys.len().div_ceil(block_keys));
    let mut widened: Vec<u64> = Vec::with_capacity(block_keys.min(keys.len()));
    for chunk in keys.chunks(block_keys) {
        widened.clear();
        widened.extend(chunk.iter().map(|k| k.to_u64()));
        let offset = out.len() as u64;
        encode_block(&widened, &mut out);
        metas.push(BlockMeta {
            first_key: widened[0],
            offset,
            count: chunk.len() as u32,
        });
    }

    let index_offset = out.len() as u64;
    let index_at = out.len();
    for meta in &metas {
        meta.encode_entry(&mut out);
    }
    let index_crc = crc32(&out[index_at..]);

    let footer_at = out.len();
    out.extend_from_slice(&applied.to_le_bytes());
    out.extend_from_slice(&K::BITS.to_le_bytes());
    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    out.extend_from_slice(&(metas.len() as u32).to_le_bytes());
    out.extend_from_slice(&index_offset.to_le_bytes());
    out.extend_from_slice(&index_crc.to_le_bytes());
    let footer_crc = crc32(&out[footer_at..]);
    out.extend_from_slice(&footer_crc.to_le_bytes());
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&MAGIC);
    debug_assert_eq!(out.len() - footer_at, FOOTER_LEN);

    let mut file = std::fs::File::create(path)?;
    file.write_all(&out)?;
    file.sync_all()?;
    Ok(out.len() as u64)
}
