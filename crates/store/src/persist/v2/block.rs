//! Byte-level helpers shared by the v2 builder and reader: block headers,
//! index entries, and binary search over a raw (still-encoded) key block.
//!
//! Every helper works on little-endian `u64` key bytes in place — the
//! reader never materialises a block to answer a point query, which is the
//! property that keeps cold reads allocation-free.

use super::{BLOCK_HEADER_LEN, INDEX_ENTRY_LEN};
use crate::persist::crc32;

/// One parsed block-index entry: where a block lives and what it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// The block's first key, widened to `u64` (duplicated from the block
    /// body so routing a query never touches block bytes).
    pub first_key: u64,
    /// Absolute file offset of the block header.
    pub offset: u64,
    /// Number of keys in the block (always `> 0`; empty files have no
    /// blocks at all).
    pub count: u32,
}

impl BlockMeta {
    /// Total encoded length of the block: header plus key bytes.
    pub fn encoded_len(&self) -> usize {
        BLOCK_HEADER_LEN + self.count as usize * 8
    }

    /// Absolute file offset of the block's first key byte.
    pub fn data_offset(&self) -> usize {
        self.offset as usize + BLOCK_HEADER_LEN
    }

    /// Serialise the index entry.
    pub fn encode_entry(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.first_key.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
    }

    /// Parse one index entry from exactly [`INDEX_ENTRY_LEN`] bytes.
    pub fn decode_entry(bytes: &[u8]) -> Self {
        debug_assert_eq!(bytes.len(), INDEX_ENTRY_LEN);
        Self {
            // lint: allow(panic) entry length asserted above; fixed-width slices cannot fail try_into
            first_key: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
            offset: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
            count: u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")),
        }
    }
}

/// Append one encoded block (`crc │ count │ keys`) for `keys` (already
/// widened to `u64`) to `out`, returning the header's absolute offset given
/// that `out` will land at file offset 0.
pub fn encode_block(keys: &[u64], out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    for k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
    let crc = crc32(&out[header_at + 4..]);
    out[header_at..header_at + 4].copy_from_slice(&crc.to_le_bytes());
}

/// The raw key `u64` at index `i` of a block's key bytes.
pub fn key_u64(data: &[u8], i: usize) -> u64 {
    // lint: allow(panic) an 8-byte slice by construction; try_into cannot fail
    u64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().expect("8 bytes"))
}

/// `partition_point(|k| k < q)` over a block's raw key bytes — the number of
/// keys in the block strictly below `q`.
pub fn block_lower_bound(data: &[u8], count: usize, q: u64) -> usize {
    let (mut lo, mut hi) = (0usize, count);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if key_u64(data, mid) < q {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// CRC32 of a block's checksummed region (count field + keys), given the
/// full file bytes and the block's header offset.
pub fn block_crc(file: &[u8], meta: &BlockMeta) -> u32 {
    let start = meta.offset as usize + 4;
    crc32(&file[start..meta.offset as usize + meta.encoded_len()])
}

/// The stored CRC of a block header.
pub fn stored_crc(file: &[u8], meta: &BlockMeta) -> u32 {
    let at = meta.offset as usize;
    // lint: allow(panic) a 4-byte slice by construction; try_into cannot fail
    u32::from_le_bytes(file[at..at + 4].try_into().expect("4 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_search_matches_partition_point_on_raw_bytes() {
        let keys: Vec<u64> = vec![2, 2, 5, 9, 9, 9, 14];
        let mut out = Vec::new();
        encode_block(&keys, &mut out);
        let meta = BlockMeta {
            first_key: 2,
            offset: 0,
            count: keys.len() as u32,
        };
        assert_eq!(out.len(), meta.encoded_len());
        assert_eq!(block_crc(&out, &meta), stored_crc(&out, &meta));
        let data = &out[meta.data_offset()..];
        for q in 0..20u64 {
            assert_eq!(
                block_lower_bound(data, keys.len(), q),
                keys.partition_point(|&k| k < q),
                "q={q}"
            );
        }
        assert_eq!(key_u64(data, 3), 9);

        let mut entry = Vec::new();
        meta.encode_entry(&mut entry);
        assert_eq!(BlockMeta::decode_entry(&entry), meta);
    }
}
