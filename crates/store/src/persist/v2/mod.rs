//! Snapshot format v2: block-structured shard snapshots.
//!
//! The v1 format ([`crate::persist::snapshot`]) is one monolithic body
//! under one checksum: a reader must load, checksum and decode the whole
//! file before it can answer a single query, and a single flipped byte is
//! indistinguishable from total loss. Format v2 splits the key column into
//! fixed-size **blocks**, each under its own CRC32, with a trailing **block
//! index** (first key + offset + count per block) and a versioned
//! **footer** — so a reader can locate and binary-search one block without
//! decoding the rest of the file, which is what makes cold-mounted shards
//! (first reads before any model retrains) possible.
//!
//! ## On-disk layout
//!
//! ```text
//! ┌──────────────┬─────────┬─────────┬───┬─────────────┬──────────────┐
//! │ magic (8 B)  │ block 0 │ block 1 │ … │ block index │ footer (52 B)│
//! │ "SSTSNAP2"   │         │         │   │             │              │
//! └──────────────┴─────────┴─────────┴───┴─────────────┴──────────────┘
//!
//! block      := crc: u32 LE │ count: u32 LE │ keys: count × u64 LE
//!               (crc covers the count field and the keys)
//!
//! index      := block_count × entry, entry (20 B) :=
//!               first_key: u64 LE │ offset: u64 LE │ count: u32 LE
//!               (offset is the absolute file offset of the block header)
//!
//! footer     := applied: u64 LE      ── store version the file is exact at
//!             │ key_bits: u32 LE     ── logical key width, validated on load
//!             │ total: u64 LE        ── key count across all blocks
//!             │ block_count: u32 LE
//!             │ index_offset: u64 LE ── absolute offset of the index region
//!             │ index_crc: u32 LE    ── CRC32 of the index region
//!             │ footer_crc: u32 LE   ── CRC32 of the 36 bytes above
//!             │ version: u32 LE = 2
//!             │ magic (8 B) "SSTSNAP2"
//! ```
//!
//! Keys are written as `u64` LE regardless of the store's key width
//! (exactly like v1), and an empty shard is a valid file of magic + footer
//! with zero blocks. The trained model is still *not* persisted — a mounted
//! file serves reads straight off the block index, and hydration retrains
//! the model from the decoded keys and the manifest's spec string.
//!
//! ## Validation model
//!
//! [`ColdBase::mount`] validates the **entire file structurally up front**:
//! both magics, the footer and index checksums, key width, block
//! contiguity (every byte between the magic and the index is covered by
//! exactly one block), per-block checksums, index first-keys against block
//! contents, and global key sortedness — one sequential sweep, no
//! per-key allocation, no model training. Corruption anywhere therefore
//! surfaces as a typed [`StoreError::Corrupt`](crate::StoreError::Corrupt)
//! naming the file *at mount time* (i.e. at `open`, confined to the one
//! shard), and every cold read afterwards is infallible.
//!
//! `write_snapshot` is the builder ([`builder`]); [`ColdBase`] /
//! [`ColdBlockIndex`] are the mounted reader ([`reader`]); [`block`] holds
//! the byte-level helpers both share.

pub mod block;
pub mod builder;
pub mod reader;

pub(crate) use builder::write_snapshot;
pub use reader::{read_snapshot_v2, ColdBase, ColdBlockIndex};

/// v2 snapshot file magic — leads the file and closes the footer.
pub const MAGIC: [u8; 8] = *b"SSTSNAP2";

/// Format version recorded in the footer.
pub const FORMAT_VERSION: u32 = 2;

/// Bytes of a block header (`crc: u32 │ count: u32`).
pub const BLOCK_HEADER_LEN: usize = 8;

/// Bytes of one block-index entry (`first_key: u64 │ offset: u64 │ count: u32`).
pub const INDEX_ENTRY_LEN: usize = 20;

/// Bytes of the footer (`applied │ key_bits │ total │ block_count │
/// index_offset │ index_crc │ footer_crc │ version │ magic`).
pub const FOOTER_LEN: usize = 52;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shift-store-snap2-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn v2_round_trips_both_key_widths_and_block_boundaries() {
        let dir = tmp("roundtrip");
        // Counts that are under, exactly at, and just past block multiples.
        for (i, n) in [0usize, 1, 63, 64, 65, 128, 1000].into_iter().enumerate() {
            let path = dir.join(format!("rt-{n}.snap"));
            let keys: Vec<u64> = (0..n as u64).map(|k| k * k).collect();
            let bytes = write_snapshot(&path, 7 + i as u64, &keys, 64).unwrap();
            assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
            let (applied, loaded): (u64, Vec<u64>) = read_snapshot_v2(&path).unwrap();
            assert_eq!(applied, 7 + i as u64);
            assert_eq!(loaded, keys, "n={n}");
        }
        // u32 keys round-trip through the widened representation.
        let p32 = dir.join("rt-u32.snap");
        let keys32: Vec<u32> = vec![1, 1, 2, 900, u32::MAX];
        write_snapshot(&p32, 3, &keys32, 2).unwrap();
        let (applied, loaded): (u64, Vec<u32>) = read_snapshot_v2(&p32).unwrap();
        assert_eq!((applied, loaded), (3, keys32));
        // Width mismatch is rejected, not silently narrowed.
        assert!(matches!(
            read_snapshot_v2::<u64>(&p32),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_lower_bound_matches_the_sorted_vec_oracle() {
        let dir = tmp("oracle");
        // Duplicate runs deliberately spanning block boundaries.
        let mut keys: Vec<u64> = Vec::new();
        for k in 0..200u64 {
            for _ in 0..(k % 5 + 1) {
                keys.push(k * 3);
            }
        }
        let path = dir.join("oracle.snap");
        write_snapshot(&path, 1, &keys, 16).unwrap();
        let base: ColdBase<u64> = ColdBase::mount(&path).unwrap();
        assert_eq!(base.len(), keys.len());
        assert_eq!(base.applied(), 1);
        for q in 0..620u64 {
            assert_eq!(
                base.lower_bound(q),
                keys.partition_point(|&k| k < q),
                "q={q}"
            );
        }
        assert_eq!(base.lower_bound(u64::MAX), keys.len());
        assert_eq!(base.count_of(6), 3);
        assert_eq!(base.count_of(7), 0);
        assert_eq!(base.decode_all(), keys);
        assert_eq!(base.keys_in(0..keys.len()), keys);
        assert_eq!(base.keys_in(10..40), keys[10..40].to_vec());
        assert_eq!(base.keys_in(17..17), Vec::<u64>::new());
        assert!(base.size_bytes() > keys.len() * 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_region_rejects_a_bit_flip() {
        let dir = tmp("flip");
        let path = dir.join("flip.snap");
        let keys: Vec<u64> = (0..256u64).collect();
        write_snapshot(&path, 5, &keys, 32).unwrap();
        let good = std::fs::read(&path).unwrap();
        let index_off = good.len() - FOOTER_LEN - (256 / 32) * INDEX_ENTRY_LEN;
        let probes = [
            (0usize, "head magic"),
            (8, "block 0 crc"),
            (12, "block 0 count"),
            (40, "block 0 keys"),
            (index_off - 16, "last block keys"),
            (index_off + 3, "index entry"),
            (good.len() - FOOTER_LEN + 2, "footer applied"),
            (good.len() - 20, "footer crc region"),
            (good.len() - 3, "tail magic"),
        ];
        for (at, what) in probes {
            let mut bent = good.clone();
            bent[at] ^= 0x10;
            std::fs::write(&path, &bent).unwrap();
            let err = ColdBase::<u64>::mount(&path).unwrap_err();
            assert!(matches!(err, StoreError::Corrupt { .. }), "{what}: {err}");
        }
        // Pristine bytes still mount after the damage loop.
        std::fs::write(&path, &good).unwrap();
        assert!(ColdBase::<u64>::mount(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_anywhere_is_corrupt_and_unsorted_keys_are_rejected() {
        let dir = tmp("trunc");
        let path = dir.join("trunc.snap");
        let keys: Vec<u64> = (0..300u64).map(|k| k * 2).collect();
        write_snapshot(&path, 2, &keys, 64).unwrap();
        let good = std::fs::read(&path).unwrap();
        let index_len = (300u64.div_ceil(64) as usize) * INDEX_ENTRY_LEN;
        for (len, what) in [
            (3usize, "mid head magic"),
            (200, "mid block"),
            (good.len() - FOOTER_LEN - index_len / 2, "mid index"),
            (good.len() - FOOTER_LEN / 2, "mid footer"),
            (good.len() - 1, "last byte"),
        ] {
            std::fs::write(&path, &good[..len]).unwrap();
            let err = ColdBase::<u64>::mount(&path).unwrap_err();
            assert!(matches!(err, StoreError::Corrupt { .. }), "{what}: {err}");
        }

        // An unsorted column cannot be produced by the builder; forge one by
        // patching keys inside a block and fixing every checksum on the way.
        let mut forged = good.clone();
        forged[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // first key of block 0
        let body_end = 8 + BLOCK_HEADER_LEN + 64 * 8;
        let crc = crate::persist::crc32(&forged[12..body_end]);
        forged[8..12].copy_from_slice(&crc.to_le_bytes());
        let index_off = good.len() - FOOTER_LEN - index_len;
        forged[index_off..index_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let index_crc = crate::persist::crc32(&forged[index_off..index_off + index_len]);
        let footer_off = good.len() - FOOTER_LEN;
        forged[footer_off + 32..footer_off + 36].copy_from_slice(&index_crc.to_le_bytes());
        let footer_crc = crate::persist::crc32(&forged[footer_off..footer_off + 36]);
        forged[footer_off + 36..footer_off + 40].copy_from_slice(&footer_crc.to_le_bytes());
        std::fs::write(&path, &forged).unwrap();
        let err = ColdBase::<u64>::mount(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "unsorted: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
