//! The v2 snapshot reader: mounted cold bases and the cold block index.
//!
//! [`ColdBase::mount`] loads a v2 file, validates it **structurally in
//! full** (magics, footer/index/block checksums, block contiguity, key
//! sortedness — see the [`super`] module docs), and then serves point
//! queries straight off the block index: route by first key, binary-search
//! the raw bytes of one block. No key is decoded into a `Vec`, no model is
//! trained — which is exactly what a cold-mounted shard needs to answer
//! `lower_bound`/`range` milliseconds after `open()`.
//!
//! [`ColdBlockIndex`] adapts a shared [`ColdBase`] to the
//! [`RangeIndex`] trait so a cold shard can publish it where a trained
//! model normally sits; hydration later decodes the keys
//! ([`ColdBase::decode_all`]), retrains, and swaps the shard hot.

use super::block::{block_crc, block_lower_bound, key_u64, stored_crc, BlockMeta};
use super::{FOOTER_LEN, FORMAT_VERSION, INDEX_ENTRY_LEN, MAGIC};
use crate::error::StoreError;
use crate::persist::crc32;
use algo_index::search::RangeIndex;
use sosd_data::key::Key;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

fn corrupt(path: &Path, reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// A mounted (still encoded) v2 shard snapshot: the raw file bytes plus the
/// parsed block index. Fully validated at mount — every read afterwards is
/// infallible. Cheap to share behind `Arc`; queries take no lock.
pub struct ColdBase<K: Key> {
    bytes: Vec<u8>,
    applied: u64,
    total: usize,
    /// Per-block routing keys (decoded once at mount).
    first_keys: Vec<K>,
    blocks: Vec<BlockMeta>,
    /// `cum[i]` = keys in blocks `< i`; `cum[block_count]` = `total`.
    cum: Vec<usize>,
}

impl<K: Key> std::fmt::Debug for ColdBase<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdBase")
            .field("applied", &self.applied)
            .field("total", &self.total)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl<K: Key> ColdBase<K> {
    /// Mount the v2 snapshot at `path`: read it and validate every
    /// structural invariant (see the module docs).
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] naming `path` on any damage — bad magic or
    /// version, checksum mismatch anywhere, key-width mismatch,
    /// non-contiguous blocks, or unsorted keys. [`StoreError::Io`] if the
    /// file cannot be read at all.
    pub fn mount(path: &Path) -> Result<Self, StoreError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(path, bytes)
    }

    /// [`ColdBase::mount`] over bytes already in memory (`path` is only
    /// used to label errors).
    pub(crate) fn from_bytes(path: &Path, bytes: Vec<u8>) -> Result<Self, StoreError> {
        if bytes.len() < MAGIC.len() + FOOTER_LEN {
            return Err(corrupt(path, "truncated: shorter than magic + footer"));
        }
        if bytes[..8] != MAGIC {
            return Err(corrupt(path, "bad leading magic"));
        }
        let footer = &bytes[bytes.len() - FOOTER_LEN..];
        if footer[44..52] != MAGIC {
            return Err(corrupt(path, "bad trailing magic (torn footer)"));
        }
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let version = u32::from_le_bytes(footer[40..44].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(corrupt(
                path,
                format!("unsupported format version {version}"),
            ));
        }
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let footer_crc = u32::from_le_bytes(footer[36..40].try_into().expect("4 bytes"));
        if crc32(&footer[..36]) != footer_crc {
            return Err(corrupt(path, "footer checksum mismatch"));
        }
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let applied = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let key_bits = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes"));
        if key_bits != K::BITS {
            return Err(corrupt(
                path,
                format!(
                    "key width mismatch: snapshot {key_bits} bits, store {} bits",
                    K::BITS
                ),
            ));
        }
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let total = u64::from_le_bytes(footer[12..20].try_into().expect("8 bytes"));
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let block_count = u32::from_le_bytes(footer[20..24].try_into().expect("4 bytes")) as usize;
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let index_offset = u64::from_le_bytes(footer[24..32].try_into().expect("8 bytes")) as usize;
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let index_crc = u32::from_le_bytes(footer[32..36].try_into().expect("4 bytes"));

        let index_end = bytes.len() - FOOTER_LEN;
        let index_len = block_count
            .checked_mul(INDEX_ENTRY_LEN)
            .filter(|&len| {
                index_offset >= MAGIC.len() && index_offset.checked_add(len) == Some(index_end)
            })
            .ok_or_else(|| corrupt(path, "block index does not fit between blocks and footer"))?;
        let index = &bytes[index_offset..index_offset + index_len];
        if crc32(index) != index_crc {
            return Err(corrupt(path, "block index checksum mismatch"));
        }

        let mut blocks = Vec::with_capacity(block_count);
        let mut first_keys = Vec::with_capacity(block_count);
        let mut cum = Vec::with_capacity(block_count + 1);
        let mut expected_offset = MAGIC.len();
        let mut keys_seen = 0usize;
        let mut prev_key: Option<u64> = None;
        for entry in index.chunks_exact(INDEX_ENTRY_LEN) {
            let meta = BlockMeta::decode_entry(entry);
            if meta.count == 0 {
                return Err(corrupt(path, "empty block"));
            }
            if meta.offset as usize != expected_offset {
                return Err(corrupt(path, "blocks are not contiguous"));
            }
            expected_offset += meta.encoded_len();
            if expected_offset > index_offset {
                return Err(corrupt(path, "block overruns the index region"));
            }
            if block_crc(&bytes, &meta) != stored_crc(&bytes, &meta) {
                return Err(corrupt(
                    path,
                    format!("block at offset {} failed its checksum", meta.offset),
                ));
            }
            // One sweep proves global sortedness and that the index entry's
            // routing key matches the block body.
            let data = &bytes[meta.data_offset()..meta.data_offset() + meta.count as usize * 8];
            if key_u64(data, 0) != meta.first_key {
                return Err(corrupt(path, "index first-key disagrees with block body"));
            }
            for i in 0..meta.count as usize {
                let k = key_u64(data, i);
                if prev_key.is_some_and(|p| p > k) {
                    return Err(corrupt(path, "snapshot keys are not sorted"));
                }
                prev_key = Some(k);
            }
            cum.push(keys_seen);
            keys_seen += meta.count as usize;
            first_keys.push(K::from_u64_saturating(meta.first_key));
            blocks.push(meta);
        }
        if expected_offset != index_offset {
            return Err(corrupt(path, "gap between the last block and the index"));
        }
        if keys_seen as u64 != total {
            return Err(corrupt(path, "footer total disagrees with block counts"));
        }
        cum.push(keys_seen);
        Ok(Self {
            bytes,
            applied,
            total: keys_seen,
            first_keys,
            blocks,
            cum,
        })
    }

    /// Store version the snapshot is exact at (every write `<= applied`
    /// routed to the shard is contained, none above).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of keys in the snapshot.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resident size: the mounted file bytes plus the decoded index.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
            + self.blocks.len() * (std::mem::size_of::<BlockMeta>() + K::size_bytes())
            + self.cum.len() * std::mem::size_of::<usize>()
    }

    /// The raw key bytes of block `b`.
    fn block_data(&self, b: usize) -> &[u8] {
        let meta = &self.blocks[b];
        &self.bytes[meta.data_offset()..meta.data_offset() + meta.count as usize * 8]
    }

    /// Position of the first key `>= q` — route by first key, then
    /// binary-search the raw bytes of exactly one block.
    pub fn lower_bound(&self, q: K) -> usize {
        let q = q.to_u64();
        // First block whose routing key is >= q; only its predecessor can
        // contain keys on both sides of q.
        let b = self.first_keys.partition_point(|fk| fk.to_u64() < q);
        if b == 0 {
            return 0;
        }
        let meta = &self.blocks[b - 1];
        self.cum[b - 1] + block_lower_bound(self.block_data(b - 1), meta.count as usize, q)
    }

    /// Batched lower bounds with the same stage split as the core batch
    /// kernel ([`shift_table::kernel`]): per block of queries, **route**
    /// them all over the (cache-resident) first-key array, then **touch**
    /// the midpoint byte of every routed snapshot block — bounds-checked
    /// reads folded into a [`std::hint::black_box`] sink, so the raw block
    /// bytes start travelling toward the cache as independent overlapping
    /// loads — and only then **resolve** the per-block binary searches.
    pub fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        debug_assert_eq!(queries.len(), out.len());
        if self.total == 0 {
            out.fill(0);
            return;
        }
        const BLOCK: usize = shift_table::kernel::DEFAULT_BATCH_BLOCK;
        let mut routed = [0usize; BLOCK];
        let mut touched = 0u64;
        for (qs, os) in queries.chunks(BLOCK).zip(out.chunks_mut(BLOCK)) {
            let routed = &mut routed[..qs.len()];
            // Stage 1: route every query by its block's first key.
            for (r, &q) in routed.iter_mut().zip(qs.iter()) {
                *r = self
                    .first_keys
                    .partition_point(|fk| fk.to_u64() < q.to_u64());
            }
            // Stage 2: touch each routed block's midpoint entry.
            for &r in routed.iter() {
                if r > 0 {
                    let meta = &self.blocks[r - 1];
                    touched ^= key_u64(self.block_data(r - 1), meta.count as usize / 2);
                }
            }
            // Stage 3: resolve each query inside its single block.
            for ((o, &q), &r) in os.iter_mut().zip(qs.iter()).zip(routed.iter()) {
                *o = if r == 0 {
                    0
                } else {
                    let meta = &self.blocks[r - 1];
                    self.cum[r - 1]
                        + block_lower_bound(self.block_data(r - 1), meta.count as usize, q.to_u64())
                };
            }
        }
        std::hint::black_box(touched);
    }

    /// Occurrence count of exactly `k`.
    pub fn count_of(&self, k: K) -> usize {
        let start = self.lower_bound(k);
        let end = match k.checked_next() {
            Some(n) => self.lower_bound(n),
            None => self.total,
        };
        end - start
    }

    /// Decode the full key column (hydration's input).
    pub fn decode_all(&self) -> Vec<K> {
        self.keys_in(0..self.total)
    }

    /// Decode the keys at global positions `range`.
    pub fn keys_in(&self, range: std::ops::Range<usize>) -> Vec<K> {
        debug_assert!(range.start <= range.end && range.end <= self.total);
        let mut out = Vec::with_capacity(range.len());
        if range.is_empty() {
            return out;
        }
        // First block whose cumulative start exceeds range.start, minus one.
        let mut b = self.cum.partition_point(|&c| c <= range.start) - 1;
        let mut pos = range.start;
        while pos < range.end {
            let data = self.block_data(b);
            let lo = pos - self.cum[b];
            let hi = (range.end - self.cum[b]).min(self.blocks[b].count as usize);
            for i in lo..hi {
                out.push(K::from_u64_saturating(key_u64(data, i)));
            }
            pos = self.cum[b] + hi;
            b += 1;
        }
        out
    }
}

/// [`RangeIndex`] adapter over a shared [`ColdBase`]: what a cold shard
/// publishes in place of a trained model. Routing costs one binary search
/// over the per-block first keys plus one over a single block's raw bytes —
/// no decode, no training. Batched probes override the trait default and
/// run [`ColdBase::lower_bound_batch`]'s route/touch/resolve stage split.
#[derive(Debug)]
pub struct ColdBlockIndex<K: Key>(pub Arc<ColdBase<K>>);

impl<K: Key> RangeIndex<K> for ColdBlockIndex<K> {
    fn lower_bound(&self, q: K) -> usize {
        self.0.lower_bound(q)
    }

    fn lower_bound_batch(&self, queries: &[K], out: &mut [usize]) {
        // lint: allow(panic) API contract: unequal lengths would silently write positions to wrong slots
        assert_eq!(
            queries.len(),
            out.len(),
            "lower_bound_batch requires queries and out of equal length"
        );
        self.0.lower_bound_batch(queries, out);
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn index_size_bytes(&self) -> usize {
        // The auxiliary structure: block index + routing keys (the encoded
        // key blocks play the role of the key column itself).
        self.0.blocks.len() * (INDEX_ENTRY_LEN + K::size_bytes())
            + self.0.cum.len() * std::mem::size_of::<usize>()
    }

    fn name(&self) -> &'static str {
        "cold-v2"
    }
}

/// Eagerly load a v2 snapshot: mount (full validation) and decode every
/// key. Returns `(applied_version, keys)`, mirroring the v1 reader.
///
/// # Errors
/// Exactly [`ColdBase::mount`]'s.
pub fn read_snapshot_v2<K: Key>(path: &Path) -> Result<(u64, Vec<K>), StoreError> {
    let base = ColdBase::<K>::mount(path)?;
    Ok((base.applied(), base.decode_all()))
}

/// [`read_snapshot_v2`] over bytes already in memory.
pub(crate) fn read_snapshot_v2_bytes<K: Key>(
    path: &Path,
    bytes: Vec<u8>,
) -> Result<(u64, Vec<K>), StoreError> {
    let base = ColdBase::<K>::from_bytes(path, bytes)?;
    Ok((base.applied(), base.decode_all()))
}
