//! The write-ahead log: length-prefixed, CRC32-checksummed record segments,
//! plus the group committer that coalesces concurrent `fdatasync`s.
//!
//! ## On-disk format
//!
//! A WAL is a sequence of *segment* files named `wal-<start>.log`, where
//! `<start>` is the zero-padded store version of the segment's first
//! record. Versions are assigned contiguously — one version per record,
//! whether the record carries one operation or a whole batch — so segment
//! `i` holds exactly the versions `[start_i, start_{i+1})`. A fresh segment
//! is started on every store open and on every checkpoint (rotation), and a
//! segment is deleted once a checkpoint covers all of its records.
//!
//! Each record is one frame. A **v1 (single-op)** frame:
//!
//! ```text
//! ┌──────────┬──────────┬───────────────────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload (len = 17 bytes)                  │
//! │  (LE)    │  (LE)    │ version: u64 LE │ op: u8 │ key: u64 LE    │
//! └──────────┴──────────┴───────────────────────────────────────────┘
//! ```
//!
//! A **v2 (multi-op batch)** frame — what [`crate::WriteBatch`] appends —
//! shares the outer framing and is discriminated by the tag byte where a v1
//! frame keeps its op:
//!
//! ```text
//! ┌──────────┬──────────┬────────────────────────────────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload (len = 13 + 9·n bytes)                         │
//! │  (LE)    │  (LE)    │ version: u64 │ tag: u8 = 2 │ n: u32 │ n × (op, key)    │
//! └──────────┴──────────┴────────────────────────────────────────────────────────┘
//! ```
//!
//! `crc` is the CRC32 (IEEE) of the payload. `op` is `0` for an insert,
//! `1` for a delete tombstone; tag `2` marks a batch. Keys are widened to
//! `u64` on disk regardless of the store's key width. Because a batch is
//! one frame under one checksum, it is durable **all-or-nothing**: a crash
//! can never persist a prefix of a batch.
//!
//! A reader stops at the first frame that is short, has an inconsistent
//! length, carries an unknown tag, or fails its checksum: that is the torn
//! tail of a crash, and everything before it is the durable prefix.
//!
//! ## Group commit
//!
//! Under [`SyncPolicy::Always`] every record must be durable before its
//! write is acknowledged — naively one `fdatasync` per record. The
//! crate-internal `GroupCommitter` instead lets concurrently submitted records share
//! syncs: each writer appends its frame (and applies in memory) under the
//! WAL lock, then waits on the committer; one waiter is elected *leader*,
//! syncs the file once — covering every frame appended before the sync —
//! and publishes how far durability reached, releasing every waiter at or
//! below that point. Writers that arrive while the leader is inside
//! `fdatasync` pile up behind the WAL lock and are drained by the *next*
//! leader's single sync, so `w` concurrent writers pay ~2 syncs per wave
//! instead of `w`.

use crate::config::SyncPolicy;
use crate::persist::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

/// Payload bytes of a v1 record: version (8) + op (1) + key (8).
pub const PAYLOAD_LEN: usize = 17;
/// Total frame bytes of a v1 record: len (4) + crc (4) + payload.
pub const FRAME_LEN: usize = 8 + PAYLOAD_LEN;
/// Payload tag byte marking a v2 multi-op batch record.
pub const BATCH_TAG: u8 = 2;
/// Payload bytes of a v2 batch record holding `n` operations.
pub const fn batch_payload_len(n: usize) -> usize {
    8 + 1 + 4 + 9 * n
}

/// The operation a WAL record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// One inserted occurrence of the key.
    Insert,
    /// One deleted occurrence of the key (a no-op if absent at replay).
    Delete,
}

/// One decoded WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The monotonic store version assigned to this write.
    pub version: u64,
    /// Insert or delete.
    pub op: WalOp,
    /// The key, widened to `u64`.
    pub key: u64,
}

impl WalRecord {
    /// Encode the record as one complete frame, on the stack — the
    /// single-op append path runs under the store-wide WAL lock for every
    /// durable write, so it must not allocate.
    fn encode_frame(&self) -> [u8; FRAME_LEN] {
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[..8].copy_from_slice(&self.version.to_le_bytes());
        payload[8] = op_byte(self.op);
        payload[9..17].copy_from_slice(&self.key.to_le_bytes());
        let mut frame = [0u8; FRAME_LEN];
        frame[..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        frame[8..].copy_from_slice(&payload);
        frame
    }
}

/// One decoded multi-op (v2) WAL record: every operation of one applied
/// [`crate::WriteBatch`], under a single version and a single checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatchRecord {
    /// The monotonic store version assigned to the whole batch.
    pub version: u64,
    /// The batch's operations, in application order, keys widened to `u64`.
    pub ops: Vec<(WalOp, u64)>,
}

/// Encode a batch payload from borrowed ops (the append path passes the
/// caller's staged slice straight through — no intermediate record value).
fn encode_batch_payload(version: u64, ops: &[(WalOp, u64)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(batch_payload_len(ops.len()));
    payload.extend_from_slice(&version.to_le_bytes());
    payload.push(BATCH_TAG);
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for &(op, key) in ops {
        payload.push(op_byte(op));
        payload.extend_from_slice(&key.to_le_bytes());
    }
    payload
}

/// One decoded WAL entry: a single-op record or a multi-op batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// A v1 single-operation record.
    Op(WalRecord),
    /// A v2 multi-operation batch record.
    Batch(WalBatchRecord),
}

impl WalEntry {
    /// The store version the entry carries.
    pub fn version(&self) -> u64 {
        match self {
            Self::Op(r) => r.version,
            Self::Batch(b) => b.version,
        }
    }

    /// Number of logical operations the entry carries.
    pub fn op_count(&self) -> usize {
        match self {
            Self::Op(_) => 1,
            Self::Batch(b) => b.ops.len(),
        }
    }
}

fn op_byte(op: WalOp) -> u8 {
    match op {
        WalOp::Insert => 0,
        WalOp::Delete => 1,
    }
}

fn byte_op(b: u8) -> Option<WalOp> {
    match b {
        0 => Some(WalOp::Insert),
        1 => Some(WalOp::Delete),
        _ => None,
    }
}

/// Frame a payload: length prefix, CRC32, body.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decode one length- and CRC-validated payload into an entry. `None`
/// means an unknown shape (treated as a torn tail by the reader).
fn decode_payload(payload: &[u8]) -> Option<WalEntry> {
    if payload.len() < 9 {
        return None;
    }
    // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
    let version = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    match payload[8] {
        BATCH_TAG => {
            if payload.len() < batch_payload_len(0) {
                return None;
            }
            // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
            let count = u32::from_le_bytes(payload[9..13].try_into().expect("4 bytes")) as usize;
            if count == 0 || payload.len() != batch_payload_len(count) {
                return None;
            }
            let mut ops = Vec::with_capacity(count);
            for chunk in payload[13..].chunks_exact(9) {
                let op = byte_op(chunk[0])?;
                ops.push((
                    op,
                    // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
                    u64::from_le_bytes(chunk[1..9].try_into().expect("8 bytes")),
                ));
            }
            Some(WalEntry::Batch(WalBatchRecord { version, ops }))
        }
        b if payload.len() == PAYLOAD_LEN => Some(WalEntry::Op(WalRecord {
            version,
            op: byte_op(b)?,
            // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
            key: u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes")),
        })),
        _ => None,
    }
}

/// File name of the segment whose first record carries `start`.
pub fn segment_name(start: u64) -> String {
    format!("wal-{start:020}.log")
}

/// Parse a segment file name back to its start version.
pub fn parse_segment_start(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// The WAL segments of `dir` as `(start_version, path)` pairs, sorted by
/// start version (replay order).
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start) = entry.file_name().to_str().and_then(parse_segment_start) {
            out.push((start, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(start, _)| start);
    Ok(out)
}

/// The decoded contents of one segment scan.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// The validated entries (single-op records and batches), in append
    /// (= version) order.
    pub records: Vec<WalEntry>,
    /// Byte offset of the end of each validated entry — `boundaries[i]` is
    /// where entry `i`'s frame ends, so truncating the file there keeps
    /// exactly the first `i + 1` entries (crash-point tests lean on this).
    pub boundaries: Vec<u64>,
    /// True when trailing bytes after the last validated entry were
    /// discarded (a torn frame, a checksum mismatch, or garbage).
    pub torn_tail: bool,
}

/// Scan a segment file, validating every frame. Never fails on a damaged
/// *tail* — a short frame, a bad length, an unknown tag or a CRC mismatch
/// terminates the scan with `torn_tail` set (recovery invariant 4); only
/// the initial open or read can error.
pub fn read_segment(path: &Path) -> std::io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut scan = SegmentScan::default();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        // lint: allow(panic) slice length is fixed by the bounds check/slicing above; try_into cannot fail
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if bytes.len() - at - 8 < len {
            break; // short frame: the torn tail of a crash
        }
        let payload = &bytes[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(entry) = decode_payload(payload) else {
            break; // unknown record shape: treat as torn
        };
        at += 8 + len;
        scan.records.push(entry);
        scan.boundaries.push(at as u64);
    }
    scan.torn_tail = at < bytes.len();
    Ok(scan)
}

/// Appender over one open segment, enforcing the sync policy.
///
/// A *failed* append is rolled back: the segment is truncated to the last
/// accepted frame, so a write the caller saw fail can never be durable
/// (and a partial frame can never strand later acknowledged frames behind
/// garbage — the reader stops at the first bad frame). If even the
/// rollback fails the writer poisons itself and refuses further appends.
pub(crate) struct WalWriter {
    file: File,
    policy: SyncPolicy,
    /// When set, [`SyncPolicy::Always`] appends do **not** sync inline —
    /// the [`GroupCommitter`] owns the sync instead (after the in-memory
    /// apply, outside the append), so concurrent writers can share it.
    defer_sync: bool,
    /// Appends since the last explicit sync (drives [`SyncPolicy::EveryN`]).
    unsynced: u32,
    /// `fdatasync`s issued against this segment (for the group-commit
    /// accounting surfaced by `DurabilityStats::wal_syncs`).
    syncs: u64,
    /// Bytes of accepted frames: every successful append ends here, and a
    /// failed one truncates back to here.
    len: u64,
    /// Set when a failed append could not be rolled back — or a deferred
    /// (group) sync failed: the segment tail is in an unknown state, so no
    /// further record may land after it.
    poisoned: bool,
}

impl WalWriter {
    /// Start the segment whose first record will carry `start` (truncating
    /// any same-named leftover: a collision is only possible when that
    /// leftover holds no validated record, since replay advances the next
    /// version past every record it accepts).
    pub(crate) fn create(dir: &Path, start: u64, policy: SyncPolicy) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(segment_name(start)))?;
        crate::persist::sync_dir(dir);
        Ok(Self {
            file,
            policy,
            defer_sync: false,
            unsynced: 0,
            syncs: 0,
            len: 0,
            poisoned: false,
        })
    }

    /// `fdatasync`s issued against this segment so far.
    pub(crate) fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Hand [`SyncPolicy::Always`] syncs to the group committer (see the
    /// module docs) instead of syncing inline on every append.
    pub(crate) fn defer_sync(&mut self, defer: bool) {
        self.defer_sync = defer;
    }

    /// True once an unrecoverable append/sync failure has been observed.
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Test hook: mark the writer poisoned as a failed sync would, without
    /// injecting a real I/O error.
    pub(crate) fn poison_for_tests(&mut self) {
        self.poisoned = true;
    }

    /// Append one single-op record and apply the sync policy. Returns the
    /// bytes written (for write-amplification accounting). The frame is
    /// encoded on the stack — this path runs once per durable write.
    pub(crate) fn append(&mut self, record: &WalRecord) -> std::io::Result<u64> {
        self.append_frame(&record.encode_frame(), 1)
    }

    /// Append one multi-op batch record and apply the sync policy. The
    /// whole batch is one frame under one checksum — durable
    /// all-or-nothing — but it advances the [`SyncPolicy::EveryN`] counter
    /// by its full operation count, so the documented "lose at most `n − 1`
    /// acknowledged *writes*" bound holds regardless of batching.
    pub(crate) fn append_batch(
        &mut self,
        version: u64,
        ops: &[(WalOp, u64)],
    ) -> std::io::Result<u64> {
        self.append_frame(
            &encode_frame(&encode_batch_payload(version, ops)),
            ops.len().min(u32::MAX as usize) as u32,
        )
    }

    /// Append one encoded frame carrying `ops` logical operations and apply
    /// the sync policy (unless deferred to the group committer).
    ///
    /// On a short write the frame is rolled back (durably — the truncate is
    /// fsynced) before the error is returned, so the caller's view ("this
    /// write did not happen") matches the disk. On an inline *sync* error
    /// the writer additionally poisons itself: once `fdatasync` has failed,
    /// the kernel may drop the dirty pages of earlier acknowledged frames
    /// while clearing the error, so no durability promise about this
    /// segment can be kept any more and continuing to append would silently
    /// widen the loss beyond the documented `n − 1` bound.
    fn append_frame(&mut self, frame: &[u8], ops: u32) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "WAL writer poisoned by an earlier append or sync failure",
            ));
        }
        if let Err(e) = self.file.write_all(frame) {
            if self.rollback().is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.unsynced = self.unsynced.saturating_add(ops);
        let sync_due = match self.policy {
            SyncPolicy::Always => !self.defer_sync,
            SyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            SyncPolicy::Os => false,
        };
        if sync_due {
            if let Err(e) = self.sync() {
                let _ = self.rollback();
                return Err(e);
            }
        }
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Truncate the segment back to the last accepted frame and make the
    /// truncate itself durable (without the fsync, a power loss could
    /// resurrect the rolled-back frame from cached metadata).
    fn rollback(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.sync_data()
    }

    /// Force everything appended so far to stable storage.
    ///
    /// A failed `fdatasync` **poisons the writer**, whichever path issued
    /// it (an inline policy sync, the checkpoint rotation, an explicit
    /// `sync_wal`, or a group-commit leader): the kernel reports a
    /// writeback error once per fd and may drop the dirty pages while
    /// clearing it, so a *later* sync on the same segment could falsely
    /// report lost records as durable. Once poisoned, no further append or
    /// sync is accepted — reopening the store recovers the durable prefix.
    pub(crate) fn sync(&mut self) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "WAL writer poisoned by an earlier append or sync failure",
            ));
        }
        self.syncs += 1;
        if let Err(e) = self.file.sync_data() {
            self.poisoned = true;
            return Err(e);
        }
        self.unsynced = 0;
        Ok(())
    }
}

/// Outcome of one group-commit wait (see [`GroupCommitter::commit`]).
#[derive(Debug)]
pub(crate) enum GroupCommitError {
    /// This waiter's own leader sync failed.
    Sync(std::io::Error),
    /// An earlier sync failure poisoned the log before this record became
    /// durable.
    Poisoned,
}

#[derive(Debug, Default)]
struct GroupState {
    /// Highest ticket (append sequence) proven durable.
    synced: u64,
    /// A leader is currently inside the sync.
    leader: bool,
    /// A sync failed on the **live** segment: no later ticket on it can
    /// ever become durable. Cleared by [`GroupCommitter::reset`] when a
    /// checkpoint rotates the poisoned segment away.
    failed: bool,
    /// Tickets below this belong to a poisoned, rotated-away segment whose
    /// unsynced durability is unknowable — they must still fail even after
    /// `failed` is cleared (unless `synced` already covered them before the
    /// failure, in which case they are genuinely durable).
    invalid_below: u64,
}

/// Coalesces the `fdatasync`s of concurrently committed records under
/// [`SyncPolicy::Always`] (see the module docs): waiters elect one leader
/// per wave, the leader's single sync covers every frame appended before
/// it, and everyone whose ticket the sync reached is released at once.
#[derive(Debug, Default)]
pub(crate) struct GroupCommitter {
    state: Mutex<GroupState>,
    cv: Condvar,
}

impl GroupCommitter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Block until the append identified by `ticket` is durable. `sync` is
    /// the leader duty: flush the log and report the highest ticket the
    /// flush covered (the caller runs it under its WAL lock; this committer
    /// never holds its own state lock across it). `arrivals` is a cheap
    /// monotonic append counter: before paying the sync, the elected
    /// leader yields while it still observes new appends landing (bounded),
    /// so a burst of concurrent writers is drained by one deep wave instead
    /// of several shallow ones — a solo writer sees arrivals stop after one
    /// probe and syncs immediately.
    ///
    /// On a sync failure every waiter whose ticket was not yet covered
    /// gets an error — their records may or may not have reached the disk,
    /// and the caller is expected to poison the writer so the uncertainty
    /// cannot widen.
    pub(crate) fn commit(
        &self,
        ticket: u64,
        arrivals: impl Fn() -> u64,
        mut sync: impl FnMut() -> std::io::Result<u64>,
    ) -> Result<(), GroupCommitError> {
        // lint: allow(panic) group-commit state poisoning means a leader panicked mid-commit; propagate
        let mut st = self.state.lock().expect("group commit state poisoned");
        loop {
            if st.synced >= ticket {
                return Ok(()); // covered by a successful sync: durable
            }
            if st.failed || ticket < st.invalid_below {
                return Err(GroupCommitError::Poisoned);
            }
            if !st.leader {
                st.leader = true;
                drop(st);
                // Deepen the wave: while appends keep arriving, one yield
                // buys many more records per fdatasync. Bounded so a
                // steady trickle cannot delay durability indefinitely.
                let mut last = arrivals();
                for _ in 0..64 {
                    std::thread::yield_now();
                    let now = arrivals();
                    if now == last {
                        break;
                    }
                    last = now;
                }
                let result = sync();
                // lint: allow(panic) group-commit state poisoning means a leader panicked mid-commit; propagate
                st = self.state.lock().expect("group commit state poisoned");
                st.leader = false;
                match result {
                    Ok(upto) => st.synced = st.synced.max(upto),
                    Err(e) => {
                        st.failed = true;
                        self.cv.notify_all();
                        return Err(GroupCommitError::Sync(e));
                    }
                }
                self.cv.notify_all();
            } else {
                // lint: allow(panic) group-commit state poisoning means a leader panicked mid-commit; propagate
                st = self.cv.wait(st).expect("group commit state poisoned");
            }
        }
    }

    /// Heal the committer after a checkpoint rotated a **poisoned** segment
    /// away: tickets on the fresh segment (`>= next_ticket`) commit
    /// normally again, while tickets from the poisoned era keep failing —
    /// their records' durability is unknowable. Without this, the store
    /// would apply-and-append every post-rotation write but report it
    /// failed forever, and retrying callers would double-apply.
    pub(crate) fn reset(&self, next_ticket: u64) {
        // lint: allow(panic) group-commit state poisoning means a leader panicked mid-commit; propagate
        let mut st = self.state.lock().expect("group commit state poisoned");
        st.failed = false;
        st.invalid_below = st.invalid_below.max(next_ticket);
        drop(st);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shift-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn records(n: u64) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord {
                version: i + 1,
                op: if i % 3 == 0 {
                    WalOp::Delete
                } else {
                    WalOp::Insert
                },
                key: i * 977,
            })
            .collect()
    }

    fn entries(recs: &[WalRecord]) -> Vec<WalEntry> {
        recs.iter().map(|&r| WalEntry::Op(r)).collect()
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = tmp_dir("roundtrip");
        let recs = records(20);
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::EveryN(4)).unwrap();
        for r in &recs {
            assert_eq!(w.append(r).unwrap(), FRAME_LEN as u64);
        }
        drop(w);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].0, 1);
        let scan = read_segment(&segments[0].1).unwrap();
        assert_eq!(scan.records, entries(&recs));
        assert!(!scan.torn_tail);
        assert_eq!(scan.boundaries.len(), 20);
        assert_eq!(*scan.boundaries.last().unwrap(), 20 * FRAME_LEN as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_records_round_trip_interleaved_with_singles() {
        let dir = tmp_dir("batch-roundtrip");
        let single = WalRecord {
            version: 1,
            op: WalOp::Insert,
            key: 42,
        };
        let batch = WalBatchRecord {
            version: 2,
            ops: vec![(WalOp::Insert, 7), (WalOp::Delete, 42), (WalOp::Insert, 7)],
        };
        let tail = WalRecord {
            version: 3,
            op: WalOp::Delete,
            key: 7,
        };
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Os).unwrap();
        assert_eq!(w.append(&single).unwrap(), FRAME_LEN as u64);
        assert_eq!(
            w.append_batch(batch.version, &batch.ops).unwrap(),
            (8 + batch_payload_len(3)) as u64
        );
        w.append(&tail).unwrap();
        drop(w);
        let scan = read_segment(&dir.join(segment_name(1))).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(
            scan.records,
            vec![
                WalEntry::Op(single),
                WalEntry::Batch(batch.clone()),
                WalEntry::Op(tail),
            ]
        );
        assert_eq!(scan.records[1].version(), 2);
        assert_eq!(scan.records[1].op_count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batches_advance_the_every_n_counter_by_their_op_count() {
        // The `EveryN(n)` loss bound is phrased in acknowledged *writes*:
        // a 64-op batch under EveryN(64) must sync just like 64 singles
        // would, not count as one record towards the threshold.
        let dir = tmp_dir("batch-everyn");
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::EveryN(64)).unwrap();
        let batch = WalBatchRecord {
            version: 1,
            ops: (0..64u64).map(|i| (WalOp::Insert, i)).collect(),
        };
        w.append_batch(batch.version, &batch.ops).unwrap();
        assert_eq!(w.sync_count(), 1, "64 batched ops hit the n = 64 bound");
        // A small batch leaves the counter partially filled…
        let small = WalBatchRecord {
            version: 2,
            ops: (0..60u64).map(|i| (WalOp::Delete, i)).collect(),
        };
        w.append_batch(small.version, &small.ops).unwrap();
        assert_eq!(w.sync_count(), 1);
        // …and singles top it up to the next sync.
        for v in 3..7u64 {
            w.append(&WalRecord {
                version: v,
                op: WalOp::Insert,
                key: v,
            })
            .unwrap();
        }
        assert_eq!(w.sync_count(), 2, "60 + 4 ops crossed the bound");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_batch_records_drop_whole_not_prefix() {
        let dir = tmp_dir("batch-torn");
        let single = WalRecord {
            version: 1,
            op: WalOp::Insert,
            key: 9,
        };
        let batch = WalBatchRecord {
            version: 2,
            ops: (0..8u64).map(|i| (WalOp::Insert, i * 3)).collect(),
        };
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Os).unwrap();
        w.append(&single).unwrap();
        w.append_batch(batch.version, &batch.ops).unwrap();
        drop(w);
        let path = dir.join(segment_name(1));
        let full = std::fs::read(&path).unwrap();

        // Truncate anywhere inside the batch frame: the single before it
        // survives, the batch vanishes whole — never a prefix of its ops.
        for cut in [1usize, 8, 13, 20, full.len() - FRAME_LEN - 1] {
            std::fs::write(&path, &full[..FRAME_LEN + cut]).unwrap();
            let scan = read_segment(&path).unwrap();
            assert_eq!(scan.records, vec![WalEntry::Op(single)], "cut {cut}");
            assert!(scan.torn_tail, "cut {cut}");
        }

        // A checksum-valid frame with a lying op count is rejected whole.
        let mut payload = encode_batch_payload(batch.version, &batch.ops);
        payload[9] = 7; // count 8 -> 7: length no longer matches
        let mut evil = full[..FRAME_LEN].to_vec();
        evil.extend_from_slice(&encode_frame(&payload));
        std::fs::write(&path, &evil).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, vec![WalEntry::Op(single)]);
        assert!(scan.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_corruption_end_the_scan() {
        let dir = tmp_dir("torn");
        let recs = records(10);
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Os).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        drop(w);
        let path = dir.join(segment_name(1));
        let full = std::fs::read(&path).unwrap();

        // Truncate mid-record: the partial frame is discarded.
        std::fs::write(&path, &full[..4 * FRAME_LEN + 7]).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, entries(&recs[..4]));
        assert!(scan.torn_tail);

        // Flip one payload byte of record 6: records 0..=5 survive.
        let mut bent = full.clone();
        bent[6 * FRAME_LEN + 12] ^= 0xFF;
        std::fs::write(&path, &bent).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, entries(&recs[..6]));
        assert!(scan.torn_tail);

        // A bogus op byte is rejected by decode, not just by the CRC: craft
        // a frame with a valid checksum but op = 9.
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[8] = 9;
        let mut evil = full[..2 * FRAME_LEN].to_vec();
        evil.extend_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        evil.extend_from_slice(&crc32(&payload).to_le_bytes());
        evil.extend_from_slice(&payload);
        std::fs::write(&path, &evil).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, entries(&recs[..2]));
        assert!(scan.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_committer_fails_poisoned_era_tickets_and_heals_on_reset() {
        let g = GroupCommitter::new();
        let no_arrivals = || 0u64;
        // Ticket 3 synced successfully through version 5.
        assert!(g.commit(3, no_arrivals, || Ok(5)).is_ok());
        // Ticket 7's leader sync fails: the committer is failed.
        assert!(matches!(
            g.commit(7, no_arrivals, || Err(std::io::Error::other("EIO"))),
            Err(GroupCommitError::Sync(_))
        ));
        // Everything not already covered now fails fast, even with a sync
        // that would succeed (no leader may run while failed).
        assert!(matches!(
            g.commit(6, no_arrivals, || Ok(100)),
            Err(GroupCommitError::Poisoned)
        ));
        // …but a ticket the pre-failure sync covered is genuinely durable.
        assert!(g.commit(4, no_arrivals, || Ok(100)).is_ok());

        // A checkpoint rotates the poisoned segment away at version 10.
        g.reset(10);
        // Poisoned-era tickets stay rejected (durability unknowable)…
        assert!(matches!(
            g.commit(8, no_arrivals, || Ok(100)),
            Err(GroupCommitError::Poisoned)
        ));
        // …old durable tickets stay Ok, and fresh-segment tickets commit.
        assert!(g.commit(5, no_arrivals, || Ok(100)).is_ok());
        assert!(g.commit(11, no_arrivals, || Ok(12)).is_ok());
    }

    #[test]
    fn segments_list_in_version_order() {
        let dir = tmp_dir("order");
        for start in [900u64, 1, 37] {
            WalWriter::create(&dir, start, SyncPolicy::Os).unwrap();
        }
        let starts: Vec<u64> = list_segments(&dir).unwrap().iter().map(|s| s.0).collect();
        assert_eq!(starts, vec![1, 37, 900]);
        assert_eq!(parse_segment_start(&segment_name(42)), Some(42));
        assert_eq!(parse_segment_start("wal-x.log"), None);
        assert_eq!(parse_segment_start("manifest-1"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
