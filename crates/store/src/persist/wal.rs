//! The write-ahead log: length-prefixed, CRC32-checksummed record segments.
//!
//! ## On-disk format
//!
//! A WAL is a sequence of *segment* files named `wal-<start>.log`, where
//! `<start>` is the zero-padded store version of the segment's first
//! record. Versions are assigned contiguously, so segment `i` holds exactly
//! the versions `[start_i, start_{i+1})`. A fresh segment is started on
//! every store open and on every checkpoint (rotation), and a segment is
//! deleted once a checkpoint covers all of its records.
//!
//! Each record is one frame:
//!
//! ```text
//! ┌──────────┬──────────┬───────────────────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload (len bytes)                       │
//! │  (LE)    │  (LE)    │ version: u64 LE │ op: u8 │ key: u64 LE    │
//! └──────────┴──────────┴───────────────────────────────────────────┘
//! ```
//!
//! `crc` is the CRC32 (IEEE) of the payload. `op` is `0` for an insert,
//! `1` for a delete tombstone. Keys are widened to `u64` on disk
//! regardless of the store's key width.
//!
//! A reader stops at the first frame that is short, has an unexpected
//! length, or fails its checksum: that is the torn tail of a crash, and
//! everything before it is the durable prefix.

use crate::config::SyncPolicy;
use crate::persist::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Payload bytes of a v1 record: version (8) + op (1) + key (8).
pub const PAYLOAD_LEN: usize = 17;
/// Total frame bytes of a v1 record: len (4) + crc (4) + payload.
pub const FRAME_LEN: usize = 8 + PAYLOAD_LEN;

/// The operation a WAL record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// One inserted occurrence of the key.
    Insert,
    /// One deleted occurrence of the key (a no-op if absent at replay).
    Delete,
}

/// One decoded WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The monotonic store version assigned to this write.
    pub version: u64,
    /// Insert or delete.
    pub op: WalOp,
    /// The key, widened to `u64`.
    pub key: u64,
}

impl WalRecord {
    /// Encode the record as one frame.
    fn encode(&self) -> [u8; FRAME_LEN] {
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[..8].copy_from_slice(&self.version.to_le_bytes());
        payload[8] = match self.op {
            WalOp::Insert => 0,
            WalOp::Delete => 1,
        };
        payload[9..17].copy_from_slice(&self.key.to_le_bytes());
        let mut frame = [0u8; FRAME_LEN];
        frame[..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        frame[8..].copy_from_slice(&payload);
        frame
    }

    /// Decode one payload (already length- and CRC-validated).
    fn decode(payload: &[u8; PAYLOAD_LEN]) -> Option<Self> {
        let op = match payload[8] {
            0 => WalOp::Insert,
            1 => WalOp::Delete,
            _ => return None,
        };
        Some(Self {
            version: u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")),
            op,
            key: u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes")),
        })
    }
}

/// File name of the segment whose first record carries `start`.
pub fn segment_name(start: u64) -> String {
    format!("wal-{start:020}.log")
}

/// Parse a segment file name back to its start version.
pub fn parse_segment_start(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// The WAL segments of `dir` as `(start_version, path)` pairs, sorted by
/// start version (replay order).
pub fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start) = entry.file_name().to_str().and_then(parse_segment_start) {
            out.push((start, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(start, _)| start);
    Ok(out)
}

/// The decoded contents of one segment scan.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// The validated records, in append (= version) order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of each validated record — `boundaries[i]` is
    /// where record `i`'s frame ends, so truncating the file there keeps
    /// exactly the first `i + 1` records (crash-point tests lean on this).
    pub boundaries: Vec<u64>,
    /// True when trailing bytes after the last validated record were
    /// discarded (a torn frame, a checksum mismatch, or garbage).
    pub torn_tail: bool,
}

/// Scan a segment file, validating every frame. Never fails on a damaged
/// *tail* — a short frame, a bad length or a CRC mismatch terminates the
/// scan with `torn_tail` set (recovery invariant 4); only the initial open
/// or read can error.
pub fn read_segment(path: &Path) -> std::io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut scan = SegmentScan::default();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_LEN {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let payload: &[u8; PAYLOAD_LEN] = match bytes[at + 8..at + 8 + PAYLOAD_LEN].try_into() {
            Ok(p) if len == PAYLOAD_LEN => p,
            _ => break, // unknown record shape: treat as torn
        };
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = WalRecord::decode(payload) else {
            break;
        };
        at += FRAME_LEN;
        scan.records.push(record);
        scan.boundaries.push(at as u64);
    }
    scan.torn_tail = at < bytes.len();
    Ok(scan)
}

/// Appender over one open segment, enforcing the sync policy.
///
/// A *failed* append is rolled back: the segment is truncated to the last
/// accepted frame, so a write the caller saw fail can never be durable
/// (and a partial frame can never strand later acknowledged frames behind
/// garbage — the reader stops at the first bad frame). If even the
/// rollback fails the writer poisons itself and refuses further appends.
pub(crate) struct WalWriter {
    file: File,
    policy: SyncPolicy,
    /// Appends since the last explicit sync (drives [`SyncPolicy::EveryN`]).
    unsynced: u32,
    /// Bytes of accepted frames: every successful append ends here, and a
    /// failed one truncates back to here.
    len: u64,
    /// Set when a failed append could not be rolled back: the segment tail
    /// is in an unknown state, so no further record may land after it.
    poisoned: bool,
}

impl WalWriter {
    /// Start the segment whose first record will carry `start` (truncating
    /// any same-named leftover: a collision is only possible when that
    /// leftover holds no validated record, since replay advances the next
    /// version past every record it accepts).
    pub(crate) fn create(dir: &Path, start: u64, policy: SyncPolicy) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(segment_name(start)))?;
        crate::persist::sync_dir(dir);
        Ok(Self {
            file,
            policy,
            unsynced: 0,
            len: 0,
            poisoned: false,
        })
    }

    /// Append one record and apply the sync policy. Returns the bytes
    /// written (for write-amplification accounting).
    ///
    /// On a short write the frame is rolled back (durably — the truncate is
    /// fsynced) before the error is returned, so the caller's view ("this
    /// write did not happen") matches the disk. On a *sync* error the
    /// writer additionally poisons itself: once `fdatasync` has failed, the
    /// kernel may drop the dirty pages of earlier acknowledged frames while
    /// clearing the error, so no durability promise about this segment can
    /// be kept any more and continuing to append would silently widen the
    /// loss beyond the documented `n − 1` bound.
    pub(crate) fn append(&mut self, record: &WalRecord) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "WAL writer poisoned by an earlier append or sync failure",
            ));
        }
        let frame = record.encode();
        if let Err(e) = self.file.write_all(&frame) {
            if self.rollback().is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.unsynced += 1;
        let sync_due = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            SyncPolicy::Os => false,
        };
        if sync_due {
            if let Err(e) = self.sync() {
                let _ = self.rollback();
                self.poisoned = true;
                return Err(e);
            }
        }
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Truncate the segment back to the last accepted frame and make the
    /// truncate itself durable (without the fsync, a power loss could
    /// resurrect the rolled-back frame from cached metadata).
    fn rollback(&mut self) -> std::io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.sync_data()
    }

    /// Force everything appended so far to stable storage.
    pub(crate) fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shift-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn records(n: u64) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord {
                version: i + 1,
                op: if i % 3 == 0 {
                    WalOp::Delete
                } else {
                    WalOp::Insert
                },
                key: i * 977,
            })
            .collect()
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = tmp_dir("roundtrip");
        let recs = records(20);
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::EveryN(4)).unwrap();
        for r in &recs {
            assert_eq!(w.append(r).unwrap(), FRAME_LEN as u64);
        }
        drop(w);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].0, 1);
        let scan = read_segment(&segments[0].1).unwrap();
        assert_eq!(scan.records, recs);
        assert!(!scan.torn_tail);
        assert_eq!(scan.boundaries.len(), 20);
        assert_eq!(*scan.boundaries.last().unwrap(), 20 * FRAME_LEN as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_corruption_end_the_scan() {
        let dir = tmp_dir("torn");
        let recs = records(10);
        let mut w = WalWriter::create(&dir, 1, SyncPolicy::Os).unwrap();
        for r in &recs {
            w.append(r).unwrap();
        }
        drop(w);
        let path = dir.join(segment_name(1));
        let full = std::fs::read(&path).unwrap();

        // Truncate mid-record: the partial frame is discarded.
        std::fs::write(&path, &full[..4 * FRAME_LEN + 7]).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, recs[..4]);
        assert!(scan.torn_tail);

        // Flip one payload byte of record 6: records 0..=5 survive.
        let mut bent = full.clone();
        bent[6 * FRAME_LEN + 12] ^= 0xFF;
        std::fs::write(&path, &bent).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, recs[..6]);
        assert!(scan.torn_tail);

        // A bogus op byte is rejected by decode, not just by the CRC: craft
        // a frame with a valid checksum but op = 9.
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[8] = 9;
        let mut evil = full[..2 * FRAME_LEN].to_vec();
        evil.extend_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        evil.extend_from_slice(&crc32(&payload).to_le_bytes());
        evil.extend_from_slice(&payload);
        std::fs::write(&path, &evil).unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records, recs[..2]);
        assert!(scan.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_list_in_version_order() {
        let dir = tmp_dir("order");
        for start in [900u64, 1, 37] {
            WalWriter::create(&dir, start, SyncPolicy::Os).unwrap();
        }
        let starts: Vec<u64> = list_segments(&dir).unwrap().iter().map(|s| s.0).collect();
        assert_eq!(starts, vec![1, 37, 900]);
        assert_eq!(parse_segment_start(&segment_name(42)), Some(42));
        assert_eq!(parse_segment_start("wal-x.log"), None);
        assert_eq!(parse_segment_start("manifest-1"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
