//! The checkpoint manifest: the atomically-rotated root of recovery.
//!
//! ## On-disk format
//!
//! A manifest is a UTF-8 line file named `manifest-<seq>` (`seq` strictly
//! increasing per checkpoint). It is written to a `.tmp` sibling, fsynced,
//! and renamed into place, so a crash can never expose a half-written
//! manifest under a valid name; recovery picks the newest sequence that
//! still validates and treats anything newer-but-broken as the torn debris
//! of an interrupted checkpoint.
//!
//! ```text
//! shift-store-manifest 1
//! seq 7
//! version 1234            ← checkpoint version cv
//! spec im+r1              ← IndexSpec display form, reparsed on load
//! fences 3
//! fence 17
//! fence 940
//! fence 52001
//! shards 3
//! shard snap-0000000007-0000.snap 1234
//! shard snap-0000000007-0001.snap 1234
//! shard snap-0000000007-0002.snap 1234
//! end
//! ```
//!
//! `fences` lists the router's fence keys (widened to `u64`; empty for a
//! store that has never held a key), and each `shard` line pairs a snapshot
//! file with the store version it is consistent with — `cv` for shards the
//! checkpoint rewrote, the *prior* manifest's value for clean shards an
//! incremental checkpoint re-referenced (replay past an older floor is
//! idempotent, so the lower gate is safe). The trailing `end` guards
//! against truncation on filesystems that rename non-atomically.
//!
//! Versions count WAL *records*, and a multi-op batch record
//! ([`crate::WriteBatch`], WAL format v2) consumes exactly one — so `cv`
//! can never land in the middle of a batch: a checkpoint's snapshots
//! contain whole batches, and replay past `cv` re-applies whole batches.

use crate::error::StoreError;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Format version this module writes and understands.
pub const FORMAT_VERSION: u32 = 1;

/// One shard entry of a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestShard {
    /// Snapshot file name (relative to the store directory).
    pub snapshot: String,
    /// Store version the snapshot is consistent with: replaying a WAL
    /// record at or below it into this shard is a no-op.
    pub applied: u64,
}

/// A parsed checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Rotation sequence number (strictly increasing per checkpoint).
    pub seq: u64,
    /// The checkpoint version `cv`: every write `<= cv` is contained in the
    /// referenced snapshots, and no later write is.
    pub version: u64,
    /// The index spec, in its canonical display form.
    pub spec: String,
    /// The fence table of the checkpointed topology, widened to `u64`.
    /// Empty only for a store that has never held a key.
    pub fences: Vec<u64>,
    /// One entry per shard, in router order.
    pub shards: Vec<ManifestShard>,
}

/// File name of the manifest with sequence `seq`.
pub fn manifest_name(seq: u64) -> String {
    format!("manifest-{seq:010}")
}

/// Parse a manifest file name back to its sequence number.
pub fn parse_manifest_seq(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-")?.parse().ok()
}

/// The manifests present in `dir`, newest first.
pub fn list_manifests(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_manifest_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(out)
}

/// Write `m` to `dir` durably: temp file → fsync → rename → directory sync.
pub(crate) fn write_manifest(dir: &Path, m: &Manifest) -> std::io::Result<PathBuf> {
    let mut text = String::new();
    text.push_str(&format!("shift-store-manifest {FORMAT_VERSION}\n"));
    text.push_str(&format!("seq {}\n", m.seq));
    text.push_str(&format!("version {}\n", m.version));
    text.push_str(&format!("spec {}\n", m.spec));
    text.push_str(&format!("fences {}\n", m.fences.len()));
    for f in &m.fences {
        text.push_str(&format!("fence {f}\n"));
    }
    text.push_str(&format!("shards {}\n", m.shards.len()));
    for s in &m.shards {
        text.push_str(&format!("shard {} {}\n", s.snapshot, s.applied));
    }
    text.push_str("end\n");

    let final_path = dir.join(manifest_name(m.seq));
    let tmp_path = final_path.with_extension("tmp");
    let mut tmp = std::fs::File::create(&tmp_path)?;
    tmp.write_all(text.as_bytes())?;
    tmp.sync_all()?;
    drop(tmp);
    std::fs::rename(&tmp_path, &final_path)?;
    crate::persist::sync_dir(dir);
    Ok(final_path)
}

fn corrupt(path: &Path, reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Load and validate a manifest file.
///
/// # Errors
/// [`StoreError::Corrupt`] on any structural problem (bad header, missing
/// `end`, counts that disagree with the listed lines, unparsable numbers);
/// [`StoreError::Io`] when the file cannot be read.
pub fn load_manifest(path: &Path) -> Result<Manifest, StoreError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let mut field = |name: &str| -> Result<String, StoreError> {
        let line = lines
            .next()
            .ok_or_else(|| corrupt(path, format!("missing {name} line")))?;
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| corrupt(path, format!("expected {name:?} line, got {line:?}")))
    };
    let parse_u64 = |name: &str, v: &str| -> Result<u64, StoreError> {
        v.parse()
            .map_err(|_| corrupt(path, format!("{name} is not a number: {v:?}")))
    };

    let version = field("shift-store-manifest")?;
    if parse_u64("format version", &version)? != FORMAT_VERSION as u64 {
        return Err(corrupt(
            path,
            format!("unsupported format version {version}"),
        ));
    }
    let seq = parse_u64("seq", &field("seq")?)?;
    let cv = parse_u64("version", &field("version")?)?;
    let spec = field("spec")?;
    // Counts come from unchecksummed text: clamp the pre-allocations so a
    // corrupt digit yields StoreError::Corrupt at the missing line below,
    // never a capacity-overflow abort inside `open`.
    let fence_count = parse_u64("fences", &field("fences")?)?;
    let mut fences = Vec::with_capacity(fence_count.min(1 << 16) as usize);
    for _ in 0..fence_count {
        fences.push(parse_u64("fence", &field("fence")?)?);
    }
    let shard_count = parse_u64("shards", &field("shards")?)?;
    let mut shards = Vec::with_capacity(shard_count.min(1 << 16) as usize);
    for _ in 0..shard_count {
        let line = field("shard")?;
        let (snapshot, applied) = line
            .rsplit_once(' ')
            .ok_or_else(|| corrupt(path, format!("malformed shard line {line:?}")))?;
        shards.push(ManifestShard {
            snapshot: snapshot.to_string(),
            applied: parse_u64("shard applied version", applied)?,
        });
    }
    if lines.next() != Some("end") {
        return Err(corrupt(path, "missing end marker (torn manifest)"));
    }
    if !fences.is_empty() && fences.len() != shards.len() {
        return Err(corrupt(
            path,
            format!("{} fences for {} shards", fences.len(), shards.len()),
        ));
    }
    if !fences.windows(2).all(|w| w[0] < w[1]) {
        return Err(corrupt(path, "fence table is not strictly increasing"));
    }
    Ok(Manifest {
        seq,
        version: cv,
        spec,
        fences,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shift-store-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn sample(seq: u64) -> Manifest {
        Manifest {
            seq,
            version: 1234,
            spec: "rmi:64+r1".into(),
            fences: vec![17, 940, 52_001],
            shards: (0..3)
                .map(|i| ManifestShard {
                    snapshot: crate::persist::snapshot::snapshot_name(seq, i),
                    applied: 1234,
                })
                .collect(),
        }
    }

    #[test]
    fn manifest_round_trips_and_lists_newest_first() {
        let dir = tmp("roundtrip");
        for seq in [1u64, 3, 2] {
            write_manifest(&dir, &sample(seq)).unwrap();
        }
        let listed = list_manifests(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|m| m.0).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
        let loaded = load_manifest(&listed[0].1).unwrap();
        assert_eq!(loaded, sample(3));
        assert!(
            !dir.join(manifest_name(3)).with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_fence_table_round_trips() {
        let dir = tmp("empty");
        let m = Manifest {
            seq: 1,
            version: 0,
            spec: "im+r1".into(),
            fences: vec![],
            shards: vec![ManifestShard {
                snapshot: "snap-0000000001-0000.snap".into(),
                applied: 0,
            }],
        };
        let path = write_manifest(&dir, &m).unwrap();
        assert_eq!(load_manifest(&path).unwrap(), m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_is_rejected() {
        let dir = tmp("damage");
        let path = write_manifest(&dir, &sample(5)).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        // Torn write: missing `end`.
        std::fs::write(&path, good.trim_end_matches("end\n")).unwrap();
        assert!(matches!(
            load_manifest(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Fence/shard count mismatch.
        std::fs::write(
            &path,
            good.replace("fences 3", "fences 2")
                .replace("fence 17\n", ""),
        )
        .unwrap();
        assert!(load_manifest(&path).is_err());
        // Unsorted fences.
        std::fs::write(&path, good.replace("fence 940", "fence 5")).unwrap();
        assert!(load_manifest(&path).is_err());
        // Wrong format version.
        std::fs::write(&path, good.replace("manifest 1", "manifest 9")).unwrap();
        assert!(load_manifest(&path).is_err());
        // A corrupt astronomic count must come back as Corrupt, not abort
        // in the pre-allocation.
        std::fs::write(
            &path,
            good.replace("fences 3", "fences 18446744073709551615"),
        )
        .unwrap();
        assert!(matches!(
            load_manifest(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::write(&path, good.replace("shards 3", "shards 9999999999")).unwrap();
        assert!(matches!(
            load_manifest(&path),
            Err(StoreError::Corrupt { .. })
        ));
        assert_eq!(parse_manifest_seq("manifest-0000000005"), Some(5));
        assert_eq!(parse_manifest_seq("manifest-0000000005.tmp"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
