//! Crash recovery: newest valid manifest → rebuilt shards → WAL-tail replay.
//!
//! Recovery is a pure function of the store directory and the
//! [`StoreConfig`]: it never writes (garbage collection is a checkpoint
//! duty), so a failed open leaves the directory exactly as the crash did.
//!
//! The sequence, matching the invariants documented in [`crate::persist`]:
//!
//! 1. Load the newest manifest that validates end-to-end — including its
//!    snapshot files' checksums. A newer manifest that fails validation is
//!    the debris of an interrupted checkpoint and is skipped; if *every*
//!    manifest fails, recovery errors out rather than silently dropping a
//!    checkpoint. No manifest at all means a store that never checkpointed:
//!    recovery starts from one empty shard and replays the whole WAL.
//! 2. Load each shard's snapshot key column (the on-disk format stores no
//!    model — it is retrained below).
//! 3. Replay every WAL segment in version order through the recovered
//!    fence router, editing the key columns directly. A record at or below
//!    the routed shard's recovered version is skipped — replay is
//!    idempotent, so segments that escaped truncation cost time, never
//!    correctness. A torn tail ends the log.
//! 4. Build each shard once over its final column, retraining the
//!    persisted spec — one model training per shard regardless of how much
//!    tail was replayed, and every chain starts clean.

use crate::config::StoreConfig;
use crate::error::StoreError;
use crate::persist::wal::{self, WalEntry, WalOp};
use crate::persist::{manifest, snapshot};
use crate::router::ShardRouter;
use crate::shard::StoreShard;
use shift_table::spec::IndexSpec;
use sosd_data::key::Key;
use std::path::Path;
use std::sync::Arc;

/// Everything `ShardedStore::open` needs to assemble a recovered store.
pub(crate) struct Recovered<K: Key> {
    /// The fence router of the recovered topology.
    pub router: ShardRouter<K>,
    /// The recovered shards, in router order, chains already folded.
    pub shards: Vec<Arc<StoreShard<K>>>,
    /// The spec the shards were rebuilt from (the persisted one for a
    /// checkpointed store, the config's for a fresh directory).
    pub spec: IndexSpec,
    /// The version the next WAL record must carry.
    pub next_version: u64,
    /// The manifest sequence recovery loaded (0 when none existed).
    pub manifest_seq: u64,
    /// Logical operations applied during replay — each op of a batch
    /// record counts (diagnostics / tests).
    pub replayed: usize,
}

/// True when `dir` already holds store data — a manifest, or a WAL segment
/// with at least one *valid record*. The guard `open_seeded` uses to decide
/// between seeding and recovering: an empty (or wholly torn) leftover
/// segment does not count, so a seeding that crashed before its first
/// checkpoint can be retried instead of silently recovering an empty store.
pub(crate) fn has_store_data(dir: &Path) -> Result<bool, StoreError> {
    if !manifest::list_manifests(dir)?.is_empty() {
        return Ok(true);
    }
    for (_, path) in wal::list_segments(dir)? {
        if !wal::read_segment(&path)?.records.is_empty() {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Is this load failure the debris of an interrupted checkpoint — a torn
/// or corrupt file, a spec that never parsed, a snapshot the crash never
/// wrote — rather than a real environmental failure? Only debris may fall
/// back to an older manifest; an EIO or permission error must abort the
/// open, or a transient fault could silently resurrect a stale checkpoint
/// whose covering WAL was already truncated.
fn is_checkpoint_debris(e: &StoreError) -> bool {
    match e {
        StoreError::Corrupt { .. } | StoreError::Spec { .. } => true,
        StoreError::Io(io) => io.kind() == std::io::ErrorKind::NotFound,
        _ => false,
    }
}

/// A checkpoint loaded from one manifest: router, per-shard key columns
/// (not yet built — replay edits them first, so every shard trains its
/// model exactly once) and the per-shard replay floors.
struct LoadedCheckpoint<K: Key> {
    router: ShardRouter<K>,
    columns: Vec<Vec<K>>,
    applied: Vec<u64>,
    spec: IndexSpec,
    version: u64,
    seq: u64,
}

/// Build one shard over recovered keys with the store's tuning knobs.
fn recovered_shard<K: Key>(
    config: &StoreConfig,
    spec: IndexSpec,
    keys: Vec<K>,
) -> Arc<StoreShard<K>> {
    Arc::new(
        StoreShard::build_prevalidated(
            spec,
            Arc::<[K]>::from(keys),
            config.delta_threshold,
            config.build_threads,
        )
        .with_chain_tuning(config.max_run_len, config.compact_runs),
    )
}

/// Try to materialise the checkpoint a manifest describes, validating
/// every snapshot it references.
fn load_checkpoint<K: Key>(dir: &Path, path: &Path) -> Result<LoadedCheckpoint<K>, StoreError> {
    let m = manifest::load_manifest(path)?;
    let spec = IndexSpec::parse(&m.spec).map_err(|e| StoreError::Spec {
        text: m.spec.clone(),
        reason: e.to_string(),
    })?;
    let mut columns = Vec::with_capacity(m.shards.len());
    let mut applied = Vec::with_capacity(m.shards.len());
    for entry in &m.shards {
        let (shard_applied, keys) = snapshot::read_snapshot::<K>(&dir.join(&entry.snapshot))?;
        if shard_applied != entry.applied {
            return Err(StoreError::Corrupt {
                path: dir.join(&entry.snapshot),
                reason: format!(
                    "snapshot applied version {shard_applied} disagrees with manifest {}",
                    entry.applied
                ),
            });
        }
        columns.push(keys);
        applied.push(entry.applied);
    }
    if columns.is_empty() {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            reason: "manifest lists no shards".into(),
        });
    }
    let fences: Vec<K> = m
        .fences
        .iter()
        .map(|&f| K::from_u64_saturating(f))
        .collect();
    Ok(LoadedCheckpoint {
        router: ShardRouter::from_fences(fences),
        columns,
        applied,
        spec,
        version: m.version,
        seq: m.seq,
    })
}

/// Recover a store from `dir` (see the module docs for the sequence).
pub(crate) fn recover<K: Key>(
    dir: &Path,
    config: &StoreConfig,
) -> Result<Recovered<K>, StoreError> {
    // 1. Newest valid manifest wins; all-corrupt is an error, none is fresh.
    let manifests = manifest::list_manifests(dir)?;
    let mut checkpoint: Option<LoadedCheckpoint<K>> = None;
    let mut first_failure: Option<StoreError> = None;
    for (_, path) in &manifests {
        match load_checkpoint(dir, path) {
            Ok(cp) => {
                checkpoint = Some(cp);
                break;
            }
            Err(e) if is_checkpoint_debris(&e) => first_failure = first_failure.or(Some(e)),
            Err(e) => return Err(e),
        }
    }
    let mut cp = match (checkpoint, first_failure) {
        (Some(cp), _) => cp,
        (None, Some(e)) => return Err(e),
        (None, None) => LoadedCheckpoint {
            // Fresh directory (or WAL-only): one empty shard, config spec.
            router: ShardRouter::from_fences(Vec::new()),
            columns: vec![Vec::new()],
            applied: vec![0],
            spec: config.spec,
            version: 0,
            seq: 0,
        },
    };

    // 2./3. Replay the WAL tail in version order, idempotently — applied
    // straight into the key columns (store delete semantics: one occurrence
    // removed when present, else a no-op), so the expensive model training
    // below happens exactly once per shard, replayed-into or not. A batch
    // entry replays all of its operations under its single version — and a
    // torn batch frame was already dropped whole by the segment scan, so a
    // batch is never half-recovered.
    let mut next_version = cp.version + 1;
    let mut replayed = 0usize;
    let apply_one = |cp: &mut LoadedCheckpoint<K>, version: u64, op: WalOp, key: u64| {
        let key = K::from_u64_saturating(key);
        let s = cp.router.shard_of(key);
        if version <= cp.applied[s] {
            return 0usize; // already inside the snapshot: replay is a no-op
        }
        let column = &mut cp.columns[s];
        let pos = column.partition_point(|&x| x < key);
        match op {
            WalOp::Insert => column.insert(pos, key),
            WalOp::Delete => {
                if column.get(pos) == Some(&key) {
                    column.remove(pos);
                }
            }
        }
        1
    };
    for (_, segment) in wal::list_segments(dir)? {
        for entry in wal::read_segment(&segment)?.records {
            next_version = next_version.max(entry.version() + 1);
            match entry {
                WalEntry::Op(r) => replayed += apply_one(&mut cp, r.version, r.op, r.key),
                WalEntry::Batch(b) => {
                    for &(op, key) in &b.ops {
                        replayed += apply_one(&mut cp, b.version, op, key);
                    }
                }
            }
        }
    }

    // 4. Build each shard once over its final column, in parallel scoped
    // threads: model retraining dominates reopen latency for large stores,
    // and the columns are independent by construction. Concurrency is
    // capped at the machine's parallelism (a long-lived store's split
    // cascade can leave hundreds of shards; one OS thread per shard — each
    // fanning out `build_threads` more — would oversubscribe the reopen).
    let spec = cp.spec;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut shards: Vec<Arc<StoreShard<K>>> = Vec::with_capacity(cp.columns.len());
    let mut columns = cp.columns.into_iter().peekable();
    while columns.peek().is_some() {
        let wave: Vec<Vec<K>> = columns.by_ref().take(workers).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .into_iter()
                .map(|column| scope.spawn(move || recovered_shard(config, spec, column)))
                .collect();
            for h in handles {
                shards.push(h.join().expect("shard retrain worker panicked"));
            }
        });
    }

    Ok(Recovered {
        router: cp.router,
        shards,
        spec,
        next_version: next_version.max(1),
        manifest_seq: cp.seq,
        replayed,
    })
}
