//! Crash recovery: newest valid manifest → rebuilt shards → WAL-tail replay.
//!
//! Recovery is a pure function of the store directory and the
//! [`StoreConfig`]: it never writes (garbage collection is a checkpoint
//! duty), so a failed open leaves the directory exactly as the crash did.
//!
//! The sequence, matching the invariants documented in [`crate::persist`]:
//!
//! 1. Load the newest manifest that validates end-to-end — including its
//!    snapshot files' checksums. A newer manifest that fails validation is
//!    the debris of an interrupted checkpoint and is skipped; if *every*
//!    manifest fails, recovery errors out rather than silently dropping a
//!    checkpoint. No manifest at all means a store that never checkpointed:
//!    recovery starts from one empty shard and replays the whole WAL.
//! 2. Load each shard's snapshot. Eagerly this decodes the key column (the
//!    on-disk format stores no model — it is retrained below). With
//!    [`StoreConfig::cold_start`] set, a v2 snapshot is instead **mounted**
//!    ([`crate::persist::v2::ColdBase`]): footer + index parse plus one
//!    checksum sweep, no decode, no training — the shard will serve reads
//!    off the block index until the background hydrator retrains it. v1
//!    files have no block index and always load eagerly.
//! 3. Replay every WAL segment in version order through the recovered
//!    fence router — editing hot key columns directly, and buffering into
//!    a cold shard's delta chain (write paths never touch base keys, so a
//!    cold base absorbs its tail without decoding). A record at or below
//!    the routed shard's recovered `applied` floor is skipped — replay is
//!    idempotent, so both stale segments and records already folded into a
//!    re-referenced incremental snapshot cost time, never correctness. A
//!    torn tail ends the log.
//! 4. Build each hot shard once over its final column, retraining the
//!    persisted spec in bounded-parallel waves; a cold shard is assembled
//!    in O(1) from its mounted base plus replayed chain.
//!
//! Recovery also reports *where the time went* ([`OpenBreakdown`]) and
//! which manifest entries are safe to re-reference at the next incremental
//! checkpoint (shards whose WAL tail replayed nothing).

use crate::config::StoreConfig;
use crate::delta::DeltaChain;
use crate::error::StoreError;
use crate::persist::manifest::{self, ManifestShard};
use crate::persist::wal::{self, WalEntry, WalOp};
use crate::persist::{snapshot, v2};
use crate::router::ShardRouter;
use crate::shard::{ShardSnapshot, StoreShard};
use shift_table::spec::IndexSpec;
use sosd_data::key::Key;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a [`crate::ShardedStore::open`] spent its time, plus how much
/// work was deferred to background hydration. All phases are measured on
/// the opening thread: `retrain` is the *foreground* model-training time —
/// near zero for a cold start, where training happens after open returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenBreakdown {
    /// Parsing and validating the manifest (including its spec string).
    pub manifest: Duration,
    /// Reading snapshot files: eager decode, or cold mount + checksum sweep.
    pub mount: Duration,
    /// Scanning and applying the WAL tail.
    pub replay: Duration,
    /// Foreground model retraining (the wave-parallel shard builds).
    pub retrain: Duration,
    /// Shards published cold (0 on an eager open): the hydrator's backlog.
    pub cold_shards: usize,
}

/// Everything `ShardedStore::open` needs to assemble a recovered store.
pub(crate) struct Recovered<K: Key> {
    /// The fence router of the recovered topology.
    pub router: ShardRouter<K>,
    /// The recovered shards, in router order (cold ones still mounted).
    pub shards: Vec<Arc<StoreShard<K>>>,
    /// The spec the shards were rebuilt from (the persisted one for a
    /// checkpointed store, the config's for a fresh directory).
    pub spec: IndexSpec,
    /// The version the next WAL record must carry.
    pub next_version: u64,
    /// The manifest sequence recovery loaded (0 when none existed).
    pub manifest_seq: u64,
    /// Logical operations applied during replay — each op of a batch
    /// record counts (diagnostics / tests).
    pub replayed: usize,
    /// Per shard: the loaded manifest entry, kept only when the WAL tail
    /// replayed *nothing* into the shard — the next incremental checkpoint
    /// may then re-reference the entry's file verbatim. `None` forces a
    /// rewrite (fresh directory, or a replayed-into shard).
    pub memo_entries: Vec<Option<ManifestShard>>,
    /// Where the open time went.
    pub breakdown: OpenBreakdown,
}

/// True when `dir` already holds store data — a manifest, or a WAL segment
/// with at least one *valid record*. The guard `open_seeded` uses to decide
/// between seeding and recovering: an empty (or wholly torn) leftover
/// segment does not count, so a seeding that crashed before its first
/// checkpoint can be retried instead of silently recovering an empty store.
pub(crate) fn has_store_data(dir: &Path) -> Result<bool, StoreError> {
    if !manifest::list_manifests(dir)?.is_empty() {
        return Ok(true);
    }
    for (_, path) in wal::list_segments(dir)? {
        if !wal::read_segment(&path)?.records.is_empty() {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Is this load failure the debris of an interrupted checkpoint — a torn
/// or corrupt file, a spec that never parsed, a snapshot the crash never
/// wrote — rather than a real environmental failure? Only debris may fall
/// back to an older manifest; an EIO or permission error must abort the
/// open, or a transient fault could silently resurrect a stale checkpoint
/// whose covering WAL was already truncated.
fn is_checkpoint_debris(e: &StoreError) -> bool {
    match e {
        StoreError::Corrupt { .. } | StoreError::Spec { .. } => true,
        StoreError::Io(io) => io.kind() == std::io::ErrorKind::NotFound,
        _ => false,
    }
}

/// One shard's recovered backing: a decoded (hot) key column that replay
/// edits in place, or a mounted (cold) v2 base whose replayed tail buffers
/// into a delta chain.
enum ShardBacking<K: Key> {
    Hot(Vec<K>),
    Cold {
        base: Arc<v2::ColdBase<K>>,
        delta: DeltaChain<K>,
    },
}

/// A checkpoint loaded from one manifest: router, per-shard backings (not
/// yet built — replay edits them first, so every hot shard trains its
/// model exactly once) and the per-shard replay floors.
struct LoadedCheckpoint<K: Key> {
    router: ShardRouter<K>,
    backings: Vec<ShardBacking<K>>,
    applied: Vec<u64>,
    entries: Vec<Option<ManifestShard>>,
    spec: IndexSpec,
    version: u64,
    seq: u64,
    manifest_time: Duration,
    mount_time: Duration,
}

/// Build one hot shard over recovered keys with the store's tuning knobs.
fn recovered_shard<K: Key>(
    config: &StoreConfig,
    spec: IndexSpec,
    keys: Vec<K>,
) -> Arc<StoreShard<K>> {
    Arc::new(
        StoreShard::build_prevalidated(
            spec,
            Arc::<[K]>::from(keys),
            config.delta_threshold,
            config.build_threads,
        )
        .with_chain_tuning(config.max_run_len, config.compact_runs),
    )
}

/// Try to materialise the checkpoint a manifest describes, validating
/// every snapshot it references. With `cold` set, v2 snapshots are mounted
/// instead of decoded.
fn load_checkpoint<K: Key>(
    dir: &Path,
    path: &Path,
    cold: bool,
) -> Result<LoadedCheckpoint<K>, StoreError> {
    // lint: allow(timing) cold-start manifest load — timed once per reopen
    let manifest_start = Instant::now();
    let m = manifest::load_manifest(path)?;
    let spec = IndexSpec::parse(&m.spec).map_err(|e| StoreError::Spec {
        text: m.spec.clone(),
        reason: e.to_string(),
    })?;
    let manifest_time = manifest_start.elapsed();

    // lint: allow(timing) cold-start snapshot mount — timed once per reopen
    let mount_start = Instant::now();
    let mut backings = Vec::with_capacity(m.shards.len());
    let mut applied = Vec::with_capacity(m.shards.len());
    for entry in &m.shards {
        let snap_path = dir.join(&entry.snapshot);
        let mut bytes = Vec::new();
        std::fs::File::open(&snap_path)?.read_to_end(&mut bytes)?;
        let (shard_applied, backing) = if bytes.starts_with(&v2::MAGIC) {
            let base = v2::ColdBase::<K>::from_bytes(&snap_path, bytes)?;
            if cold {
                (
                    base.applied(),
                    ShardBacking::Cold {
                        base: Arc::new(base),
                        delta: DeltaChain::new(),
                    },
                )
            } else {
                (base.applied(), ShardBacking::Hot(base.decode_all()))
            }
        } else {
            let (a, keys) = snapshot::read_snapshot_bytes::<K>(&snap_path, bytes)?;
            (a, ShardBacking::Hot(keys))
        };
        if shard_applied != entry.applied {
            return Err(StoreError::Corrupt {
                path: snap_path,
                reason: format!(
                    "snapshot applied version {shard_applied} disagrees with manifest {}",
                    entry.applied
                ),
            });
        }
        backings.push(backing);
        applied.push(entry.applied);
    }
    if backings.is_empty() {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            reason: "manifest lists no shards".into(),
        });
    }
    let fences: Vec<K> = m
        .fences
        .iter()
        .map(|&f| K::from_u64_saturating(f))
        .collect();
    Ok(LoadedCheckpoint {
        router: ShardRouter::from_fences(fences),
        backings,
        applied,
        entries: m.shards.into_iter().map(Some).collect(),
        spec,
        version: m.version,
        seq: m.seq,
        manifest_time,
        mount_time: mount_start.elapsed(),
    })
}

/// Recover a store from `dir` (see the module docs for the sequence).
pub(crate) fn recover<K: Key>(
    dir: &Path,
    config: &StoreConfig,
) -> Result<Recovered<K>, StoreError> {
    // 1. Newest valid manifest wins; all-corrupt is an error, none is fresh.
    let manifests = manifest::list_manifests(dir)?;
    let mut checkpoint: Option<LoadedCheckpoint<K>> = None;
    let mut first_failure: Option<StoreError> = None;
    for (_, path) in &manifests {
        match load_checkpoint(dir, path, config.cold_start) {
            Ok(cp) => {
                checkpoint = Some(cp);
                break;
            }
            Err(e) if is_checkpoint_debris(&e) => first_failure = first_failure.or(Some(e)),
            Err(e) => return Err(e),
        }
    }
    let mut cp = match (checkpoint, first_failure) {
        (Some(cp), _) => cp,
        (None, Some(e)) => return Err(e),
        (None, None) => LoadedCheckpoint {
            // Fresh directory (or WAL-only): one empty shard, config spec.
            router: ShardRouter::from_fences(Vec::new()),
            backings: vec![ShardBacking::Hot(Vec::new())],
            applied: vec![0],
            entries: vec![None],
            spec: config.spec,
            version: 0,
            seq: 0,
            manifest_time: Duration::ZERO,
            mount_time: Duration::ZERO,
        },
    };

    // 2./3. Replay the WAL tail in version order, idempotently — applied
    // straight into hot key columns (store delete semantics: one occurrence
    // removed when present, else a no-op) and buffered into cold shards'
    // delta chains, so the expensive model training below happens at most
    // once per shard, replayed-into or not. A batch entry replays all of
    // its operations under its single version — and a torn batch frame was
    // already dropped whole by the segment scan, so a batch is never
    // half-recovered. A replayed-into shard loses its re-reference memo:
    // its merged view moved past the snapshot on disk.
    // lint: allow(timing) WAL replay is cold; timing the whole pass is the point
    let replay_start = Instant::now();
    let mut next_version = cp.version + 1;
    let mut replayed = 0usize;
    let apply_one = |cp: &mut LoadedCheckpoint<K>, version: u64, op: WalOp, key: u64| {
        let key = K::from_u64_saturating(key);
        let s = cp.router.shard_of(key);
        if version <= cp.applied[s] {
            return 0usize; // already inside the snapshot: replay is a no-op
        }
        let applied = match &mut cp.backings[s] {
            ShardBacking::Hot(column) => {
                let pos = column.partition_point(|&x| x < key);
                match op {
                    WalOp::Insert => {
                        column.insert(pos, key);
                        true
                    }
                    WalOp::Delete => {
                        if column.get(pos) == Some(&key) {
                            column.remove(pos);
                            true
                        } else {
                            false
                        }
                    }
                }
            }
            ShardBacking::Cold { base, delta } => {
                let net = match op {
                    WalOp::Insert => 1,
                    // A delete applies only when the merged view still
                    // holds an occurrence — same semantics as the write
                    // path's count probe.
                    WalOp::Delete if base.count_of(key) as i64 + delta.net_of(key) > 0 => -1,
                    WalOp::Delete => 0,
                };
                if net != 0 {
                    let mut next = delta.with_op(key, net, config.max_run_len);
                    if next.unsealed_run_count() >= config.compact_runs {
                        next = next.compact();
                    }
                    *delta = next;
                }
                net != 0
            }
        };
        if applied {
            // The on-disk snapshot no longer matches this shard's merged
            // view: the next checkpoint must rewrite it.
            cp.entries[s] = None;
        }
        1
    };
    for (_, segment) in wal::list_segments(dir)? {
        for entry in wal::read_segment(&segment)?.records {
            next_version = next_version.max(entry.version() + 1);
            match entry {
                WalEntry::Op(r) => replayed += apply_one(&mut cp, r.version, r.op, r.key),
                WalEntry::Batch(b) => {
                    for &(op, key) in &b.ops {
                        replayed += apply_one(&mut cp, b.version, op, key);
                    }
                }
            }
        }
    }
    let replay_time = replay_start.elapsed();

    // 4. Assemble the shards. Cold backings are O(1) — mounted base plus
    // replayed chain, no training. Hot columns build in parallel scoped
    // threads: model retraining dominates reopen latency for large stores,
    // and the columns are independent by construction. Concurrency is
    // capped at the machine's parallelism (a long-lived store's split
    // cascade can leave hundreds of shards; one OS thread per shard — each
    // fanning out `build_threads` more — would oversubscribe the reopen).
    // lint: allow(timing) reopen retraining is cold; timed once per reopen
    let retrain_start = Instant::now();
    let spec = cp.spec;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shard_count = cp.backings.len();
    let mut cold_shards = 0usize;
    let mut slots: Vec<Option<Arc<StoreShard<K>>>> = Vec::with_capacity(shard_count);
    slots.resize_with(shard_count, || None);
    let mut hot: Vec<(usize, Vec<K>)> = Vec::new();
    for (i, backing) in cp.backings.into_iter().enumerate() {
        match backing {
            ShardBacking::Hot(column) => hot.push((i, column)),
            ShardBacking::Cold { base, delta } => {
                cold_shards += 1;
                slots[i] = Some(Arc::new(
                    StoreShard::from_parts_at(
                        spec,
                        config.delta_threshold,
                        config.build_threads,
                        Arc::new(ShardSnapshot::new_cold(base, 0)),
                        delta,
                        0,
                    )
                    .with_chain_tuning(config.max_run_len, config.compact_runs),
                ));
            }
        }
    }
    let mut hot = hot.into_iter().peekable();
    while hot.peek().is_some() {
        let wave: Vec<(usize, Vec<K>)> = hot.by_ref().take(workers).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .into_iter()
                .map(|(i, column)| scope.spawn(move || (i, recovered_shard(config, spec, column))))
                .collect();
            for h in handles {
                // lint: allow(panic) join fails only when the child panicked; re-raising preserves the failure
                let (i, shard) = h.join().expect("shard retrain worker panicked");
                slots[i] = Some(shard);
            }
        });
    }
    let shards: Vec<Arc<StoreShard<K>>> = slots
        .into_iter()
        // lint: allow(panic) the waves above cover every shard index exactly once; a hole is unreachable
        .map(|s| s.expect("every shard slot filled"))
        .collect();

    Ok(Recovered {
        router: cp.router,
        shards,
        spec,
        next_version: next_version.max(1),
        manifest_seq: cp.seq,
        replayed,
        memo_entries: cp.entries,
        breakdown: OpenBreakdown {
            manifest: cp.manifest_time,
            mount: cp.mount_time,
            replay: replay_time,
            retrain: retrain_start.elapsed(),
            cold_shards,
        },
    })
}
